//! Topology cross-validation: how well does the Phase II reconstruction
//! match the world it probed?
//!
//! The simulator knows the true topology — every router on every routed
//! path and the exact nodes the DPI taps sit on — so unlike the real
//! measurement we can *score* the evidence: what fraction of the true
//! on-path routers did Time-Exceeded answers reveal, what fraction of the
//! true links the consecutive-TTL reconstruction recovered, and how often
//! the localized observer address is actually an observer. Swept over the
//! chaos ICMP rate-limiting axis this yields the accuracy-vs-ICMP-coverage
//! figure (EXPERIMENTS.md): coverage decays with suppression, and
//! localization accuracy with it.
//!
//! Like [`crate::robustness`], this module is a pure comparison layer:
//! the study glue extracts a [`TopoGroundTruth`] and per-cell inputs; the
//! scoring here touches nothing above the analysis layer.

use crate::report::render_table;
use serde::Serialize;
use shadow_core::phase2::TracerouteResult;
use shadow_topo::RouterGraph;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// What the simulator knows to be true for the traced path set: extracted
/// once per world from `Topology::route_to_addr` and the ground-truth tap
/// roster (study glue: `traffic_shadowing::topology_report`).
#[derive(Debug, Clone, Default)]
pub struct TopoGroundTruth {
    /// Every router on the true route of any traced path (deduplicated).
    pub routers: BTreeSet<Ipv4Addr>,
    /// Directed consecutive-router links on those true routes.
    pub links: BTreeSet<(Ipv4Addr, Ipv4Addr)>,
    /// Addresses of the ground-truth observers (DPI tap nodes).
    pub observers: BTreeSet<Ipv4Addr>,
}

/// One cross-validation cell: the reconstruction scored against ground
/// truth at one ICMP rate-limiting level.
#[derive(Debug, Clone, Serialize)]
pub struct CrossValCell {
    /// Cell label (fault profile name, e.g. "icmp90%").
    pub name: String,
    /// Fraction of ICMP Time-Exceeded answers suppressed (the swept axis).
    pub icmp_rate_limit: f64,
    /// Paths Phase II attempted to trace.
    pub traced_paths: usize,
    /// Distinct probe paths that revealed at least one hop.
    pub paths_with_hops: u64,
    /// Raw Time-Exceeded observations folded into the graph.
    pub icmp_observations: u64,
    /// Distinct routers the reconstruction revealed.
    pub revealed_routers: usize,
    /// True on-path routers for the traced path set.
    pub true_routers: usize,
    /// Revealed routers that are on a true route.
    pub router_hits: usize,
    /// IP-level links the reconstruction witnessed.
    pub revealed_links: usize,
    /// True consecutive-router links for the traced path set.
    pub true_links: usize,
    /// Witnessed links that exist in the true topology.
    pub link_hits: usize,
    /// AS-level adjacencies in the reconstruction.
    pub as_links: usize,
    /// Paths localized to a concrete observer address.
    pub localized_paths: usize,
    /// Localized paths whose observer address is a ground-truth observer.
    pub correct_localizations: usize,
}

impl CrossValCell {
    /// Score one cell's reconstruction against the ground truth.
    pub fn score(
        name: &str,
        icmp_rate_limit: f64,
        graph: &RouterGraph,
        traceroutes: &[TracerouteResult],
        truth: &TopoGroundTruth,
    ) -> Self {
        let revealed: BTreeSet<Ipv4Addr> = graph.router_addrs().collect();
        let router_hits = revealed.intersection(&truth.routers).count();
        let link_hits = graph
            .links
            .iter()
            .filter(|l| truth.links.contains(&(l.from, l.to)))
            .count();
        let localized: Vec<Ipv4Addr> = traceroutes.iter().filter_map(|r| r.observer_addr).collect();
        let correct = localized
            .iter()
            .filter(|a| truth.observers.contains(a))
            .count();
        Self {
            name: name.to_string(),
            icmp_rate_limit,
            traced_paths: traceroutes.len(),
            paths_with_hops: graph.traced_paths,
            icmp_observations: graph.observations,
            revealed_routers: revealed.len(),
            true_routers: truth.routers.len(),
            router_hits,
            revealed_links: graph.links.len(),
            true_links: truth.links.len(),
            link_hits,
            as_links: graph.as_links.len(),
            localized_paths: localized.len(),
            correct_localizations: correct,
        }
    }

    /// Fraction of true on-path routers the reconstruction revealed.
    pub fn router_recall(&self) -> f64 {
        ratio(self.router_hits, self.true_routers)
    }

    /// Fraction of revealed routers that are on a true route (aliasing /
    /// noise check — should be 1.0 in this simulator).
    pub fn router_precision(&self) -> f64 {
        ratio(self.router_hits, self.revealed_routers)
    }

    /// Fraction of true links the consecutive-TTL reconstruction found.
    pub fn link_recall(&self) -> f64 {
        ratio(self.link_hits, self.true_links)
    }

    /// Fraction of traced paths localized to a concrete observer address.
    pub fn localization_coverage(&self) -> f64 {
        ratio(self.localized_paths, self.traced_paths)
    }

    /// Fraction of localized paths whose observer address is a true
    /// observer — the headline accuracy number.
    pub fn localization_accuracy(&self) -> f64 {
        ratio(self.correct_localizations, self.localized_paths)
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The full ICMP-coverage sweep: one scored cell per rate-limit level, in
/// sweep order (ascending suppression).
#[derive(Debug, Clone, Serialize)]
pub struct CrossValReport {
    pub cells: Vec<CrossValCell>,
}

impl CrossValReport {
    pub fn new(cells: Vec<CrossValCell>) -> Self {
        Self { cells }
    }

    /// The baseline (no suppression) cell, when the sweep includes one.
    pub fn baseline(&self) -> Option<&CrossValCell> {
        self.cells
            .iter()
            .find(|c| c.icmp_rate_limit == 0.0)
            .or(self.cells.first())
    }

    /// Machine-readable export (the EXPERIMENTS.md diff workflow).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// The accuracy-vs-ICMP-coverage table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.name.clone(),
                    c.icmp_observations.to_string(),
                    format!("{}/{}", c.router_hits, c.true_routers),
                    format!("{:.2}", c.router_recall()),
                    format!("{:.2}", c.link_recall()),
                    format!("{}/{}", c.correct_localizations, c.localized_paths),
                    format!("{:.2}", c.localization_accuracy()),
                ]
            })
            .collect();
        render_table(
            &[
                "cell",
                "ICMP obs",
                "routers",
                "rtr recall",
                "link recall",
                "loc ok",
                "loc acc",
            ],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_core::correlate::PathKey;
    use shadow_core::decoy::DecoyProtocol;
    use shadow_topo::{ProbePath, RouterGraphBuilder};
    use shadow_vantage::platform::VpId;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn truth() -> TopoGroundTruth {
        TopoGroundTruth {
            routers: [ip("1.0.0.1"), ip("2.0.0.1"), ip("3.0.0.1")].into(),
            links: [
                (ip("1.0.0.1"), ip("2.0.0.1")),
                (ip("2.0.0.1"), ip("3.0.0.1")),
            ]
            .into(),
            observers: [ip("2.0.0.1")].into(),
        }
    }

    fn traceroute(observer: Option<&str>) -> TracerouteResult {
        TracerouteResult {
            path: PathKey {
                vp: VpId(1),
                dst: ip("10.0.0.1"),
                protocol: DecoyProtocol::Dns,
            },
            observer_hop: observer.map(|_| 2),
            dest_distance: Some(4),
            normalized_hop: observer.map(|_| 5),
            observer_addr: observer.map(ip),
            revealed_routers: Vec::new(),
        }
    }

    #[test]
    fn perfect_reconstruction_scores_unit() {
        let mut b = RouterGraphBuilder::new();
        let p = ProbePath {
            vp: 1,
            dst: ip("10.0.0.1"),
        };
        b.observe(p, 1, ip("1.0.0.1"));
        b.observe(p, 2, ip("2.0.0.1"));
        b.observe(p, 3, ip("3.0.0.1"));
        let graph = b.finalize(|_| None);
        let cell = CrossValCell::score(
            "icmp0%",
            0.0,
            &graph,
            &[traceroute(Some("2.0.0.1"))],
            &truth(),
        );
        assert_eq!(cell.router_recall(), 1.0);
        assert_eq!(cell.router_precision(), 1.0);
        assert_eq!(cell.link_recall(), 1.0);
        assert_eq!(cell.localization_accuracy(), 1.0);
        assert_eq!(cell.localization_coverage(), 1.0);
    }

    #[test]
    fn suppressed_icmp_degrades_recall() {
        // Only the TTL-2 hop answered: one router, zero links.
        let mut b = RouterGraphBuilder::new();
        b.observe(
            ProbePath {
                vp: 1,
                dst: ip("10.0.0.1"),
            },
            2,
            ip("2.0.0.1"),
        );
        let graph = b.finalize(|_| None);
        let cell = CrossValCell::score("icmp90%", 0.9, &graph, &[traceroute(None)], &truth());
        assert!((cell.router_recall() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(cell.link_recall(), 0.0);
        assert_eq!(cell.localized_paths, 0);
        assert_eq!(cell.localization_accuracy(), 0.0);
    }

    #[test]
    fn wrong_observer_counts_against_accuracy() {
        let graph = RouterGraphBuilder::new().finalize(|_| None);
        let cell = CrossValCell::score(
            "c",
            0.5,
            &graph,
            &[traceroute(Some("9.9.9.9")), traceroute(Some("2.0.0.1"))],
            &truth(),
        );
        assert_eq!(cell.localized_paths, 2);
        assert_eq!(cell.correct_localizations, 1);
        assert!((cell.localization_accuracy() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn report_renders_and_serializes() {
        let graph = RouterGraphBuilder::new().finalize(|_| None);
        let cells = vec![
            CrossValCell::score("icmp0%", 0.0, &graph, &[], &truth()),
            CrossValCell::score("icmp90%", 0.9, &graph, &[], &truth()),
        ];
        let report = CrossValReport::new(cells);
        assert_eq!(report.baseline().unwrap().name, "icmp0%");
        let json = report.to_json().unwrap();
        assert!(json.contains("icmp_rate_limit"));
        let table = report.render();
        assert!(table.contains("loc acc"));
        assert!(table.lines().count() >= 3);
    }
}
