//! Figure 6: origin ASes of unsolicited requests triggered by DNS decoys
//! sent to Resolver_h, plus the blocklist labeling of origin IPs.

use serde::{Deserialize, Serialize};
use shadow_core::correlate::CorrelatedRequest;
use shadow_core::decoy::DecoyProtocol;
use shadow_geo::{AsCatalog, Asn, GeoDb};
use shadow_honeypot::capture::ArrivalProtocol;
use shadow_intel::Blocklist;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// One (destination, origin AS) aggregation plus blocklist rates.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OriginAsReport {
    /// destination name → origin AS → unsolicited request count.
    pub per_destination: BTreeMap<String, BTreeMap<u32, usize>>,
    /// Distinct origin IPs per arrival protocol.
    pub origin_ips: BTreeMap<String, BTreeSet<Ipv4Addr>>,
    /// Blocklist hit rate over distinct origin IPs, per arrival protocol.
    pub blocklist_rates: BTreeMap<String, f64>,
}

impl OriginAsReport {
    /// Aggregate over unsolicited requests from DNS decoys sent to the
    /// destinations in `dests` (address → display name).
    pub fn compute(
        correlated: &[CorrelatedRequest],
        dests: &BTreeMap<Ipv4Addr, String>,
        geo: &GeoDb,
        blocklist: &Blocklist,
    ) -> Self {
        let mut per_destination: BTreeMap<String, BTreeMap<u32, usize>> = BTreeMap::new();
        let mut origin_ips: BTreeMap<String, BTreeSet<Ipv4Addr>> = BTreeMap::new();
        for req in correlated {
            if req.decoy.protocol != DecoyProtocol::Dns || !req.label.is_unsolicited() {
                continue;
            }
            let Some(dest_name) = dests.get(&req.decoy.dst()) else {
                continue;
            };
            let src = req.arrival.src;
            if let Some(asn) = geo.asn_of(src) {
                *per_destination
                    .entry(dest_name.clone())
                    .or_default()
                    .entry(asn.0)
                    .or_insert(0) += 1;
            }
            origin_ips
                .entry(req.arrival.protocol.as_str().to_string())
                .or_default()
                .insert(src);
        }
        let blocklist_rates = origin_ips
            .iter()
            .map(|(proto, ips)| (proto.clone(), blocklist.hit_rate(ips.iter())))
            .collect();
        Self {
            per_destination,
            origin_ips,
            blocklist_rates,
        }
    }

    /// The dominant origin AS for one destination.
    pub fn top_origin_as(&self, destination: &str) -> Option<(u32, usize)> {
        self.per_destination.get(destination).and_then(|m| {
            m.iter()
                .max_by_key(|&(asn, count)| (*count, std::cmp::Reverse(*asn)))
                .map(|(&asn, &count)| (asn, count))
        })
    }

    /// Number of distinct origin ASes feeding one destination's data —
    /// Figure 6's "decoys to 114DNS trigger queries from 4 ASes".
    pub fn origin_as_count(&self, destination: &str) -> usize {
        self.per_destination
            .get(destination)
            .map(|m| m.len())
            .unwrap_or(0)
    }

    /// Share of unsolicited DNS re-queries coming from one AS across all
    /// destinations (the Google-dominance headline).
    pub fn as_share(&self, asn: u32) -> f64 {
        let mut from_as = 0usize;
        let mut total = 0usize;
        for per_as in self.per_destination.values() {
            for (&a, &count) in per_as {
                total += count;
                if a == asn {
                    from_as += count;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            from_as as f64 / total as f64
        }
    }

    /// Render AS names for a row (helper for reports).
    pub fn named_rows<'a>(
        &'a self,
        destination: &str,
        catalog: &'a AsCatalog,
    ) -> Vec<(String, usize)> {
        let Some(per_as) = self.per_destination.get(destination) else {
            return Vec::new();
        };
        let mut rows: Vec<(String, usize)> = per_as
            .iter()
            .map(|(&asn, &count)| {
                let name = catalog
                    .get(Asn(asn))
                    .map(|i| format!("AS{asn} {}", i.name))
                    .unwrap_or_else(|| format!("AS{asn}"));
                (name, count)
            })
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows
    }
}

/// Convenience alias matching the paper's prose.
pub fn arrival_protocol_label(p: ArrivalProtocol) -> &'static str {
    p.as_str()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_core::correlate::Correlator;
    use shadow_core::decoy::DecoyRegistry;
    use shadow_geo::country::cc;
    use shadow_geo::{GeoRecord, HostingLabel, Ipv4Prefix};
    use shadow_honeypot::capture::Arrival;
    use shadow_netsim::time::{SimDuration, SimTime};
    use shadow_packet::dns::DnsName;
    use shadow_vantage::platform::VpId;

    #[test]
    fn aggregates_origin_ases_and_blocklist() {
        let zone = DnsName::parse("www.experiment.example").unwrap();
        let mut registry = DecoyRegistry::new(zone);
        let dst114 = Ipv4Addr::new(114, 114, 114, 114);
        let rec = registry.register(
            VpId(1),
            Ipv4Addr::new(10, 0, 0, 1),
            dst114,
            DecoyProtocol::Dns,
            64,
            SimTime(1_000),
            None,
        );
        let google_egress = Ipv4Addr::new(8, 8, 8, 100);
        let dirty_origin = Ipv4Addr::new(61, 0, 0, 9);
        let mk = |at: u64, src: Ipv4Addr, proto: ArrivalProtocol| Arrival {
            at: SimTime(at),
            src,
            protocol: proto,
            domain: rec.domain.clone(),
            http_path: None,
            honeypot: "AUTH".into(),
        };
        let arrivals = vec![
            mk(
                2_000,
                Ipv4Addr::new(114, 114, 114, 115),
                ArrivalProtocol::Dns,
            ), // solicited
            mk(8_000_000, google_egress, ArrivalProtocol::Dns),
            mk(9_000_000, google_egress, ArrivalProtocol::Dns),
            mk(9_500_000, dirty_origin, ArrivalProtocol::Http),
        ];
        let correlator = Correlator::new(&registry);
        let correlated = correlator.correlate(&arrivals);

        let mut geo = GeoDb::new();
        geo.insert(GeoRecord {
            prefix: Ipv4Prefix::new(Ipv4Addr::new(8, 0, 0, 0), 8).unwrap(),
            asn: Asn(15169),
            country: cc("US"),
            hosting: HostingLabel::Hosting,
        });
        geo.insert(GeoRecord {
            prefix: Ipv4Prefix::new(Ipv4Addr::new(61, 0, 0, 0), 8).unwrap(),
            asn: Asn(4134),
            country: cc("CN"),
            hosting: HostingLabel::Residential,
        });
        geo.insert(GeoRecord {
            prefix: Ipv4Prefix::new(Ipv4Addr::new(114, 0, 0, 0), 8).unwrap(),
            asn: Asn(23724),
            country: cc("CN"),
            hosting: HostingLabel::Hosting,
        });
        geo.build();
        let blocklist = Blocklist::from_addrs([dirty_origin]);
        let mut dests = BTreeMap::new();
        dests.insert(dst114, "114DNS".to_string());

        let report = OriginAsReport::compute(&correlated, &dests, &geo, &blocklist);
        assert_eq!(report.top_origin_as("114DNS"), Some((15169, 2)));
        assert_eq!(report.origin_as_count("114DNS"), 2);
        assert!(report.as_share(15169) > 0.5, "Google dominates DNS origins");
        assert_eq!(report.blocklist_rates["DNS"], 0.0);
        assert_eq!(report.blocklist_rates["HTTP"], 1.0);
        let _ = SimDuration::ZERO;
    }
}
