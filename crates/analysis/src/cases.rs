//! The paper's three case studies, as reusable analyses:
//!
//! * **Case I — Yandex** (§5.1): >99% of decoys shadowed, data retained
//!   for days, 51% yield HTTP/HTTPS probes.
//! * **Case II — 114DNS anycast** (§5.1): decoys routed to CN instances
//!   trigger unsolicited requests; US instances do not.
//! * **Case III — HTTP/TLS observers in China** (§5.2): observers
//!   concentrate in CN ISPs; probes originate largely from local ISPs.

use serde::{Deserialize, Serialize};
use shadow_core::correlate::CorrelatedRequest;
use shadow_core::decoy::{DecoyProtocol, DecoyRegistry};
use shadow_core::phase2::TracerouteResult;
use shadow_geo::{CountryCode, GeoDb};
use shadow_netsim::time::SimDuration;
use shadow_vantage::platform::{Platform, VpId};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Case I: one resolver's shadowing profile.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResolverCase {
    pub destination: String,
    pub decoys: usize,
    pub shadowed_decoys: usize,
    pub http_probed_decoys: usize,
    /// Median interval of unsolicited requests.
    pub median_interval_ms: Option<u64>,
    /// Fraction of unsolicited requests arriving ≥ 10 days later.
    pub ten_day_tail: f64,
}

impl ResolverCase {
    pub fn compute(
        registry: &DecoyRegistry,
        correlated: &[CorrelatedRequest],
        dst: Ipv4Addr,
        destination: &str,
    ) -> Self {
        let decoys = registry
            .iter()
            .filter(|d| d.protocol == DecoyProtocol::Dns && d.dst() == dst)
            .count();
        let mut shadowed: BTreeSet<&str> = BTreeSet::new();
        let mut http_probed: BTreeSet<&str> = BTreeSet::new();
        let mut intervals: Vec<u64> = Vec::new();
        for req in correlated {
            if req.decoy.protocol != DecoyProtocol::Dns
                || req.decoy.dst() != dst
                || !req.label.is_unsolicited()
            {
                continue;
            }
            shadowed.insert(req.decoy.domain.as_str());
            intervals.push(req.interval.millis());
            if matches!(
                req.arrival.protocol,
                shadow_honeypot::capture::ArrivalProtocol::Http
                    | shadow_honeypot::capture::ArrivalProtocol::Https
            ) {
                http_probed.insert(req.decoy.domain.as_str());
            }
        }
        intervals.sort();
        let median_interval_ms = if intervals.is_empty() {
            None
        } else {
            Some(intervals[intervals.len() / 2])
        };
        let ten_days = SimDuration::from_days(10).millis();
        let ten_day_tail = if intervals.is_empty() {
            0.0
        } else {
            intervals.iter().filter(|&&i| i >= ten_days).count() as f64 / intervals.len() as f64
        };
        Self {
            destination: destination.to_string(),
            decoys,
            shadowed_decoys: shadowed.len(),
            http_probed_decoys: http_probed.len(),
            median_interval_ms,
            ten_day_tail,
        }
    }

    pub fn shadowed_fraction(&self) -> f64 {
        if self.decoys == 0 {
            0.0
        } else {
            self.shadowed_decoys as f64 / self.decoys as f64
        }
    }

    pub fn http_probed_fraction(&self) -> f64 {
        if self.decoys == 0 {
            0.0
        } else {
            self.http_probed_decoys as f64 / self.decoys as f64
        }
    }
}

/// Case II: split one anycast destination's paths by VP country group.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AnycastCase {
    pub destination: String,
    /// (VP in split country?, problematic paths, total paths)
    pub in_country: (usize, usize),
    pub elsewhere: (usize, usize),
}

impl AnycastCase {
    /// The 114DNS shape: problematic only when the VP routes to the
    /// in-country instance. `split` is the country whose instance shadows.
    pub fn compute(
        registry: &DecoyRegistry,
        correlated: &[CorrelatedRequest],
        platform: &Platform,
        dst: Ipv4Addr,
        destination: &str,
        split: CountryCode,
    ) -> Self {
        let country_of: BTreeMap<VpId, CountryCode> =
            platform.vps.iter().map(|vp| (vp.id, vp.country)).collect();
        let mut problematic: BTreeSet<VpId> = BTreeSet::new();
        for req in correlated {
            if req.decoy.protocol == DecoyProtocol::Dns
                && req.decoy.dst() == dst
                && req.label.is_unsolicited()
            {
                problematic.insert(req.decoy.vp);
            }
        }
        let mut seen: BTreeSet<VpId> = BTreeSet::new();
        let mut in_country = (0, 0);
        let mut elsewhere = (0, 0);
        for decoy in registry.iter() {
            if decoy.protocol != DecoyProtocol::Dns || decoy.dst() != dst {
                continue;
            }
            if !seen.insert(decoy.vp) {
                continue;
            }
            let Some(&country) = country_of.get(&decoy.vp) else {
                continue;
            };
            let slot = if country == split {
                &mut in_country
            } else {
                &mut elsewhere
            };
            slot.1 += 1;
            if problematic.contains(&decoy.vp) {
                slot.0 += 1;
            }
        }
        Self {
            destination: destination.to_string(),
            in_country,
            elsewhere,
        }
    }

    pub fn in_country_ratio(&self) -> f64 {
        if self.in_country.1 == 0 {
            0.0
        } else {
            self.in_country.0 as f64 / self.in_country.1 as f64
        }
    }

    pub fn elsewhere_ratio(&self) -> f64 {
        if self.elsewhere.1 == 0 {
            0.0
        } else {
            self.elsewhere.0 as f64 / self.elsewhere.1 as f64
        }
    }
}

/// Case III: the CN concentration of HTTP/TLS observers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CnObserverCase {
    pub observers_total: usize,
    pub observers_cn: usize,
    /// Fraction of unsolicited requests (triggered by HTTP/TLS decoys)
    /// originating from CN addresses.
    pub cn_origin_fraction: f64,
}

impl CnObserverCase {
    pub fn compute(
        results: &[TracerouteResult],
        correlated: &[CorrelatedRequest],
        geo: &GeoDb,
    ) -> Self {
        let mut observers: BTreeSet<Ipv4Addr> = BTreeSet::new();
        for r in results {
            if matches!(r.path.protocol, DecoyProtocol::Http | DecoyProtocol::Tls) {
                if let Some(addr) = r.observer_addr {
                    if r.normalized_hop != Some(10) {
                        observers.insert(addr);
                    }
                }
            }
        }
        let observers_cn = observers
            .iter()
            .filter(|a| {
                geo.country_of(**a)
                    .map(|c| c.as_str() == "CN")
                    .unwrap_or(false)
            })
            .count();
        let mut cn_orig = 0usize;
        let mut total_orig = 0usize;
        for req in correlated {
            if matches!(req.decoy.protocol, DecoyProtocol::Http | DecoyProtocol::Tls)
                && req.label.is_unsolicited()
            {
                total_orig += 1;
                if geo
                    .country_of(req.arrival.src)
                    .map(|c| c.as_str() == "CN")
                    .unwrap_or(false)
                {
                    cn_orig += 1;
                }
            }
        }
        Self {
            observers_total: observers.len(),
            observers_cn,
            cn_origin_fraction: if total_orig == 0 {
                0.0
            } else {
                cn_orig as f64 / total_orig as f64
            },
        }
    }

    pub fn cn_observer_fraction(&self) -> f64 {
        if self.observers_total == 0 {
            0.0
        } else {
            self.observers_cn as f64 / self.observers_total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_core::correlate::Correlator;
    use shadow_geo::country::cc;
    use shadow_honeypot::capture::{Arrival, ArrivalProtocol};
    use shadow_netsim::time::SimTime;
    use shadow_netsim::topology::NodeId;
    use shadow_packet::dns::DnsName;
    use shadow_vantage::platform::VantagePoint;
    use shadow_vantage::providers::Market;

    fn platform() -> Platform {
        let vp = |id: u32, country: &str, market: Market| VantagePoint {
            id: VpId(id),
            provider: "X",
            market,
            node: NodeId(id),
            addr: Ipv4Addr::new(10, 0, 0, id as u8),
            advertised_country: cc(country),
            country: cc(country),
            ttl_rewrite: None,
            residential: false,
        };
        Platform::new(vec![
            vp(1, "CN", Market::China),
            vp(2, "DE", Market::Global),
        ])
    }

    #[test]
    fn anycast_case_splits_by_country() {
        let zone = DnsName::parse("www.experiment.example").unwrap();
        let mut registry = DecoyRegistry::new(zone);
        let dst = Ipv4Addr::new(114, 114, 114, 114);
        let cn_rec = registry.register(
            VpId(1),
            Ipv4Addr::new(10, 0, 0, 1),
            dst,
            DecoyProtocol::Dns,
            64,
            SimTime(0),
            None,
        );
        let de_rec = registry.register(
            VpId(2),
            Ipv4Addr::new(10, 0, 0, 2),
            dst,
            DecoyProtocol::Dns,
            64,
            SimTime(100),
            None,
        );
        let mk = |domain: &DnsName, at: u64| Arrival {
            at: SimTime(at),
            src: Ipv4Addr::new(9, 9, 9, 9),
            protocol: ArrivalProtocol::Dns,
            domain: domain.clone(),
            http_path: None,
            honeypot: "AUTH".into(),
        };
        // CN VP's decoy repeats hours later; DE VP's does not.
        let arrivals = vec![
            mk(&cn_rec.domain, 1_000),
            mk(&de_rec.domain, 1_100),
            mk(&cn_rec.domain, 10_000_000),
        ];
        let correlator = Correlator::new(&registry);
        let correlated = correlator.correlate(&arrivals);
        let case =
            AnycastCase::compute(&registry, &correlated, &platform(), dst, "114DNS", cc("CN"));
        assert_eq!(case.in_country, (1, 1));
        assert_eq!(case.elsewhere, (0, 1));
        assert_eq!(case.in_country_ratio(), 1.0);
        assert_eq!(case.elsewhere_ratio(), 0.0);
    }

    #[test]
    fn resolver_case_fractions() {
        let zone = DnsName::parse("www.experiment.example").unwrap();
        let mut registry = DecoyRegistry::new(zone);
        let dst = Ipv4Addr::new(77, 88, 8, 8);
        let recs: Vec<_> = (0..4)
            .map(|i| {
                registry.register(
                    VpId(1),
                    Ipv4Addr::new(10, 0, 0, 1),
                    dst,
                    DecoyProtocol::Dns,
                    64,
                    SimTime(i * 1_000),
                    None,
                )
            })
            .collect();
        let mk = |domain: &DnsName, at: u64, proto: ArrivalProtocol| Arrival {
            at: SimTime(at),
            src: Ipv4Addr::new(9, 9, 9, 9),
            protocol: proto,
            domain: domain.clone(),
            http_path: None,
            honeypot: "AUTH".into(),
        };
        let day = 86_400_000u64;
        let mut arrivals = Vec::new();
        for rec in &recs {
            arrivals.push(mk(
                &rec.domain,
                rec.planned_at.millis() + 500,
                ArrivalProtocol::Dns,
            ));
        }
        // 3 of 4 shadowed; 2 of 4 HTTP-probed; one ≥10 days.
        arrivals.push(mk(&recs[0].domain, 2 * day, ArrivalProtocol::Dns));
        arrivals.push(mk(&recs[1].domain, 3 * day, ArrivalProtocol::Http));
        arrivals.push(mk(&recs[2].domain, 12 * day, ArrivalProtocol::Https));
        arrivals.sort_by_key(|a| a.at);
        let correlator = Correlator::new(&registry);
        let correlated = correlator.correlate(&arrivals);
        let case = ResolverCase::compute(&registry, &correlated, dst, "Yandex");
        assert_eq!(case.decoys, 4);
        assert_eq!(case.shadowed_decoys, 3);
        assert_eq!(case.http_probed_decoys, 2);
        assert!((case.shadowed_fraction() - 0.75).abs() < 1e-9);
        assert!((case.http_probed_fraction() - 0.5).abs() < 1e-9);
        assert!(case.ten_day_tail > 0.0);
        assert!(case.median_interval_ms.is_some());
    }
}
