//! Protocol combinations (the paper's `Decoy-Request` labels) — overall and
//! per observer network.
//!
//! Section 5.2: "Protocol combinations differ among observer networks: when
//! HTTP decoys are observed by devices within AS4134, 66% (17%) of them
//! result in unsolicited HTTP(S) requests; all HTTP decoys observed by
//! AS29988 produce unsolicited DNS requests only."

use serde::{Deserialize, Serialize};
use shadow_core::correlate::{Combo, CorrelatedRequest, PathKey};
use shadow_core::phase2::TracerouteResult;
use shadow_core::sink::CorrelationAggregates;
use shadow_geo::GeoDb;
use shadow_honeypot::capture::ArrivalProtocol;
use std::collections::BTreeMap;

/// Counts per `Decoy-Request` combination (e.g. `DNS-HTTP`), keyed by the
/// typed [`Combo`] (its `Display` is the paper's label).
pub fn combo_counts(correlated: &[CorrelatedRequest]) -> BTreeMap<Combo, usize> {
    let mut out = BTreeMap::new();
    for req in correlated {
        if req.label.is_unsolicited() {
            *out.entry(req.combo()).or_insert(0) += 1;
        }
    }
    out
}

/// The streamed [`combo_counts`]: the sink already folded the combination
/// counters at capture time.
pub fn combo_counts_streamed(aggregates: &CorrelationAggregates) -> BTreeMap<Combo, usize> {
    aggregates
        .combos
        .iter()
        .map(|(&combo, &n)| (combo, n as usize))
        .collect()
}

/// Per-observer-AS protocol mixes for on-wire observers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObserverCombos {
    /// observer AS → arrival protocol → unsolicited count.
    pub per_as: BTreeMap<u32, BTreeMap<String, usize>>,
}

impl ObserverCombos {
    /// Attribute each unsolicited request on a traced path to the observer
    /// AS Phase II localized there (on-wire observers only).
    pub fn compute(
        correlated: &[CorrelatedRequest],
        traceroutes: &[TracerouteResult],
        geo: &GeoDb,
    ) -> Self {
        // Path → observer AS, for paths with an on-wire observer address.
        let mut observer_as: BTreeMap<PathKey, u32> = BTreeMap::new();
        for r in traceroutes {
            if r.normalized_hop == Some(10) {
                continue; // destination-side: not an on-the-wire device
            }
            if let Some(addr) = r.observer_addr {
                if let Some(asn) = geo.asn_of(addr) {
                    observer_as.insert(r.path, asn.0);
                }
            }
        }
        let mut per_as: BTreeMap<u32, BTreeMap<String, usize>> = BTreeMap::new();
        for req in correlated {
            if !req.label.is_unsolicited() {
                continue;
            }
            let key = PathKey {
                vp: req.decoy.vp,
                dst: req.decoy.dst(),
                protocol: req.decoy.protocol,
            };
            let Some(&asn) = observer_as.get(&key) else {
                continue;
            };
            *per_as
                .entry(asn)
                .or_default()
                .entry(req.arrival.protocol.as_str().to_string())
                .or_insert(0) += 1;
        }
        Self { per_as }
    }

    /// The streamed [`ObserverCombos::compute`]: per-path × arrival-protocol
    /// counters come from the capture-time fold instead of a retained
    /// correlated vector.
    pub fn compute_streamed(
        aggregates: &CorrelationAggregates,
        traceroutes: &[TracerouteResult],
        geo: &GeoDb,
    ) -> Self {
        let mut observer_as: BTreeMap<PathKey, u32> = BTreeMap::new();
        for r in traceroutes {
            if r.normalized_hop == Some(10) {
                continue; // destination-side: not an on-the-wire device
            }
            if let Some(addr) = r.observer_addr {
                if let Some(asn) = geo.asn_of(addr) {
                    observer_as.insert(r.path, asn.0);
                }
            }
        }
        let mut per_as: BTreeMap<u32, BTreeMap<String, usize>> = BTreeMap::new();
        for (&(path, arrival_protocol), &count) in &aggregates.path_combos {
            let Some(&asn) = observer_as.get(&path) else {
                continue;
            };
            *per_as
                .entry(asn)
                .or_default()
                .entry(arrival_protocol.as_str().to_string())
                .or_insert(0) += count as usize;
        }
        Self { per_as }
    }

    /// Fraction of one AS's unsolicited requests using `protocol`.
    pub fn protocol_fraction(&self, asn: u32, protocol: ArrivalProtocol) -> f64 {
        let Some(mix) = self.per_as.get(&asn) else {
            return 0.0;
        };
        let total: usize = mix.values().sum();
        if total == 0 {
            return 0.0;
        }
        mix.get(protocol.as_str()).copied().unwrap_or(0) as f64 / total as f64
    }

    /// Is this AS's probing DNS-only (the AS29988/AS40444 shape)?
    pub fn dns_only(&self, asn: u32) -> bool {
        self.per_as
            .get(&asn)
            .map(|mix| mix.keys().all(|k| k == "DNS") && !mix.is_empty())
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_core::correlate::Correlator;
    use shadow_core::decoy::{DecoyProtocol, DecoyRegistry};
    use shadow_geo::country::cc;
    use shadow_geo::{AsKind, Asn, GeoDb, Ipv4Prefix};
    use shadow_honeypot::capture::Arrival;
    use shadow_netsim::time::SimTime;
    use shadow_packet::dns::DnsName;
    use shadow_vantage::platform::VpId;
    use std::net::Ipv4Addr;

    #[test]
    fn combos_and_observer_mixes() {
        let zone = DnsName::parse("www.experiment.example").unwrap();
        let mut registry = DecoyRegistry::new(zone);
        let site = Ipv4Addr::new(60, 1, 0, 1);
        let rec = registry.register(
            VpId(1),
            Ipv4Addr::new(10, 0, 0, 1),
            site,
            DecoyProtocol::Http,
            64,
            SimTime(0),
            None,
        );
        let mk = |at: u64, proto: ArrivalProtocol| Arrival {
            at: SimTime(at),
            src: Ipv4Addr::new(61, 0, 0, 9),
            protocol: proto,
            domain: rec.domain.clone(),
            http_path: None,
            honeypot: "US".into(),
        };
        let arrivals = vec![
            mk(5_000, ArrivalProtocol::Http),
            mk(6_000, ArrivalProtocol::Http),
            mk(7_000, ArrivalProtocol::Dns),
        ];
        let correlator = Correlator::new(&registry);
        let correlated = correlator.correlate(&arrivals);

        let combos = combo_counts(&correlated);
        assert_eq!(combos[&Combo::HttpHttp], 2);
        assert_eq!(combos[&Combo::HttpDns], 1);
        assert_eq!(Combo::HttpHttp.to_string(), "HTTP-HTTP");

        // Observer localized at AS4134 on this path.
        let mut geo = GeoDb::new();
        geo.insert(shadow_geo::db::record(
            Ipv4Prefix::new(Ipv4Addr::new(61, 0, 0, 0), 8).unwrap(),
            Asn(4134),
            cc("CN"),
            AsKind::IspBackbone,
        ));
        geo.build();
        let traceroutes = vec![TracerouteResult {
            path: PathKey {
                vp: VpId(1),
                dst: site,
                protocol: DecoyProtocol::Http,
            },
            observer_hop: Some(4),
            dest_distance: Some(8),
            normalized_hop: Some(5),
            observer_addr: Some(Ipv4Addr::new(61, 0, 0, 1)),
            revealed_routers: vec![],
        }];
        let mixes = ObserverCombos::compute(&correlated, &traceroutes, &geo);
        assert!((mixes.protocol_fraction(4134, ArrivalProtocol::Http) - 2.0 / 3.0).abs() < 1e-9);
        assert!(!mixes.dns_only(4134));
    }

    #[test]
    fn dns_only_observer_detected() {
        let mut combos = ObserverCombos::default();
        combos
            .per_as
            .entry(29988)
            .or_default()
            .insert("DNS".to_string(), 7);
        assert!(combos.dns_only(29988));
        assert_eq!(combos.protocol_fraction(29988, ArrivalProtocol::Dns), 1.0);
        assert!(!combos.dns_only(12345), "unknown AS is not DNS-only");
    }
}
