//! Tables 2 and 3: where on-path observers sit (normalized hops) and which
//! networks they belong to (ICMP-revealed addresses → ASes).

use serde::{Deserialize, Serialize};
use shadow_core::decoy::DecoyProtocol;
use shadow_core::phase2::TracerouteResult;
use shadow_geo::{AsCatalog, GeoDb};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Table 2: per protocol, the fraction of localized paths whose observer
/// sits at each normalized hop (1–10; 10 = destination).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObserverHopTable {
    /// (protocol, normalized hop) → count.
    pub counts: BTreeMap<(DecoyProtocol, u8), usize>,
}

impl ObserverHopTable {
    pub fn compute(results: &[TracerouteResult]) -> Self {
        let mut counts = BTreeMap::new();
        for r in results {
            if let Some(hop) = r.normalized_hop {
                *counts.entry((r.path.protocol, hop)).or_insert(0) += 1;
            }
        }
        Self { counts }
    }

    /// Percentage at one (protocol, hop) cell.
    pub fn percent(&self, protocol: DecoyProtocol, hop: u8) -> f64 {
        let total: usize = self
            .counts
            .iter()
            .filter(|((p, _), _)| *p == protocol)
            .map(|(_, c)| *c)
            .sum();
        if total == 0 {
            return 0.0;
        }
        let here = self.counts.get(&(protocol, hop)).copied().unwrap_or(0);
        here as f64 * 100.0 / total as f64
    }

    /// Percentage of observers at the destination (hop 10).
    pub fn at_destination_percent(&self, protocol: DecoyProtocol) -> f64 {
        self.percent(protocol, 10)
    }

    /// Percentage mid-path (hops 3..=7), the paper's "middle of the path".
    pub fn mid_path_percent(&self, protocol: DecoyProtocol) -> f64 {
        (3..=7).map(|h| self.percent(protocol, h)).sum()
    }

    pub fn localized_paths(&self, protocol: DecoyProtocol) -> usize {
        self.counts
            .iter()
            .filter(|((p, _), _)| *p == protocol)
            .map(|(_, c)| *c)
            .sum()
    }
}

/// One row of Table 3: an observer AS and the paths it observed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObserverAsRow {
    pub asn: u32,
    pub name: String,
    pub country: String,
    pub paths: usize,
    pub share: f64,
}

/// Summary over ICMP-revealed observer IPs (the "572 IP addresses ... most
/// located in CN (448, 79%)" finding plus Table 3).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObserverIpSummary {
    pub total_ips: usize,
    /// country → distinct observer IPs.
    pub by_country: BTreeMap<String, usize>,
    /// Table 3 rows per protocol, sorted by share.
    pub top_ases: BTreeMap<String, Vec<ObserverAsRow>>,
}

impl ObserverIpSummary {
    /// Aggregate observer addresses revealed by Phase II, attributing each
    /// localized path to its observer's AS. Only *on-path* observers count
    /// here (hop < destination), matching Table 3's framing.
    pub fn compute(results: &[TracerouteResult], geo: &GeoDb, catalog: &AsCatalog) -> Self {
        let mut ips: BTreeMap<Ipv4Addr, ()> = BTreeMap::new();
        let mut by_country: BTreeMap<String, usize> = BTreeMap::new();
        // (protocol, asn) → paths
        let mut paths_per_as: BTreeMap<(DecoyProtocol, u32), usize> = BTreeMap::new();
        for r in results {
            let Some(addr) = r.observer_addr else {
                continue;
            };
            if r.normalized_hop == Some(10) {
                // Observer at the destination: not an on-the-wire device.
                continue;
            }
            if ips.insert(addr, ()).is_none() {
                if let Some(country) = geo.country_of(addr) {
                    *by_country.entry(country.to_string()).or_insert(0) += 1;
                }
            }
            if let Some(asn) = geo.asn_of(addr) {
                *paths_per_as.entry((r.path.protocol, asn.0)).or_insert(0) += 1;
            }
        }
        let mut top_ases: BTreeMap<String, Vec<ObserverAsRow>> = BTreeMap::new();
        for protocol in [DecoyProtocol::Dns, DecoyProtocol::Http, DecoyProtocol::Tls] {
            let total: usize = paths_per_as
                .iter()
                .filter(|((p, _), _)| *p == protocol)
                .map(|(_, c)| *c)
                .sum();
            if total == 0 {
                continue;
            }
            let mut rows: Vec<ObserverAsRow> = paths_per_as
                .iter()
                .filter(|((p, _), _)| *p == protocol)
                .map(|(&(_, asn), &paths)| {
                    let info = catalog.get(shadow_geo::Asn(asn));
                    ObserverAsRow {
                        asn,
                        name: info.map(|i| i.name.clone()).unwrap_or_default(),
                        country: info.map(|i| i.country.to_string()).unwrap_or_default(),
                        paths,
                        share: paths as f64 / total as f64,
                    }
                })
                .collect();
            rows.sort_by(|a, b| b.paths.cmp(&a.paths).then(a.asn.cmp(&b.asn)));
            top_ases.insert(protocol.as_str().to_string(), rows);
        }
        Self {
            total_ips: ips.len(),
            by_country,
            top_ases,
        }
    }

    /// Fraction of observer IPs in one country.
    pub fn country_fraction(&self, country: &str) -> f64 {
        if self.total_ips == 0 {
            return 0.0;
        }
        self.by_country.get(country).copied().unwrap_or(0) as f64 / self.total_ips as f64
    }

    /// The top AS for a protocol, if any.
    pub fn top_as(&self, protocol: DecoyProtocol) -> Option<&ObserverAsRow> {
        self.top_ases
            .get(protocol.as_str())
            .and_then(|rows| rows.first())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_core::correlate::PathKey;
    use shadow_geo::country::cc;
    use shadow_geo::{Asn, GeoRecord, HostingLabel, Ipv4Prefix};
    use shadow_vantage::platform::VpId;

    fn result(
        protocol: DecoyProtocol,
        hop: Option<u8>,
        dist: Option<u8>,
        norm: Option<u8>,
        addr: Option<Ipv4Addr>,
    ) -> TracerouteResult {
        TracerouteResult {
            path: PathKey {
                vp: VpId(1),
                dst: Ipv4Addr::new(1, 1, 1, 1),
                protocol,
            },
            observer_hop: hop,
            dest_distance: dist,
            normalized_hop: norm,
            observer_addr: addr,
            revealed_routers: Vec::new(),
        }
    }

    #[test]
    fn hop_table_percentages() {
        let results = vec![
            result(DecoyProtocol::Dns, Some(8), Some(8), Some(10), None),
            result(DecoyProtocol::Dns, Some(8), Some(8), Some(10), None),
            result(DecoyProtocol::Dns, Some(4), Some(8), Some(5), None),
            result(DecoyProtocol::Http, Some(4), Some(8), Some(5), None),
        ];
        let table = ObserverHopTable::compute(&results);
        assert!((table.at_destination_percent(DecoyProtocol::Dns) - 66.666).abs() < 0.01);
        assert!((table.percent(DecoyProtocol::Dns, 5) - 33.333).abs() < 0.01);
        assert_eq!(table.at_destination_percent(DecoyProtocol::Http), 0.0);
        assert!((table.mid_path_percent(DecoyProtocol::Http) - 100.0).abs() < 1e-9);
        assert_eq!(table.localized_paths(DecoyProtocol::Dns), 3);
    }

    #[test]
    fn ip_summary_counts_on_wire_only() {
        let mut geo = GeoDb::new();
        geo.insert(GeoRecord {
            prefix: Ipv4Prefix::new(Ipv4Addr::new(61, 0, 0, 0), 8).unwrap(),
            asn: Asn(4134),
            country: cc("CN"),
            hosting: HostingLabel::Residential,
        });
        geo.insert(GeoRecord {
            prefix: Ipv4Prefix::new(Ipv4Addr::new(70, 0, 0, 0), 8).unwrap(),
            asn: Asn(29988),
            country: cc("CA"),
            hosting: HostingLabel::Residential,
        });
        geo.build();
        let catalog = AsCatalog::generate(1, 0.01);

        let cn1 = Ipv4Addr::new(61, 1, 1, 1);
        let cn2 = Ipv4Addr::new(61, 1, 1, 2);
        let ca = Ipv4Addr::new(70, 1, 1, 1);
        let results = vec![
            result(DecoyProtocol::Http, Some(5), Some(9), Some(6), Some(cn1)),
            result(DecoyProtocol::Http, Some(5), Some(9), Some(6), Some(cn1)),
            result(DecoyProtocol::Http, Some(4), Some(9), Some(5), Some(cn2)),
            result(DecoyProtocol::Http, Some(6), Some(9), Some(7), Some(ca)),
            // At-destination result: excluded from observer-IP accounting.
            result(
                DecoyProtocol::Tls,
                Some(9),
                Some(9),
                Some(10),
                Some(Ipv4Addr::new(8, 8, 8, 8)),
            ),
        ];
        let summary = ObserverIpSummary::compute(&results, &geo, &catalog);
        assert_eq!(summary.total_ips, 3);
        assert!((summary.country_fraction("CN") - 2.0 / 3.0).abs() < 1e-9);
        let top = summary.top_as(DecoyProtocol::Http).unwrap();
        assert_eq!(top.asn, 4134);
        assert_eq!(top.paths, 3);
        assert_eq!(top.name, "CHINANET-BACKBONE");
        assert!((top.share - 0.75).abs() < 1e-9);
    }
}
