//! Fixed-width text rendering for tables and series — what the bench
//! harnesses print so that regenerated tables read like the paper's.

/// Render a table: header row + data rows, columns padded to fit.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().take(cols).enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().take(cols).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Render a labeled numeric series (e.g. a CDF on the paper grid).
pub fn render_series(title: &str, points: &[(&str, f64)]) -> String {
    let mut out = format!("{title}\n");
    for (label, value) in points {
        let bar_len = (value * 40.0).round().clamp(0.0, 40.0) as usize;
        out.push_str(&format!(
            "  {label:>6}  {value:>7.3}  {}\n",
            "#".repeat(bar_len)
        ));
    }
    out
}

/// Format a fraction as a paper-style percentage.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let rendered = render_table(
            &["AS", "Name", "Paths"],
            &[
                vec!["AS4134".into(), "CHINANET-BACKBONE".into(), "172".into()],
                vec!["AS58563".into(), "Hubei".into(), "40".into()],
            ],
        );
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("AS "));
        assert!(lines[2].contains("CHINANET-BACKBONE"));
        // Column starts align between rows.
        let name_col = lines[2].find("CHINANET").unwrap();
        assert_eq!(lines[3].find("Hubei").unwrap(), name_col);
    }

    #[test]
    fn series_renders_bars() {
        let rendered = render_series("CDF", &[("1min", 0.25), ("1d", 1.0)]);
        assert!(rendered.contains("1min"));
        assert!(rendered.lines().last().unwrap().contains(&"#".repeat(40)));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.517), "51.7%");
        assert_eq!(pct(0.0), "0.0%");
    }
}
