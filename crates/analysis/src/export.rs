//! JSON export of analysis artifacts.
//!
//! The benches print human tables; this module persists the same data as
//! machine-readable JSON so runs can be diffed across seeds and code
//! versions (the EXPERIMENTS.md workflow).

use crate::breakdown::DestinationBreakdown;
use crate::landscape::LandscapeReport;
use crate::location::{ObserverHopTable, ObserverIpSummary};
use crate::origins::OriginAsReport;
use crate::probing::ProbingReport;
use crate::reuse::ReuseReport;
use crate::temporal::Cdf;
use serde::Serialize;
use shadow_core::decoy::DecoyProtocol;
use shadow_core::sink::IntervalHistogram;

/// Everything one campaign's analysis produced, as one serializable bundle.
#[derive(Debug, Default, Serialize)]
pub struct AnalysisBundle {
    pub landscape: Option<LandscapeReport>,
    pub hop_table: Option<SerializableHopTable>,
    pub observer_ips: Option<ObserverIpSummary>,
    pub fig4_grid: Option<Vec<(String, f64)>>,
    pub fig5: Option<Vec<DestinationBreakdown>>,
    pub origins: Option<OriginAsReport>,
    pub fig7_http_grid: Option<Vec<(String, f64)>>,
    pub fig7_tls_grid: Option<Vec<(String, f64)>>,
    pub reuse: Option<ReuseReport>,
    pub probing_dns: Option<ProbingReport>,
}

/// `ObserverHopTable` keyed by tuple doesn't serialize to a JSON map;
/// flatten it into rows.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct SerializableHopTable {
    pub rows: Vec<HopRow>,
}

#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HopRow {
    pub protocol: String,
    pub hop: u8,
    pub paths: usize,
    pub percent: f64,
}

impl SerializableHopTable {
    pub fn from_table(table: &ObserverHopTable) -> Self {
        let rows = table
            .counts
            .iter()
            .map(|(&(protocol, hop), &paths)| HopRow {
                protocol: protocol.as_str().to_string(),
                hop,
                paths,
                percent: table.percent(protocol, hop),
            })
            .collect();
        Self { rows }
    }
}

/// Turn a CDF into its paper-grid points with owned labels.
pub fn grid_points(cdf: &Cdf) -> Vec<(String, f64)> {
    cdf.paper_grid()
        .into_iter()
        .map(|(label, v)| (label.to_string(), v))
        .collect()
}

/// The streamed [`grid_points`]: the same paper grid, read from a sink
/// interval histogram (bit-identical to the retained CDF at these points).
pub fn grid_points_streamed(hist: &IntervalHistogram) -> Vec<(String, f64)> {
    crate::temporal::histogram_paper_grid(hist)
        .into_iter()
        .map(|(label, v)| (label.to_string(), v))
        .collect()
}

impl AnalysisBundle {
    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }
}

/// Protocol label helper shared with consumers building bundles.
pub fn protocol_label(protocol: DecoyProtocol) -> &'static str {
    protocol.as_str()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_core::correlate::PathKey;
    use shadow_core::phase2::TracerouteResult;
    use shadow_vantage::platform::VpId;
    use std::net::Ipv4Addr;

    fn table() -> ObserverHopTable {
        let results = vec![TracerouteResult {
            path: PathKey {
                vp: VpId(1),
                dst: Ipv4Addr::new(8, 8, 8, 8),
                protocol: DecoyProtocol::Dns,
            },
            observer_hop: Some(8),
            dest_distance: Some(8),
            normalized_hop: Some(10),
            observer_addr: None,
            revealed_routers: vec![],
        }];
        ObserverHopTable::compute(&results)
    }

    #[test]
    fn hop_table_flattens() {
        let flat = SerializableHopTable::from_table(&table());
        assert_eq!(flat.rows.len(), 1);
        assert_eq!(flat.rows[0].protocol, "DNS");
        assert_eq!(flat.rows[0].hop, 10);
        assert_eq!(flat.rows[0].percent, 100.0);
    }

    #[test]
    fn bundle_serializes_to_json() {
        let bundle = AnalysisBundle {
            hop_table: Some(SerializableHopTable::from_table(&table())),
            fig4_grid: Some(vec![("1min".to_string(), 0.25)]),
            ..Default::default()
        };
        let json = bundle.to_json().unwrap();
        assert!(json.contains("\"hop\": 10"));
        assert!(json.contains("1min"));
        // Round-trips as generic JSON.
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(value["hop_table"]["rows"].is_array());
    }

    #[test]
    fn grid_points_are_owned() {
        let cdf = Cdf::from_durations(vec![
            shadow_netsim::time::SimDuration::from_secs(30),
            shadow_netsim::time::SimDuration::from_days(2),
        ]);
        let points = grid_points(&cdf);
        assert_eq!(points.len(), 6);
        assert_eq!(points[0].0, "1s");
        assert!(points.last().unwrap().1 >= 0.99);
    }
}
