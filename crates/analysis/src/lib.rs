//! # shadow-analysis
//!
//! Everything in the paper's Sections 4 and 5: each module regenerates one
//! table or figure from campaign data (see DESIGN.md's experiment index).
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`landscape`] | Figure 3 — problematic-path ratios per country × destination |
//! | [`location`] | Tables 2 and 3 — observer hops and observer ASes |
//! | [`temporal`] | Figures 4 and 7 — decoy→unsolicited interval CDFs |
//! | [`breakdown`] | Figure 5 — per-destination decoy outcome breakdown |
//! | [`origins`] | Figure 6 — origin ASes of unsolicited requests |
//! | [`reuse`] | §5.1 — data reused multiple times |
//! | [`probing`] | §5.1/§5.2 — path enumeration, exploit checks, blocklist rates |
//! | [`cases`] | Case studies I–III |
//! | [`report`] | fixed-width text rendering for tables/series |

pub mod breakdown;
pub mod cases;
pub mod combos;
pub mod crossval;
pub mod export;
pub mod landscape;
pub mod location;
pub mod origins;
pub mod probing;
pub mod report;
pub mod reuse;
pub mod robustness;
pub mod temporal;

pub use breakdown::{DecoyOutcome, DestinationBreakdown};
pub use combos::{combo_counts, ObserverCombos};
pub use crossval::{CrossValCell, CrossValReport, TopoGroundTruth};
pub use export::{AnalysisBundle, SerializableHopTable};
pub use landscape::{LandscapeCell, LandscapeReport};
pub use location::{ObserverAsRow, ObserverHopTable, ObserverIpSummary};
pub use origins::OriginAsReport;
pub use probing::ProbingReport;
pub use report::{render_series, render_table};
pub use reuse::ReuseReport;
pub use robustness::{CellMetrics, CellReport, RobustnessReport};
pub use temporal::Cdf;
