//! Temporal analysis: the interval CDFs of Figures 4 and 7.
//!
//! Two representations coexist: the sample-exact [`Cdf`] (built from
//! retained per-request intervals) and the streamed fixed-bucket
//! [`IntervalHistogram`] folded at capture time. The paper's figures only
//! ever read the CDF at the fixed grid 1 s / 1 min / 1 h / 1 d / 10 d /
//! 30 d — every grid point is a histogram bucket edge, so the histogram's
//! cumulative counts reproduce the batch CDF fractions *bit-for-bit*
//! (`grid_exactness` test below).

use serde::{Deserialize, Serialize};
use shadow_core::correlate::CorrelatedRequest;
use shadow_core::decoy::DecoyProtocol;
use shadow_core::sink::{CorrelationAggregates, IntervalHistogram};
use shadow_netsim::time::SimDuration;

/// An empirical CDF over durations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    /// Sorted sample, milliseconds.
    samples: Vec<u64>,
}

impl Cdf {
    pub fn from_durations(mut durations: Vec<SimDuration>) -> Self {
        durations.sort();
        Self {
            samples: durations.into_iter().map(|d| d.millis()).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Fraction of samples ≤ `d`.
    pub fn fraction_at(&self, d: SimDuration) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let idx = self.samples.partition_point(|&s| s <= d.millis());
        idx as f64 / self.samples.len() as f64
    }

    /// The `q`-quantile (0..=1) of the sample.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        if self.samples.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.samples.len() - 1) as f64 * q).round() as usize;
        Some(SimDuration::from_millis(self.samples[idx]))
    }

    /// Evaluate at the paper's figure grid: 1 s, 1 min, 1 h, 1 d, 10 d, 30 d.
    pub fn paper_grid(&self) -> Vec<(&'static str, f64)> {
        [
            ("1s", SimDuration::from_secs(1)),
            ("1min", SimDuration::from_mins(1)),
            ("1h", SimDuration::from_hours(1)),
            ("1d", SimDuration::from_days(1)),
            ("10d", SimDuration::from_days(10)),
            ("30d", SimDuration::from_days(30)),
        ]
        .into_iter()
        .map(|(label, d)| (label, self.fraction_at(d)))
        .collect()
    }

    /// Detect a spike around an hourly mark: the paper uses the *absence*
    /// of spikes at TTL-ish boundaries (≈1 h) to rule out cache refreshing.
    /// Returns the fraction of mass inside `window` of `mark`.
    pub fn mass_near(&self, mark: SimDuration, window: SimDuration) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let lo = mark.millis().saturating_sub(window.millis());
        let hi = mark.millis().saturating_add(window.millis());
        let count = self.samples.iter().filter(|&&s| s >= lo && s <= hi).count();
        count as f64 / self.samples.len() as f64
    }
}

/// Figure 4 / Figure 7: CDF of intervals between decoys of `protocol` (to
/// destinations in `dst_filter`, if given) and the unsolicited requests
/// they triggered.
pub fn interval_cdf(
    correlated: &[CorrelatedRequest],
    protocol: DecoyProtocol,
    dst_filter: Option<&[std::net::Ipv4Addr]>,
) -> Cdf {
    let samples = correlated
        .iter()
        .filter(|r| r.label.is_unsolicited())
        .filter(|r| r.decoy.protocol == protocol)
        .filter(|r| match dst_filter {
            Some(dsts) => dsts.contains(&r.decoy.dst()),
            None => true,
        })
        .map(|r| r.interval)
        .collect();
    Cdf::from_durations(samples)
}

/// The streamed Figure 4 / Figure 7 series: the same selection as
/// [`interval_cdf`], read from the capture-time aggregates instead of a
/// retained request vector.
pub fn interval_histogram(
    aggregates: &CorrelationAggregates,
    protocol: DecoyProtocol,
    dst_filter: Option<&[std::net::Ipv4Addr]>,
) -> IntervalHistogram {
    aggregates.interval_histogram(protocol, |dst| match dst_filter {
        Some(dsts) => dsts.contains(&dst),
        None => true,
    })
}

/// Evaluate a streamed histogram at the paper's figure grid, mirroring
/// [`Cdf::paper_grid`] (empty series reads 0.0 everywhere, like the
/// empty CDF).
pub fn histogram_paper_grid(hist: &IntervalHistogram) -> Vec<(&'static str, f64)> {
    [
        ("1s", SimDuration::from_secs(1)),
        ("1min", SimDuration::from_mins(1)),
        ("1h", SimDuration::from_hours(1)),
        ("1d", SimDuration::from_days(1)),
        ("10d", SimDuration::from_days(10)),
        ("30d", SimDuration::from_days(30)),
    ]
    .into_iter()
    .map(|(label, d)| (label, hist.fraction_at(d).unwrap_or(0.0)))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cdf(ms: &[u64]) -> Cdf {
        Cdf::from_durations(ms.iter().map(|&m| SimDuration::from_millis(m)).collect())
    }

    #[test]
    fn fractions_monotone() {
        let c = cdf(&[100, 1_000, 60_000, 3_600_000, 86_400_000]);
        let grid = c.paper_grid();
        for pair in grid.windows(2) {
            assert!(pair[0].1 <= pair[1].1, "CDF must be monotone");
        }
        assert!((c.fraction_at(SimDuration::from_secs(1)) - 0.4).abs() < 1e-9);
        assert_eq!(c.fraction_at(SimDuration::from_days(2)), 1.0);
    }

    #[test]
    fn quantiles() {
        let c = cdf(&[10, 20, 30, 40, 50]);
        assert_eq!(c.quantile(0.0), Some(SimDuration::from_millis(10)));
        assert_eq!(c.quantile(0.5), Some(SimDuration::from_millis(30)));
        assert_eq!(c.quantile(1.0), Some(SimDuration::from_millis(50)));
        assert_eq!(Cdf::from_durations(vec![]).quantile(0.5), None);
    }

    #[test]
    fn mass_near_detects_spikes() {
        // 3 of 4 samples within ±5 min of the 1 h mark.
        let hour = 3_600_000;
        let c = cdf(&[hour - 60_000, hour, hour + 120_000, 10 * hour]);
        let mass = c.mass_near(SimDuration::from_hours(1), SimDuration::from_mins(5));
        assert!((mass - 0.75).abs() < 1e-9);
        let none = c.mass_near(SimDuration::from_hours(5), SimDuration::from_mins(5));
        assert_eq!(none, 0.0);
    }

    #[test]
    fn grid_exactness_histogram_matches_cdf_bit_for_bit() {
        // Awkward values straddling every grid edge, duplicates included.
        let samples: Vec<u64> = vec![
            0,
            1,
            999,
            1_000,
            1_001,
            59_999,
            60_000,
            60_001,
            3_599_999,
            3_600_000,
            3_600_000,
            3_600_001,
            86_400_000,
            86_400_001,
            863_999_999,
            864_000_000,
            864_000_001,
            2_591_999_999,
            2_592_000_000,
            2_592_000_001,
        ];
        let c = cdf(&samples);
        let mut hist = IntervalHistogram::default();
        for &s in &samples {
            hist.record(s);
        }
        for ((label_c, frac_c), (label_h, frac_h)) in
            c.paper_grid().into_iter().zip(histogram_paper_grid(&hist))
        {
            assert_eq!(label_c, label_h);
            assert_eq!(
                frac_c.to_bits(),
                frac_h.to_bits(),
                "grid point {label_c}: batch CDF and streamed histogram diverge"
            );
        }
    }

    #[test]
    fn empty_cdf_is_safe() {
        let c = Cdf::from_durations(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.fraction_at(SimDuration::from_days(1)), 0.0);
        assert_eq!(
            c.mass_near(SimDuration::from_hours(1), SimDuration::from_mins(5)),
            0.0
        );
    }
}
