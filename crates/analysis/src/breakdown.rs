//! Figure 5: breakdown of DNS decoys per destination, by outcome class
//! (which protocols the unsolicited requests used, and how much later they
//! came).

use serde::{Deserialize, Serialize};
use shadow_core::correlate::CorrelatedRequest;
use shadow_core::decoy::{DecoyProtocol, DecoyRegistry};
use shadow_core::sink::{
    CorrelationAggregates, OUTCOME_DNS_EARLY, OUTCOME_DNS_LATE, OUTCOME_HTTP_EARLY,
    OUTCOME_HTTP_LATE,
};
use shadow_honeypot::capture::ArrivalProtocol;
use shadow_netsim::time::SimDuration;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// The outcome class of one decoy, mirroring Figure 5's stacked groups.
/// Ordering matters: a decoy is assigned its "strongest" class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DecoyOutcome {
    /// No unsolicited request at all.
    Silent,
    /// Only DNS-DNS repeats, all within one hour.
    DnsRepeatsWithinHour,
    /// DNS-DNS repeats arriving after one hour (or later days).
    DnsRepeatsLater,
    /// At least one unsolicited HTTP or HTTPS request within one hour.
    HttpWithinHour,
    /// At least one unsolicited HTTP or HTTPS request after hours/days —
    /// the clearest probing signal ("falls beyond common implementation
    /// choices").
    HttpLater,
}

impl DecoyOutcome {
    pub fn label(self) -> &'static str {
        match self {
            DecoyOutcome::Silent => "silent",
            DecoyOutcome::DnsRepeatsWithinHour => "DNS<1h",
            DecoyOutcome::DnsRepeatsLater => "DNS>1h",
            DecoyOutcome::HttpWithinHour => "HTTP(S)<1h",
            DecoyOutcome::HttpLater => "HTTP(S)>1h",
        }
    }
}

/// Figure 5 for one destination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DestinationBreakdown {
    pub destination: String,
    pub decoys: usize,
    pub outcomes: BTreeMap<DecoyOutcome, usize>,
}

impl DestinationBreakdown {
    pub fn fraction(&self, outcome: DecoyOutcome) -> f64 {
        if self.decoys == 0 {
            return 0.0;
        }
        self.outcomes.get(&outcome).copied().unwrap_or(0) as f64 / self.decoys as f64
    }

    /// Fraction of decoys triggering anything unsolicited.
    pub fn shadowed_fraction(&self) -> f64 {
        1.0 - self.fraction(DecoyOutcome::Silent)
    }

    /// Fraction triggering HTTP(S) probes after an hour or later —
    /// Figure 5's "~50% for Yandex/114DNS" observation.
    pub fn late_http_fraction(&self) -> f64 {
        self.fraction(DecoyOutcome::HttpLater)
    }
}

/// Compute Figure 5 over all DNS decoys, grouped by destination name.
pub fn compute(
    registry: &DecoyRegistry,
    correlated: &[CorrelatedRequest],
    dest_names: &BTreeMap<Ipv4Addr, String>,
) -> Vec<DestinationBreakdown> {
    let hour = SimDuration::from_hours(1);
    // Per decoy domain: the strongest outcome observed.
    let mut outcome_per_decoy: BTreeMap<&shadow_packet::dns::DnsName, DecoyOutcome> =
        BTreeMap::new();
    for req in correlated {
        if req.decoy.protocol != DecoyProtocol::Dns || !req.label.is_unsolicited() {
            continue;
        }
        let class = match req.arrival.protocol {
            ArrivalProtocol::Http | ArrivalProtocol::Https => {
                if req.interval > hour {
                    DecoyOutcome::HttpLater
                } else {
                    DecoyOutcome::HttpWithinHour
                }
            }
            ArrivalProtocol::Dns => {
                if req.interval > hour {
                    DecoyOutcome::DnsRepeatsLater
                } else {
                    DecoyOutcome::DnsRepeatsWithinHour
                }
            }
        };
        outcome_per_decoy
            .entry(&req.decoy.domain)
            .and_modify(|c| *c = (*c).max(class))
            .or_insert(class);
    }

    group_by_destination(registry, dest_names, |domain| {
        outcome_per_decoy.get(domain).copied()
    })
}

/// The streamed Figure 5: the strongest outcome per decoy is decoded from
/// the capture-time fold's outcome bits (the bit precedence mirrors the
/// [`DecoyOutcome`] ordering, so the decoded class equals the batch `max`).
pub fn compute_streamed(
    registry: &DecoyRegistry,
    aggregates: &CorrelationAggregates,
    dest_names: &BTreeMap<Ipv4Addr, String>,
) -> Vec<DestinationBreakdown> {
    group_by_destination(registry, dest_names, |domain| {
        let fold = aggregates.decoys.get(domain)?;
        if fold.outcome_bits & OUTCOME_HTTP_LATE != 0 {
            Some(DecoyOutcome::HttpLater)
        } else if fold.outcome_bits & OUTCOME_HTTP_EARLY != 0 {
            Some(DecoyOutcome::HttpWithinHour)
        } else if fold.outcome_bits & OUTCOME_DNS_LATE != 0 {
            Some(DecoyOutcome::DnsRepeatsLater)
        } else if fold.outcome_bits & OUTCOME_DNS_EARLY != 0 {
            Some(DecoyOutcome::DnsRepeatsWithinHour)
        } else {
            None
        }
    })
}

/// Shared denominator walk: every DNS decoy in the registry lands in its
/// destination's row with the outcome `classify` assigns it (`None` =
/// silent).
fn group_by_destination(
    registry: &DecoyRegistry,
    dest_names: &BTreeMap<Ipv4Addr, String>,
    classify: impl Fn(&shadow_packet::dns::DnsName) -> Option<DecoyOutcome>,
) -> Vec<DestinationBreakdown> {
    let mut per_dest: BTreeMap<String, DestinationBreakdown> = BTreeMap::new();
    for decoy in registry.iter() {
        if decoy.protocol != DecoyProtocol::Dns {
            continue;
        }
        let dest = dest_names
            .get(&decoy.dst())
            .cloned()
            .unwrap_or_else(|| decoy.dst().to_string());
        let entry = per_dest
            .entry(dest.clone())
            .or_insert(DestinationBreakdown {
                destination: dest,
                decoys: 0,
                outcomes: BTreeMap::new(),
            });
        entry.decoys += 1;
        let outcome = classify(&decoy.domain).unwrap_or(DecoyOutcome::Silent);
        *entry.outcomes.entry(outcome).or_insert(0) += 1;
    }
    per_dest.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_core::correlate::Correlator;
    use shadow_honeypot::capture::Arrival;
    use shadow_netsim::time::SimTime;
    use shadow_packet::dns::DnsName;
    use shadow_vantage::platform::VpId;

    #[test]
    fn strongest_outcome_wins() {
        let zone = DnsName::parse("www.experiment.example").unwrap();
        let mut registry = DecoyRegistry::new(zone);
        let yandex = Ipv4Addr::new(77, 88, 8, 8);
        let rec = registry.register(
            VpId(1),
            Ipv4Addr::new(10, 0, 0, 1),
            yandex,
            DecoyProtocol::Dns,
            64,
            SimTime(1_000),
            None,
        );
        let quiet = registry.register(
            VpId(1),
            Ipv4Addr::new(10, 0, 0, 1),
            yandex,
            DecoyProtocol::Dns,
            64,
            SimTime(2_000),
            None,
        );
        let mk = |domain: &DnsName, at_ms: u64, proto: ArrivalProtocol| Arrival {
            at: SimTime(at_ms),
            src: Ipv4Addr::new(9, 9, 9, 9),
            protocol: proto,
            domain: domain.clone(),
            http_path: None,
            honeypot: "AUTH".into(),
        };
        let arrivals = vec![
            mk(&rec.domain, 2_000, ArrivalProtocol::Dns), // solicited
            mk(&quiet.domain, 3_000, ArrivalProtocol::Dns), // solicited
            mk(&rec.domain, 30_000, ArrivalProtocol::Dns), // DNS<1h
            mk(&rec.domain, 90_000_000, ArrivalProtocol::Https), // HTTP>1h (25h)
        ];
        let correlator = Correlator::new(&registry);
        let correlated = correlator.correlate(&arrivals);
        let mut names = BTreeMap::new();
        names.insert(yandex, "Yandex".to_string());
        let rows = compute(&registry, &correlated, &names);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.decoys, 2);
        // The first decoy escalates to HttpLater, the second stays silent.
        assert_eq!(row.outcomes[&DecoyOutcome::HttpLater], 1);
        assert_eq!(row.outcomes[&DecoyOutcome::Silent], 1);
        assert!((row.shadowed_fraction() - 0.5).abs() < 1e-9);
        assert!((row.late_http_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn outcome_ordering_matches_strength() {
        assert!(DecoyOutcome::Silent < DecoyOutcome::DnsRepeatsWithinHour);
        assert!(DecoyOutcome::DnsRepeatsWithinHour < DecoyOutcome::DnsRepeatsLater);
        assert!(DecoyOutcome::DnsRepeatsLater < DecoyOutcome::HttpWithinHour);
        assert!(DecoyOutcome::HttpWithinHour < DecoyOutcome::HttpLater);
    }
}
