//! Sections 5.1/5.2 "HTTP and HTTPS probing incentives": path triage of
//! unsolicited HTTP requests, exploit checks, and blocklist rates per
//! (decoy protocol → arrival protocol) group.

use serde::{Deserialize, Serialize};
use shadow_core::correlate::CorrelatedRequest;
use shadow_core::decoy::DecoyProtocol;
use shadow_honeypot::capture::ArrivalProtocol;
use shadow_intel::{classify_path, Blocklist, PayloadClass};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Probing analysis over one decoy-protocol group.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProbingReport {
    pub http_requests: usize,
    pub enumeration: usize,
    pub benign: usize,
    pub exploits: usize,
    /// Distinct origin IPs per arrival protocol.
    pub origin_ips: BTreeMap<String, BTreeSet<Ipv4Addr>>,
    /// Blocklist hit rates over those IPs.
    pub blocklist_rates: BTreeMap<String, f64>,
    /// Most probed paths (path → count), for reports.
    pub top_paths: BTreeMap<String, usize>,
}

impl ProbingReport {
    /// Analyze unsolicited requests triggered by decoys of `decoy_protocol`.
    pub fn compute(
        correlated: &[CorrelatedRequest],
        decoy_protocol: DecoyProtocol,
        blocklist: &Blocklist,
    ) -> Self {
        let mut report = Self::default();
        for req in correlated {
            if req.decoy.protocol != decoy_protocol || !req.label.is_unsolicited() {
                continue;
            }
            match req.arrival.protocol {
                ArrivalProtocol::Http => {
                    report.http_requests += 1;
                    if let Some(path) = &req.arrival.http_path {
                        match classify_path(path) {
                            PayloadClass::Benign => report.benign += 1,
                            PayloadClass::Enumeration => report.enumeration += 1,
                            PayloadClass::Exploit => report.exploits += 1,
                        }
                        *report.top_paths.entry(path.clone()).or_insert(0) += 1;
                    }
                    report
                        .origin_ips
                        .entry("HTTP".to_string())
                        .or_default()
                        .insert(req.arrival.src);
                }
                ArrivalProtocol::Https => {
                    report
                        .origin_ips
                        .entry("HTTPS".to_string())
                        .or_default()
                        .insert(req.arrival.src);
                }
                ArrivalProtocol::Dns => {
                    report
                        .origin_ips
                        .entry("DNS".to_string())
                        .or_default()
                        .insert(req.arrival.src);
                }
            }
        }
        report.blocklist_rates = report
            .origin_ips
            .iter()
            .map(|(proto, ips)| (proto.clone(), blocklist.hit_rate(ips.iter())))
            .collect();
        report
    }

    /// Fraction of classified HTTP paths that are enumeration (the ~95%
    /// finding; "/" fetches count as benign).
    pub fn enumeration_fraction(&self) -> f64 {
        let classified = self.enumeration + self.benign + self.exploits;
        if classified == 0 {
            return 0.0;
        }
        self.enumeration as f64 / classified as f64
    }

    pub fn blocklist_rate(&self, protocol: &str) -> f64 {
        self.blocklist_rates.get(protocol).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_core::correlate::Correlator;
    use shadow_core::decoy::DecoyRegistry;
    use shadow_honeypot::capture::Arrival;
    use shadow_netsim::time::SimTime;
    use shadow_packet::dns::DnsName;
    use shadow_vantage::platform::VpId;

    #[test]
    fn classifies_paths_and_rates() {
        let zone = DnsName::parse("www.experiment.example").unwrap();
        let mut registry = DecoyRegistry::new(zone);
        let rec = registry.register(
            VpId(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(77, 88, 8, 8),
            DecoyProtocol::Dns,
            64,
            SimTime(0),
            None,
        );
        let dirty = Ipv4Addr::new(61, 0, 0, 1);
        let clean = Ipv4Addr::new(62, 0, 0, 1);
        let mk = |at: u64, src: Ipv4Addr, proto: ArrivalProtocol, path: Option<&str>| Arrival {
            at: SimTime(at),
            src,
            protocol: proto,
            domain: rec.domain.clone(),
            http_path: path.map(str::to_string),
            honeypot: "US".into(),
        };
        let arrivals = vec![
            mk(5_000, dirty, ArrivalProtocol::Http, Some("/.git/config")),
            mk(6_000, dirty, ArrivalProtocol::Http, Some("/admin/")),
            mk(7_000, clean, ArrivalProtocol::Http, Some("/")),
            mk(8_000, dirty, ArrivalProtocol::Https, None),
        ];
        let correlator = Correlator::new(&registry);
        let correlated = correlator.correlate(&arrivals);
        let blocklist = Blocklist::from_addrs([dirty]);
        let report = ProbingReport::compute(&correlated, DecoyProtocol::Dns, &blocklist);
        assert_eq!(report.http_requests, 3);
        assert_eq!(report.enumeration, 2);
        assert_eq!(report.benign, 1);
        assert_eq!(report.exploits, 0, "no exploit payloads, as in the paper");
        assert!((report.enumeration_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert!((report.blocklist_rate("HTTP") - 0.5).abs() < 1e-9);
        assert_eq!(report.blocklist_rate("HTTPS"), 1.0);
        assert_eq!(report.top_paths["/admin/"], 1);
    }
}
