//! Robustness reporting: how much of the methodology survives impairment.
//!
//! A chaos sweep runs the same campaign under a grid of fault profiles and
//! compares each cell against the fault-free baseline. This module holds
//! the comparison — plain extracted metrics in, a [`RobustnessReport`]
//! out — so it depends on nothing above the analysis layer; the study glue
//! extracts a [`CellMetrics`] per campaign outcome.

use crate::report::render_table;
use serde::Serialize;

/// The headline numbers one campaign produced, flattened for comparison:
/// Figure 3's problematic-path ratios, Table 2's localization counts,
/// Table 3's observer-IP census, and the unsolicited-arrival volume.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct CellMetrics {
    /// Cell label (fault profile name).
    pub name: String,
    /// Problematic-path ratio per decoy protocol (Figure 3).
    pub dns_ratio: f64,
    pub http_ratio: f64,
    pub tls_ratio: f64,
    /// Paths Phase II localized to a concrete observer hop (Table 2).
    pub localized_paths: usize,
    /// Paths Phase II attempted to trace.
    pub traced_paths: usize,
    /// Distinct observer IPs revealed by ICMP Time Exceeded (Table 3).
    pub observer_ips: usize,
    /// The revealed IPs themselves (sorted, deduplicated). Recall is
    /// computed set-wise against the baseline: lost detections shuffle
    /// *which* paths fill the Phase II trace cap, so a raw count can
    /// grow under faults even while the baseline's observers vanish.
    pub observer_addrs: Vec<String>,
    /// Unsolicited arrivals after correlation.
    pub unsolicited: usize,
    /// Phase I decoys sent.
    pub decoys_sent: usize,
}

impl CellMetrics {
    /// Fraction of traced paths that yielded an observer hop.
    pub fn localization_rate(&self) -> f64 {
        if self.traced_paths == 0 {
            0.0
        } else {
            self.localized_paths as f64 / self.traced_paths as f64
        }
    }
}

/// One sweep cell compared against the baseline. "Recall" here is the
/// fraction of the baseline's signal the impaired run still recovers
/// (1.0 = unaffected; values above 1.0 mean the faults *manufactured*
/// signal — e.g. duplicate-induced false unsolicited arrivals).
#[derive(Debug, Clone, Serialize)]
pub struct CellReport {
    pub metrics: CellMetrics,
    /// Detection recall per protocol: cell ratio / baseline ratio.
    pub dns_recall: f64,
    pub http_recall: f64,
    pub tls_recall: f64,
    /// Localization-rate drift vs baseline (cell − baseline, in rate).
    pub localization_drift: f64,
    /// Observer-IP revelation recall: the fraction of the *baseline's*
    /// revealed observer IPs this cell still reveals.
    pub observer_ip_recall: f64,
    /// Unsolicited arrivals beyond the baseline count (0 when the cell
    /// saw no more than the baseline) — the duplicate-induced
    /// false-unsolicited signal.
    pub excess_unsolicited: usize,
}

fn recall(cell: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        if cell == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        cell / baseline
    }
}

/// The full sweep: the fault-free baseline plus every cell's drift.
#[derive(Debug, Clone, Serialize)]
pub struct RobustnessReport {
    pub baseline: CellMetrics,
    pub cells: Vec<CellReport>,
}

impl RobustnessReport {
    /// Compare every cell against `baseline`, preserving cell order.
    pub fn compare(baseline: CellMetrics, cells: Vec<CellMetrics>) -> Self {
        let reports = cells
            .into_iter()
            .map(|metrics| {
                let ip_recall = if baseline.observer_addrs.is_empty() {
                    1.0
                } else {
                    let recovered = baseline
                        .observer_addrs
                        .iter()
                        .filter(|ip| metrics.observer_addrs.binary_search(ip).is_ok())
                        .count();
                    recovered as f64 / baseline.observer_addrs.len() as f64
                };
                CellReport {
                    dns_recall: recall(metrics.dns_ratio, baseline.dns_ratio),
                    http_recall: recall(metrics.http_ratio, baseline.http_ratio),
                    tls_recall: recall(metrics.tls_ratio, baseline.tls_ratio),
                    localization_drift: metrics.localization_rate() - baseline.localization_rate(),
                    observer_ip_recall: ip_recall,
                    excess_unsolicited: metrics.unsolicited.saturating_sub(baseline.unsolicited),
                    metrics,
                }
            })
            .collect();
        Self {
            baseline,
            cells: reports,
        }
    }

    /// Machine-readable export (the EXPERIMENTS.md diff workflow).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Human-readable sweep table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|cell| {
                vec![
                    cell.metrics.name.clone(),
                    format!("{:.2}", cell.dns_recall),
                    format!("{:.2}", cell.http_recall),
                    format!("{:.2}", cell.tls_recall),
                    format!("{:+.3}", cell.localization_drift),
                    format!("{:.2}", cell.observer_ip_recall),
                    cell.excess_unsolicited.to_string(),
                ]
            })
            .collect();
        render_table(
            &[
                "cell",
                "DNS rec",
                "HTTP rec",
                "TLS rec",
                "loc drift",
                "IP rec",
                "excess unsol",
            ],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        let mut out: Vec<String> = (1..=n).map(|i| format!("10.0.0.{i}")).collect();
        out.sort();
        out
    }

    fn baseline() -> CellMetrics {
        CellMetrics {
            name: "baseline".into(),
            dns_ratio: 0.10,
            http_ratio: 0.08,
            tls_ratio: 0.04,
            localized_paths: 40,
            traced_paths: 50,
            observer_ips: 20,
            observer_addrs: addrs(20),
            unsolicited: 100,
            decoys_sent: 1_000,
        }
    }

    #[test]
    fn identical_cell_has_unit_recall() {
        let report = RobustnessReport::compare(
            baseline(),
            vec![CellMetrics {
                name: "clean".into(),
                ..baseline()
            }],
        );
        let cell = &report.cells[0];
        assert_eq!(cell.dns_recall, 1.0);
        assert_eq!(cell.http_recall, 1.0);
        assert_eq!(cell.tls_recall, 1.0);
        assert_eq!(cell.localization_drift, 0.0);
        assert_eq!(cell.observer_ip_recall, 1.0);
        assert_eq!(cell.excess_unsolicited, 0);
    }

    #[test]
    fn degraded_cell_shows_partial_recall() {
        let degraded = CellMetrics {
            name: "loss5%".into(),
            dns_ratio: 0.08,
            http_ratio: 0.02,
            tls_ratio: 0.01,
            localized_paths: 20,
            traced_paths: 50,
            observer_ips: 10,
            observer_addrs: addrs(20)[..10].to_vec(),
            unsolicited: 120,
            ..baseline()
        };
        let report = RobustnessReport::compare(baseline(), vec![degraded]);
        let cell = &report.cells[0];
        assert!((cell.dns_recall - 0.8).abs() < 1e-9);
        assert!((cell.http_recall - 0.25).abs() < 1e-9);
        assert!((cell.observer_ip_recall - 0.5).abs() < 1e-9);
        assert!((cell.localization_drift + 0.4).abs() < 1e-9);
        assert_eq!(cell.excess_unsolicited, 20);
    }

    #[test]
    fn zero_baseline_recall_is_defined() {
        let mut base = baseline();
        base.tls_ratio = 0.0;
        let mut cell = base.clone();
        cell.name = "c".into();
        let report = RobustnessReport::compare(base, vec![cell]);
        assert_eq!(report.cells[0].tls_recall, 1.0);
    }

    #[test]
    fn report_serializes_and_renders() {
        let report = RobustnessReport::compare(baseline(), vec![baseline()]);
        let json = report.to_json().unwrap();
        assert!(json.contains("observer_ip_recall"));
        let table = report.render();
        assert!(table.contains("DNS rec"));
        assert!(table.lines().count() >= 3);
    }
}
