//! The retention store: what an observer remembers, for how long.
//!
//! The paper infers retention from the interval between a decoy and the
//! unsolicited requests bearing its data (Figures 4 and 7) and attributes
//! shorter HTTP/TLS retention to "the limited storage capacity of routing
//! devices serving as traffic observers". Both knobs live here: a hard
//! capacity (FIFO eviction) and a time-to-live.
//!
//! Capacity evictions are surfaced through the run-section telemetry
//! counter `retention_capacity_evictions` (bumped by every exhibitor that
//! drives a store through `plan_probes`): per-shard stores see per-shard
//! traffic subsets, so a nonzero count flags the sharded-equivalence
//! caveat documented in DESIGN.md §5 instead of leaving it silent.
//!
//! ## Memory layout
//!
//! Lookups are O(1) via an open-addressed table of *absolute insertion
//! numbers* (monotonic, never reused), probed by an FNV-1a hash of the
//! domain. The table stores 8-byte numbers instead of cloned domain keys,
//! and an entry whose number precedes `head` (how many items have ever
//! left the queue front) is simply dead — eviction and TTL expiry never
//! touch the table, and dead entries are purged wholesale whenever the
//! table rebuilds for growth. A paper-scale campaign drives thousands of
//! these stores (one per on-path observer), so the per-retained-domain
//! footprint — one 32-byte item plus one table word — is what bounds
//! campaign RSS.

use shadow_netsim::time::{SimDuration, SimTime};
use shadow_packet::dns::DnsName;
use std::collections::VecDeque;

/// Which protocol a piece of data was extracted from.
///
/// Lives here (not in `dpi`) because every exhibitor embodiment — on-wire
/// tap, shadowing resolver, destination-side sensor — records it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObservedProtocol {
    Dns,
    Http,
    Tls,
}

impl ObservedProtocol {
    pub fn as_str(self) -> &'static str {
        match self {
            ObservedProtocol::Dns => "dns",
            ObservedProtocol::Http => "http",
            ObservedProtocol::Tls => "tls",
        }
    }
}

/// One piece of sniffed data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedItem {
    pub domain: DnsName,
    pub first_seen: SimTime,
    /// How the data was observed.
    pub via: ObservedProtocol,
    /// How many times this item has been leveraged for probes so far.
    pub uses: u32,
}

/// Marker for an unused table slot.
const EMPTY: u64 = u64::MAX;

/// FNV-1a over the domain's presentation bytes — deterministic across
/// runs and shards (probe order never leaks into observable state, but
/// the hash must not depend on process-random hasher keys either).
fn domain_hash(domain: &DnsName) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in domain.as_str().bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Bounded FIFO store with TTL expiry and O(1) domain lookup.
#[derive(Debug)]
pub struct RetentionStore {
    items: VecDeque<ObservedItem>,
    /// Open-addressed (linear-probe) table of absolute insertion numbers;
    /// `EMPTY` marks unused slots. Entries `< head` are dead (their item
    /// left the queue) and are skipped on lookup, purged on rebuild.
    table: Vec<u64>,
    /// Slots holding any number, live or dead; drives the grow/rebuild
    /// threshold (load factor ≤ 1/2 counting dead entries).
    filled: usize,
    /// Absolute insertion number of the current queue front.
    head: u64,
    capacity: usize,
    ttl: SimDuration,
    evictions: u64,
    expirations: u64,
}

impl RetentionStore {
    /// `capacity` — maximum items held (router-grade observers are small);
    /// `ttl` — how long data stays usable.
    pub fn new(capacity: usize, ttl: SimDuration) -> Self {
        Self {
            items: VecDeque::new(),
            table: Vec::new(),
            filled: 0,
            head: 0,
            capacity: capacity.max(1),
            ttl,
            evictions: 0,
            expirations: 0,
        }
    }

    /// Remove the queue front. The table entry goes stale implicitly
    /// (`abs < head`); no table write needed.
    fn pop_front(&mut self) {
        if self.items.pop_front().is_some() {
            self.head += 1;
        }
    }

    /// Find `domain`'s slot offset in `items`, or `None`.
    fn lookup(&self, domain: &DnsName) -> Option<usize> {
        if self.table.is_empty() {
            return None;
        }
        let mask = self.table.len() - 1;
        let mut i = (domain_hash(domain) as usize) & mask;
        loop {
            let abs = self.table[i];
            if abs == EMPTY {
                return None;
            }
            if abs >= self.head {
                let idx = (abs - self.head) as usize;
                if idx < self.items.len() && self.items[idx].domain == *domain {
                    return Some(idx);
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Grow/rebuild so at least one more entry fits at ≤ 1/2 load,
    /// dropping dead entries in the process.
    fn ensure_slot(&mut self) {
        if !self.table.is_empty() && (self.filled + 1) * 2 <= self.table.len() {
            return;
        }
        let want = ((self.items.len() + 1) * 2).next_power_of_two().max(16);
        self.table.clear();
        self.table.resize(want, EMPTY);
        self.filled = 0;
        let mask = want - 1;
        for (offset, item) in self.items.iter().enumerate() {
            let abs = self.head + offset as u64;
            let mut i = (domain_hash(&item.domain) as usize) & mask;
            while self.table[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.table[i] = abs;
            self.filled += 1;
        }
    }

    /// Place `abs` for `domain`; the caller guarantees free space and that
    /// the domain is not already live.
    fn place(&mut self, domain: &DnsName, abs: u64) {
        let mask = self.table.len() - 1;
        let mut i = (domain_hash(domain) as usize) & mask;
        while self.table[i] != EMPTY {
            i = (i + 1) & mask;
        }
        self.table[i] = abs;
        self.filled += 1;
    }

    pub fn ttl(&self) -> SimDuration {
        self.ttl
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    pub fn expirations(&self) -> u64 {
        self.expirations
    }

    /// Drop items whose TTL elapsed as of `now`.
    pub fn expire(&mut self, now: SimTime) {
        while let Some(front) = self.items.front() {
            if now.since(front.first_seen) > self.ttl {
                self.pop_front();
                self.expirations += 1;
            } else {
                break;
            }
        }
    }

    /// Record an observation. Returns `false` if the domain was already
    /// stored (observation refreshed nothing; exhibitors key on first
    /// sight of a name).
    pub fn observe(&mut self, domain: DnsName, via: ObservedProtocol, now: SimTime) -> bool {
        self.expire(now);
        if self.lookup(&domain).is_some() {
            return false;
        }
        if self.items.len() == self.capacity {
            self.pop_front();
            self.evictions += 1;
        }
        self.ensure_slot();
        let abs = self.head + self.items.len() as u64;
        self.place(&domain, abs);
        self.items.push_back(ObservedItem {
            domain,
            first_seen: now,
            via,
            uses: 0,
        });
        true
    }

    /// Whether `domain` is currently retained (after expiry at `now`).
    pub fn contains(&mut self, domain: &DnsName, now: SimTime) -> bool {
        self.expire(now);
        self.lookup(domain).is_some()
    }

    /// Count one use of `domain`'s data (a probe emitted).
    pub fn mark_used(&mut self, domain: &DnsName) {
        if let Some(slot) = self.lookup(domain) {
            self.items[slot].uses += 1;
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = &ObservedItem> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    const DNS: ObservedProtocol = ObservedProtocol::Dns;
    const HTTP: ObservedProtocol = ObservedProtocol::Http;

    #[test]
    fn stores_and_finds() {
        let mut store = RetentionStore::new(10, SimDuration::from_days(10));
        assert!(store.observe(name("a.example"), DNS, SimTime(0)));
        assert!(store.contains(&name("a.example"), SimTime(1_000)));
        assert!(!store.contains(&name("b.example"), SimTime(1_000)));
    }

    #[test]
    fn duplicate_observation_rejected() {
        let mut store = RetentionStore::new(10, SimDuration::from_days(1));
        assert!(store.observe(name("a.example"), DNS, SimTime(0)));
        assert!(!store.observe(name("a.example"), HTTP, SimTime(5)));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut store = RetentionStore::new(2, SimDuration::from_days(30));
        store.observe(name("a.example"), DNS, SimTime(0));
        store.observe(name("b.example"), DNS, SimTime(1));
        store.observe(name("c.example"), DNS, SimTime(2));
        assert_eq!(store.len(), 2);
        assert_eq!(store.evictions(), 1);
        assert!(!store.contains(&name("a.example"), SimTime(3)));
        assert!(store.contains(&name("c.example"), SimTime(3)));
    }

    #[test]
    fn ttl_expires_items() {
        let mut store = RetentionStore::new(10, SimDuration::from_hours(1));
        store.observe(name("a.example"), HTTP, SimTime(0));
        assert!(store.contains(&name("a.example"), SimTime(3_599_000)));
        assert!(!store.contains(&name("a.example"), SimTime(3_600_001 + 1)));
        assert_eq!(store.expirations(), 1);
    }

    #[test]
    fn expired_domain_can_reenter() {
        let mut store = RetentionStore::new(10, SimDuration::from_secs(10));
        store.observe(name("a.example"), DNS, SimTime(0));
        let later = SimTime(20_000);
        assert!(!store.contains(&name("a.example"), later));
        assert!(store.observe(name("a.example"), DNS, later));
    }

    #[test]
    fn use_counting() {
        let mut store = RetentionStore::new(10, SimDuration::from_days(1));
        store.observe(name("a.example"), DNS, SimTime(0));
        store.mark_used(&name("a.example"));
        store.mark_used(&name("a.example"));
        assert_eq!(store.iter().next().unwrap().uses, 2);
    }

    #[test]
    fn index_survives_mixed_eviction_and_expiry() {
        // Exercise the table ↔ queue offset accounting (`head`) across
        // capacity evictions, TTL expiry, and re-insertions.
        let mut store = RetentionStore::new(3, SimDuration::from_secs(100));
        for (i, n) in ["a", "b", "c", "d", "e"].iter().enumerate() {
            store.observe(name(&format!("{n}.example")), DNS, SimTime(i as u64));
        }
        assert_eq!(store.evictions(), 2, "a and b evicted by capacity");
        assert!(!store.contains(&name("a.example"), SimTime(10)));
        assert!(store.contains(&name("c.example"), SimTime(10)));
        // mark_used must hit the right slot despite the shifted head.
        store.mark_used(&name("d.example"));
        let uses: Vec<_> = store
            .iter()
            .map(|i| (i.domain.as_str().to_string(), i.uses))
            .collect();
        assert_eq!(
            uses,
            vec![
                ("c.example".to_string(), 0),
                ("d.example".to_string(), 1),
                ("e.example".to_string(), 0)
            ]
        );
        // Expire everything, then reuse a previously-evicted name.
        assert!(!store.contains(&name("c.example"), SimTime(200_000)));
        assert_eq!(store.len(), 0);
        assert!(store.observe(name("a.example"), DNS, SimTime(200_000)));
        store.mark_used(&name("a.example"));
        assert_eq!(store.iter().next().unwrap().uses, 1);
    }

    #[test]
    fn table_rebuilds_purge_dead_entries_under_churn() {
        // Heavy insert/evict churn: the table must keep finding live
        // domains while dead numbers accumulate and rebuilds purge them.
        let mut store = RetentionStore::new(64, SimDuration::from_days(30));
        for round in 0u64..2_000 {
            let d = name(&format!("d{round}.example"));
            assert!(store.observe(d.clone(), DNS, SimTime(round)));
            assert!(store.contains(&d, SimTime(round)));
            // The item evicted 64 inserts ago must be gone.
            if round >= 64 {
                assert!(!store.contains(&name(&format!("d{}.example", round - 64)), SimTime(round)));
            }
        }
        assert_eq!(store.len(), 64);
        assert_eq!(store.evictions(), 2_000 - 64);
        // The table never balloons past the live population's pow2 band
        // (64 live → 256 slots worst-case after a purge-rebuild).
        assert!(store.table.len() <= 4_096, "table leaked dead entries");
    }

    #[test]
    fn compact_layout_holds() {
        // The paper-scale RSS budget assumes a 32-byte retained item; a
        // regression here silently doubles campaign memory.
        assert_eq!(std::mem::size_of::<ObservedItem>(), 32);
    }
}
