//! The retention store: what an observer remembers, for how long.
//!
//! The paper infers retention from the interval between a decoy and the
//! unsolicited requests bearing its data (Figures 4 and 7) and attributes
//! shorter HTTP/TLS retention to "the limited storage capacity of routing
//! devices serving as traffic observers". Both knobs live here: a hard
//! capacity (FIFO eviction) and a time-to-live.
//!
//! Capacity evictions are surfaced through the run-section telemetry
//! counter `retention_capacity_evictions` (bumped by every exhibitor that
//! drives a store through `plan_probes`): per-shard stores see per-shard
//! traffic subsets, so a nonzero count flags the sharded-equivalence
//! caveat documented in DESIGN.md §5 instead of leaving it silent.

use shadow_netsim::time::{SimDuration, SimTime};
use shadow_packet::dns::DnsName;
use std::collections::{HashMap, VecDeque};

/// One piece of sniffed data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedItem {
    pub domain: DnsName,
    pub first_seen: SimTime,
    /// How the data was observed (stringly to avoid a dependency cycle;
    /// values come from [`crate::dpi::ObservedProtocol`]).
    pub via: &'static str,
    /// How many times this item has been leveraged for probes so far.
    pub uses: u32,
}

/// Bounded FIFO store with TTL expiry.
///
/// Lookups are O(1): `index` maps each retained domain to its absolute
/// insertion number, and `head` counts how many items have ever left the
/// front of the queue, so `items[index[d] - head]` addresses a domain's
/// slot directly. The tap consults the store once per observed packet —
/// with a linear scan this was the single hottest spot of the whole
/// pipeline (quadratic in retained items for fresh-domain workloads).
#[derive(Debug)]
pub struct RetentionStore {
    items: VecDeque<ObservedItem>,
    /// domain → absolute insertion number (monotonic across the store's
    /// lifetime; never reused).
    index: HashMap<DnsName, u64>,
    /// Absolute insertion number of the current queue front.
    head: u64,
    capacity: usize,
    ttl: SimDuration,
    evictions: u64,
    expirations: u64,
}

impl RetentionStore {
    /// `capacity` — maximum items held (router-grade observers are small);
    /// `ttl` — how long data stays usable.
    pub fn new(capacity: usize, ttl: SimDuration) -> Self {
        Self {
            items: VecDeque::new(),
            index: HashMap::new(),
            head: 0,
            capacity: capacity.max(1),
            ttl,
            evictions: 0,
            expirations: 0,
        }
    }

    /// Remove the queue front, keeping the index in sync.
    fn pop_front(&mut self) {
        if let Some(front) = self.items.pop_front() {
            self.index.remove(&front.domain);
            self.head += 1;
        }
    }

    pub fn ttl(&self) -> SimDuration {
        self.ttl
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    pub fn expirations(&self) -> u64 {
        self.expirations
    }

    /// Drop items whose TTL elapsed as of `now`.
    pub fn expire(&mut self, now: SimTime) {
        while let Some(front) = self.items.front() {
            if now.since(front.first_seen) > self.ttl {
                self.pop_front();
                self.expirations += 1;
            } else {
                break;
            }
        }
    }

    /// Record an observation. Returns `false` if the domain was already
    /// stored (observation refreshed nothing; exhibitors key on first
    /// sight of a name).
    pub fn observe(&mut self, domain: DnsName, via: &'static str, now: SimTime) -> bool {
        self.expire(now);
        if self.index.contains_key(&domain) {
            return false;
        }
        if self.items.len() == self.capacity {
            self.pop_front();
            self.evictions += 1;
        }
        self.index
            .insert(domain.clone(), self.head + self.items.len() as u64);
        self.items.push_back(ObservedItem {
            domain,
            first_seen: now,
            via,
            uses: 0,
        });
        true
    }

    /// Whether `domain` is currently retained (after expiry at `now`).
    pub fn contains(&mut self, domain: &DnsName, now: SimTime) -> bool {
        self.expire(now);
        self.index.contains_key(domain)
    }

    /// Count one use of `domain`'s data (a probe emitted).
    pub fn mark_used(&mut self, domain: &DnsName) {
        if let Some(&abs) = self.index.get(domain) {
            let slot = (abs - self.head) as usize;
            self.items[slot].uses += 1;
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = &ObservedItem> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    #[test]
    fn stores_and_finds() {
        let mut store = RetentionStore::new(10, SimDuration::from_days(10));
        assert!(store.observe(name("a.example"), "dns", SimTime(0)));
        assert!(store.contains(&name("a.example"), SimTime(1_000)));
        assert!(!store.contains(&name("b.example"), SimTime(1_000)));
    }

    #[test]
    fn duplicate_observation_rejected() {
        let mut store = RetentionStore::new(10, SimDuration::from_days(1));
        assert!(store.observe(name("a.example"), "dns", SimTime(0)));
        assert!(!store.observe(name("a.example"), "http", SimTime(5)));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut store = RetentionStore::new(2, SimDuration::from_days(30));
        store.observe(name("a.example"), "dns", SimTime(0));
        store.observe(name("b.example"), "dns", SimTime(1));
        store.observe(name("c.example"), "dns", SimTime(2));
        assert_eq!(store.len(), 2);
        assert_eq!(store.evictions(), 1);
        assert!(!store.contains(&name("a.example"), SimTime(3)));
        assert!(store.contains(&name("c.example"), SimTime(3)));
    }

    #[test]
    fn ttl_expires_items() {
        let mut store = RetentionStore::new(10, SimDuration::from_hours(1));
        store.observe(name("a.example"), "http", SimTime(0));
        assert!(store.contains(&name("a.example"), SimTime(3_599_000)));
        assert!(!store.contains(&name("a.example"), SimTime(3_600_001 + 1)));
        assert_eq!(store.expirations(), 1);
    }

    #[test]
    fn expired_domain_can_reenter() {
        let mut store = RetentionStore::new(10, SimDuration::from_secs(10));
        store.observe(name("a.example"), "dns", SimTime(0));
        let later = SimTime(20_000);
        assert!(!store.contains(&name("a.example"), later));
        assert!(store.observe(name("a.example"), "dns", later));
    }

    #[test]
    fn use_counting() {
        let mut store = RetentionStore::new(10, SimDuration::from_days(1));
        store.observe(name("a.example"), "dns", SimTime(0));
        store.mark_used(&name("a.example"));
        store.mark_used(&name("a.example"));
        assert_eq!(store.iter().next().unwrap().uses, 2);
    }

    #[test]
    fn index_survives_mixed_eviction_and_expiry() {
        // Exercise the index ↔ queue offset accounting (`head`) across
        // capacity evictions, TTL expiry, and re-insertions.
        let mut store = RetentionStore::new(3, SimDuration::from_secs(100));
        for (i, n) in ["a", "b", "c", "d", "e"].iter().enumerate() {
            store.observe(name(&format!("{n}.example")), "dns", SimTime(i as u64));
        }
        assert_eq!(store.evictions(), 2, "a and b evicted by capacity");
        assert!(!store.contains(&name("a.example"), SimTime(10)));
        assert!(store.contains(&name("c.example"), SimTime(10)));
        // mark_used must hit the right slot despite the shifted head.
        store.mark_used(&name("d.example"));
        let uses: Vec<_> = store
            .iter()
            .map(|i| (i.domain.as_str().to_string(), i.uses))
            .collect();
        assert_eq!(
            uses,
            vec![
                ("c.example".to_string(), 0),
                ("d.example".to_string(), 1),
                ("e.example".to_string(), 0)
            ]
        );
        // Expire everything, then reuse a previously-evicted name.
        assert!(!store.contains(&name("c.example"), SimTime(200_000)));
        assert_eq!(store.len(), 0);
        assert!(store.observe(name("a.example"), "dns", SimTime(200_000)));
        store.mark_used(&name("a.example"));
        assert_eq!(store.iter().next().unwrap().uses, 1);
    }
}
