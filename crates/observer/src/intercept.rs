//! DNS interception devices — the noise source of Appendix E.
//!
//! Unlike shadowing observers, interceptors *tamper* with live traffic:
//! they answer DNS queries with spoofed responses (redirect mode) or let the
//! query through while also resolving it via an alternative server
//! (replication mode). Both confuse naive observer localization, which is
//! why the paper's pair-resolver heuristic exists: an interceptor answers
//! queries sent to *any* address on the path, including addresses that run
//! no DNS service at all.

use shadow_netsim::engine::{Ctx, TapVerdict, WireTap};
use shadow_netsim::time::SimDuration;
use shadow_netsim::topology::NodeId;
use shadow_netsim::transport::Transport;
use shadow_packet::dns::{DnsMessage, DnsRecord, Rcode};
use shadow_packet::ipv4::{IpProtocol, Ipv4Packet, DEFAULT_TTL};
use shadow_packet::udp::UdpDatagram;
use shadow_packet::DecodedView;
use std::any::Any;
use std::net::Ipv4Addr;

/// Interception tactic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterceptMode {
    /// Swallow the query and answer with a spoofed response whose source is
    /// the query's original destination.
    Redirect,
    /// Forward the query untouched, but also have an alternative resolver
    /// client resolve the same name (the duplicate the paper filters out).
    Replicate,
}

/// A DNS interception middlebox attached to a router.
pub struct InterceptorTap {
    pub mode: InterceptMode,
    /// Address returned in spoofed A records (redirect mode).
    pub spoof_answer: Ipv4Addr,
    /// For replication: the shadow client node/address that re-issues the
    /// query, and the alternative resolver it uses.
    pub alt_client: Option<(NodeId, Ipv4Addr)>,
    pub alt_resolver: Ipv4Addr,
    /// Processing delay before the spoofed answer leaves the box.
    pub response_delay: SimDuration,
    pub queries_intercepted: u64,
}

impl InterceptorTap {
    pub fn redirect(spoof_answer: Ipv4Addr) -> Self {
        Self {
            mode: InterceptMode::Redirect,
            spoof_answer,
            alt_client: None,
            alt_resolver: Ipv4Addr::new(0, 0, 0, 0),
            response_delay: SimDuration::from_millis(2),
            queries_intercepted: 0,
        }
    }

    pub fn replicate(alt_client: (NodeId, Ipv4Addr), alt_resolver: Ipv4Addr) -> Self {
        Self {
            mode: InterceptMode::Replicate,
            spoof_answer: Ipv4Addr::new(0, 0, 0, 0),
            alt_client: Some(alt_client),
            alt_resolver,
            response_delay: SimDuration::from_millis(2),
            queries_intercepted: 0,
        }
    }
}

impl WireTap for InterceptorTap {
    // The interceptor needs the *entire* DNS message (transaction id,
    // flags, question) to forge responses, not just the memoized name
    // field, so it decodes the payload itself rather than using the view.
    fn on_packet(
        &mut self,
        pkt: &Ipv4Packet,
        _view: &DecodedView,
        _at: NodeId,
        ctx: &mut Ctx<'_>,
    ) -> TapVerdict {
        let Ok(Transport::Udp(dg)) = Transport::parse(pkt) else {
            return TapVerdict::Continue;
        };
        if dg.dst_port != 53 {
            return TapVerdict::Continue;
        }
        let Ok(query) = DnsMessage::decode(&dg.payload) else {
            return TapVerdict::Continue;
        };
        if query.flags.response {
            return TapVerdict::Continue;
        }
        // Never re-intercept the box's own replicated queries — they would
        // replicate recursively forever.
        if let Some((_, alt_addr)) = self.alt_client {
            if pkt.header.src == alt_addr {
                return TapVerdict::Continue;
            }
        }
        self.queries_intercepted += 1;
        match self.mode {
            InterceptMode::Redirect => {
                // Spoof: answer as if we were the destination, regardless of
                // whether the destination actually runs DNS. This is what
                // the pair-resolver test catches.
                let answers = query
                    .qname()
                    .map(|name| vec![DnsRecord::a(name.clone(), 300, self.spoof_answer)])
                    .unwrap_or_default();
                let response = DnsMessage::response(&query, false, Rcode::NoError, answers);
                let reply = Ipv4Packet::new(
                    pkt.header.dst, // spoofed source!
                    pkt.header.src,
                    IpProtocol::Udp,
                    DEFAULT_TTL,
                    0,
                    UdpDatagram::new(53, dg.src_port, response.encode()).encode(),
                );
                ctx.send_from(ctx.node(), self.response_delay, reply);
                TapVerdict::Drop
            }
            InterceptMode::Replicate => {
                if let Some((alt_node, alt_addr)) = self.alt_client {
                    let copy = Ipv4Packet::new(
                        alt_addr,
                        self.alt_resolver,
                        IpProtocol::Udp,
                        DEFAULT_TTL,
                        0,
                        UdpDatagram::new(40_000, 53, dg.payload.clone()).encode(),
                    );
                    ctx.send_from(alt_node, self.response_delay, copy);
                }
                TapVerdict::Continue
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_geo::{Asn, Region};
    use shadow_netsim::engine::{Engine, Host};
    use shadow_netsim::time::SimTime;
    use shadow_netsim::topology::TopologyBuilder;
    use shadow_packet::dns::DnsName;

    struct Sink {
        packets: Vec<(SimTime, Ipv4Packet)>,
    }

    impl Host for Sink {
        fn on_packet(&mut self, pkt: Ipv4Packet, ctx: &mut Ctx<'_>) {
            self.packets.push((ctx.now(), pkt));
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct World {
        engine: Engine,
        client: NodeId,
        resolver: NodeId,
        alt_resolver: NodeId,
        alt_client: NodeId,
        tap_node: NodeId,
        client_addr: Ipv4Addr,
        resolver_addr: Ipv4Addr,
        pair_addr: Ipv4Addr,
        alt_resolver_addr: Ipv4Addr,
        alt_client_addr: Ipv4Addr,
    }

    fn world() -> World {
        let mut tb = TopologyBuilder::new(11);
        tb.add_as(Asn(1), Region::EastAsia);
        tb.add_as(Asn(2), Region::NorthAmerica);
        tb.link(Asn(1), Asn(2)).unwrap();
        tb.add_router(Asn(1), Ipv4Addr::new(1, 0, 0, 1), true)
            .unwrap();
        tb.add_router(Asn(2), Ipv4Addr::new(2, 0, 0, 1), true)
            .unwrap();
        let client_addr = Ipv4Addr::new(1, 1, 0, 1);
        let resolver_addr = Ipv4Addr::new(2, 1, 0, 1);
        let pair_addr = Ipv4Addr::new(2, 1, 0, 4); // same /24, no DNS service
        let alt_resolver_addr = Ipv4Addr::new(2, 1, 0, 77);
        let alt_client_addr = Ipv4Addr::new(1, 1, 0, 200);
        let client = tb.add_host(Asn(1), client_addr).unwrap();
        let resolver = tb.add_host(Asn(2), resolver_addr).unwrap();
        let _pair = tb.add_host(Asn(2), pair_addr).unwrap();
        let alt_resolver = tb.add_host(Asn(2), alt_resolver_addr).unwrap();
        let alt_client = tb.add_host(Asn(1), alt_client_addr).unwrap();
        let topo = tb.build().unwrap();
        let route = topo.route(client, resolver).unwrap();
        let tap_node = route[1];
        let engine = Engine::new(topo);
        World {
            engine,
            client,
            resolver,
            alt_resolver,
            alt_client,
            tap_node,
            client_addr,
            resolver_addr,
            pair_addr,
            alt_resolver_addr,
            alt_client_addr,
        }
    }

    fn query_packet(src: Ipv4Addr, dst: Ipv4Addr, name: &str) -> Ipv4Packet {
        let q = DnsMessage::query(42, DnsName::parse(name).unwrap());
        Ipv4Packet::new(
            src,
            dst,
            IpProtocol::Udp,
            DEFAULT_TTL,
            7,
            UdpDatagram::new(5353, 53, q.encode()).encode(),
        )
    }

    #[test]
    fn redirect_spoofs_even_for_pair_addresses() {
        let mut w = world();
        w.engine.add_tap(
            w.tap_node,
            Box::new(InterceptorTap::redirect(Ipv4Addr::new(9, 9, 9, 9))),
        );
        w.engine.add_host(
            w.client,
            Box::new(Sink {
                packets: Vec::new(),
            }),
        );
        w.engine.add_host(
            w.resolver,
            Box::new(Sink {
                packets: Vec::new(),
            }),
        );
        // Query the *pair* address, which runs no DNS service.
        w.engine.inject(
            SimTime::ZERO,
            w.client,
            query_packet(w.client_addr, w.pair_addr, "probe.www.experiment.example"),
        );
        w.engine.run_to_completion();
        let client_sink = w.engine.host_as::<Sink>(w.client).unwrap();
        assert_eq!(client_sink.packets.len(), 1, "spoofed answer came back");
        let pkt = &client_sink.packets[0].1;
        assert_eq!(pkt.header.src, w.pair_addr, "source is spoofed as the pair");
        let dg = UdpDatagram::decode(&pkt.payload).unwrap();
        let resp = DnsMessage::decode(&dg.payload).unwrap();
        assert!(resp.flags.response);
        assert_eq!(
            resp.answers[0].data,
            shadow_packet::dns::RecordData::A(Ipv4Addr::new(9, 9, 9, 9))
        );
        // The query never reached the pair host (dropped at the tap).
        assert_eq!(w.engine.stats().packets_dropped_by_tap, 1);
    }

    #[test]
    fn replicate_duplicates_to_alternative_resolver() {
        let mut w = world();
        w.engine.add_tap(
            w.tap_node,
            Box::new(InterceptorTap::replicate(
                (w.alt_client, w.alt_client_addr),
                w.alt_resolver_addr,
            )),
        );
        w.engine.add_host(
            w.resolver,
            Box::new(Sink {
                packets: Vec::new(),
            }),
        );
        w.engine.add_host(
            w.alt_resolver,
            Box::new(Sink {
                packets: Vec::new(),
            }),
        );
        w.engine.inject(
            SimTime::ZERO,
            w.client,
            query_packet(w.client_addr, w.resolver_addr, "rep.www.experiment.example"),
        );
        w.engine.run_to_completion();
        // Original reaches the real resolver...
        let resolver_sink = w.engine.host_as::<Sink>(w.resolver).unwrap();
        assert_eq!(resolver_sink.packets.len(), 1);
        // ...and a copy reaches the alternative resolver from the shadow
        // client.
        let alt_sink = w.engine.host_as::<Sink>(w.alt_resolver).unwrap();
        assert_eq!(alt_sink.packets.len(), 1);
        assert_eq!(alt_sink.packets[0].1.header.src, w.alt_client_addr);
        // Wait: the replicated copy leaves from alt_client's node, so it
        // must traverse the network again (not teleport).
        assert!(alt_sink.packets[0].0 > SimTime::ZERO);
    }

    #[test]
    fn non_dns_traffic_untouched() {
        let mut w = world();
        w.engine.add_tap(
            w.tap_node,
            Box::new(InterceptorTap::redirect(Ipv4Addr::new(9, 9, 9, 9))),
        );
        w.engine.add_host(
            w.resolver,
            Box::new(Sink {
                packets: Vec::new(),
            }),
        );
        let pkt = Ipv4Packet::new(
            w.client_addr,
            w.resolver_addr,
            IpProtocol::Udp,
            DEFAULT_TTL,
            1,
            UdpDatagram::new(1000, 4500, b"not dns".to_vec()).encode(),
        );
        w.engine.inject(SimTime::ZERO, w.client, pkt);
        w.engine.run_to_completion();
        let sink = w.engine.host_as::<Sink>(w.resolver).unwrap();
        assert_eq!(sink.packets.len(), 1, "non-DNS passes through");
    }

    #[test]
    fn dns_responses_pass_through() {
        let mut w = world();
        w.engine.add_tap(
            w.tap_node,
            Box::new(InterceptorTap::redirect(Ipv4Addr::new(9, 9, 9, 9))),
        );
        w.engine.add_host(
            w.client,
            Box::new(Sink {
                packets: Vec::new(),
            }),
        );
        // A response travelling resolver→client crosses the same router.
        let q = DnsMessage::query(1, DnsName::parse("x.example").unwrap());
        let resp = DnsMessage::response(&q, false, Rcode::NoError, vec![]);
        let pkt = Ipv4Packet::new(
            w.resolver_addr,
            w.client_addr,
            IpProtocol::Udp,
            DEFAULT_TTL,
            1,
            UdpDatagram::new(53, 5353, resp.encode()).encode(),
        );
        w.engine.inject(SimTime::ZERO, w.resolver, pkt);
        w.engine.run_to_completion();
        let sink = w.engine.host_as::<Sink>(w.client).unwrap();
        assert_eq!(sink.packets.len(), 1);
    }
}
