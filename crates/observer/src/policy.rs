//! Replay policies: *when*, *how often*, and *over what protocol* observed
//! data re-appears as unsolicited requests.
//!
//! These distributions are the ground-truth dials behind the paper's
//! Figures 4, 5 and 7: a Yandex-style exhibitor probes after hours or days
//! and re-uses data many times; a benign resolver merely retries within a
//! minute; a router-grade DPI box replays within its short retention window.

use rand::Rng;
use serde::{Deserialize, Serialize};
use shadow_netsim::time::SimDuration;

/// A delay range for one mixture component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DelayBucket {
    /// Uniform in `[lo, hi]` seconds.
    Seconds(u64, u64),
    /// Uniform in `[lo, hi]` minutes.
    Minutes(u64, u64),
    /// Uniform in `[lo, hi]` hours.
    Hours(u64, u64),
    /// Uniform in `[lo, hi]` days.
    Days(u64, u64),
}

impl DelayBucket {
    fn range_ms(self) -> (u64, u64) {
        match self {
            DelayBucket::Seconds(lo, hi) => (lo * 1_000, hi * 1_000),
            DelayBucket::Minutes(lo, hi) => (lo * 60_000, hi * 60_000),
            DelayBucket::Hours(lo, hi) => (lo * 3_600_000, hi * 3_600_000),
            DelayBucket::Days(lo, hi) => (lo * 86_400_000, hi * 86_400_000),
        }
    }

    /// Sample a delay from the bucket.
    pub fn sample<R: Rng>(self, rng: &mut R) -> SimDuration {
        let (lo, hi) = self.range_ms();
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        SimDuration::from_millis(if lo == hi { lo } else { rng.gen_range(lo..=hi) })
    }
}

/// A weighted item in a discrete mixture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightedChoice<T> {
    pub item: T,
    pub weight: u32,
}

impl<T> WeightedChoice<T> {
    pub fn new(item: T, weight: u32) -> Self {
        Self { item, weight }
    }
}

/// Sample one item from a weighted list (panics on an empty or zero-weight
/// list — policies are validated at construction).
pub fn sample_weighted<'a, T, R: Rng>(choices: &'a [WeightedChoice<T>], rng: &mut R) -> &'a T {
    let total: u64 = choices.iter().map(|c| u64::from(c.weight)).sum();
    assert!(total > 0, "weighted choice over empty/zero weights");
    let mut pick = rng.gen_range(0..total);
    for choice in choices {
        let w = u64::from(choice.weight);
        if pick < w {
            return &choice.item;
        }
        pick -= w;
    }
    unreachable!("weights exhausted before selection")
}

/// The protocol of an unsolicited probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProbeKind {
    /// Re-query the observed domain over DNS.
    Dns,
    /// HTTP GET against the domain (path enumeration).
    Http,
    /// TLS ClientHello bearing the domain in SNI ("HTTPS" in the paper's
    /// protocol-combination labels).
    Https,
}

/// Full replay policy of one exhibitor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayPolicy {
    /// Probability (in percent) that an observed item is leveraged at all.
    pub trigger_percent: u8,
    /// Mixture over probe delays.
    pub delays: Vec<WeightedChoice<DelayBucket>>,
    /// Mixture over probe protocols.
    pub protocols: Vec<WeightedChoice<ProbeKind>>,
    /// Mixture over the number of probes per observed item (the paper: 51%
    /// of DNS decoys produce >3 unsolicited requests an hour after emission).
    pub reuse: Vec<WeightedChoice<u32>>,
}

impl ReplayPolicy {
    /// Validate invariants (non-empty mixtures, non-zero weights).
    pub fn validate(&self) -> Result<(), String> {
        if self.trigger_percent > 100 {
            return Err(format!("trigger_percent {} > 100", self.trigger_percent));
        }
        for (what, empty) in [
            ("delays", self.delays.is_empty()),
            ("protocols", self.protocols.is_empty()),
            ("reuse", self.reuse.is_empty()),
        ] {
            if empty {
                return Err(format!("{what} mixture is empty"));
            }
        }
        let zero = |s: u64| s == 0;
        if zero(self.delays.iter().map(|c| u64::from(c.weight)).sum()) {
            return Err("delays weights sum to zero".into());
        }
        if zero(self.protocols.iter().map(|c| u64::from(c.weight)).sum()) {
            return Err("protocols weights sum to zero".into());
        }
        if zero(self.reuse.iter().map(|c| u64::from(c.weight)).sum()) {
            return Err("reuse weights sum to zero".into());
        }
        Ok(())
    }

    /// Should this observation be leveraged at all?
    pub fn triggers<R: Rng>(&self, rng: &mut R) -> bool {
        rng.gen_range(0..100u32) < u32::from(self.trigger_percent)
    }

    /// Sample the probe schedule for one observed item: a list of
    /// (delay, protocol) pairs, sorted by delay.
    pub fn sample_schedule<R: Rng>(&self, rng: &mut R) -> Vec<(SimDuration, ProbeKind)> {
        let count = *sample_weighted(&self.reuse, rng);
        let mut schedule: Vec<(SimDuration, ProbeKind)> = (0..count)
            .map(|_| {
                let delay = sample_weighted(&self.delays, rng).sample(rng);
                let kind = *sample_weighted(&self.protocols, rng);
                (delay, kind)
            })
            .collect();
        schedule.sort();
        schedule
    }

    /// A benign resolver's "implementation choice" behaviour: a duplicate
    /// query within a minute, nothing else (the shape the paper sees for
    /// the 15 resolvers beyond Resolver_h: 95% of unsolicited requests
    /// within 1 minute, all DNS-DNS).
    pub fn benign_retry() -> Self {
        Self {
            trigger_percent: 35,
            delays: vec![
                WeightedChoice::new(DelayBucket::Seconds(1, 55), 95),
                WeightedChoice::new(DelayBucket::Minutes(2, 50), 5),
            ],
            protocols: vec![WeightedChoice::new(ProbeKind::Dns, 1)],
            reuse: vec![WeightedChoice::new(1, 80), WeightedChoice::new(2, 20)],
        }
    }

    /// A Yandex-style heavy exhibitor: nearly every query leveraged,
    /// days-long retention, half the probes over HTTP(S), high reuse.
    pub fn heavy_prober() -> Self {
        Self {
            trigger_percent: 99,
            delays: vec![
                WeightedChoice::new(DelayBucket::Seconds(2, 50), 15),
                WeightedChoice::new(DelayBucket::Hours(1, 20), 25),
                WeightedChoice::new(DelayBucket::Days(1, 9), 30),
                WeightedChoice::new(DelayBucket::Days(10, 25), 30),
            ],
            protocols: vec![
                WeightedChoice::new(ProbeKind::Dns, 49),
                WeightedChoice::new(ProbeKind::Http, 31),
                WeightedChoice::new(ProbeKind::Https, 20),
            ],
            reuse: vec![
                WeightedChoice::new(2, 20),
                WeightedChoice::new(4, 40),
                WeightedChoice::new(6, 25),
                WeightedChoice::new(12, 15),
            ],
        }
    }

    /// A router-grade on-wire observer: short retention (bounded by the
    /// device's storage), mostly prompt probes.
    pub fn wire_observer() -> Self {
        Self {
            trigger_percent: 90,
            delays: vec![
                WeightedChoice::new(DelayBucket::Minutes(1, 50), 35),
                WeightedChoice::new(DelayBucket::Hours(1, 12), 45),
                WeightedChoice::new(DelayBucket::Days(1, 2), 20),
            ],
            protocols: vec![
                WeightedChoice::new(ProbeKind::Dns, 20),
                WeightedChoice::new(ProbeKind::Http, 60),
                WeightedChoice::new(ProbeKind::Https, 20),
            ],
            reuse: vec![
                WeightedChoice::new(1, 50),
                WeightedChoice::new(2, 35),
                WeightedChoice::new(4, 15),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    fn rng() -> ChaCha20Rng {
        ChaCha20Rng::seed_from_u64(1234)
    }

    #[test]
    fn builtin_policies_validate() {
        ReplayPolicy::benign_retry().validate().unwrap();
        ReplayPolicy::heavy_prober().validate().unwrap();
        ReplayPolicy::wire_observer().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_policies() {
        let mut p = ReplayPolicy::benign_retry();
        p.trigger_percent = 101;
        assert!(p.validate().is_err());
        let mut p = ReplayPolicy::benign_retry();
        p.delays.clear();
        assert!(p.validate().is_err());
        let mut p = ReplayPolicy::benign_retry();
        for c in &mut p.protocols {
            c.weight = 0;
        }
        assert!(p.validate().is_err());
    }

    #[test]
    fn delay_buckets_sample_in_range() {
        let mut r = rng();
        for _ in 0..200 {
            let d = DelayBucket::Hours(1, 20).sample(&mut r);
            assert!(d >= SimDuration::from_hours(1) && d <= SimDuration::from_hours(20));
            let d = DelayBucket::Days(10, 25).sample(&mut r);
            assert!(d >= SimDuration::from_days(10) && d <= SimDuration::from_days(25));
            let d = DelayBucket::Seconds(3, 3).sample(&mut r);
            assert_eq!(d, SimDuration::from_secs(3));
        }
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        let mut r = rng();
        let choices = vec![
            WeightedChoice::new("common", 90),
            WeightedChoice::new("rare", 10),
        ];
        let n = 2_000;
        let common = (0..n)
            .filter(|_| *sample_weighted(&choices, &mut r) == "common")
            .count();
        let frac = common as f64 / n as f64;
        assert!((0.85..=0.95).contains(&frac), "got {frac}");
    }

    #[test]
    fn schedule_is_sorted_and_sized() {
        let mut r = rng();
        let policy = ReplayPolicy::heavy_prober();
        for _ in 0..50 {
            let schedule = policy.sample_schedule(&mut r);
            assert!(!schedule.is_empty());
            assert!(schedule.windows(2).all(|w| w[0].0 <= w[1].0));
            assert!(schedule.len() <= 12);
        }
    }

    #[test]
    fn benign_policy_is_dns_only_and_prompt() {
        let mut r = rng();
        let policy = ReplayPolicy::benign_retry();
        let mut within_minute = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            for (delay, kind) in policy.sample_schedule(&mut r) {
                assert_eq!(kind, ProbeKind::Dns);
                total += 1;
                if delay <= SimDuration::from_mins(1) {
                    within_minute += 1;
                }
            }
        }
        let frac = within_minute as f64 / total as f64;
        assert!(frac > 0.85, "benign retries should be prompt, got {frac}");
    }

    #[test]
    fn heavy_prober_reaches_past_ten_days() {
        let mut r = rng();
        let policy = ReplayPolicy::heavy_prober();
        let mut beyond_10d = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            for (delay, _) in policy.sample_schedule(&mut r) {
                total += 1;
                if delay >= SimDuration::from_days(10) {
                    beyond_10d += 1;
                }
            }
        }
        let frac = beyond_10d as f64 / total as f64;
        assert!(
            (0.15..=0.50).contains(&frac),
            "expect a sizable ≥10-day tail, got {frac}"
        );
    }

    #[test]
    fn trigger_percent_honored() {
        let mut r = rng();
        let mut p = ReplayPolicy::benign_retry();
        p.trigger_percent = 0;
        assert!((0..100).all(|_| !p.triggers(&mut r)));
        p.trigger_percent = 100;
        assert!((0..100).all(|_| p.triggers(&mut r)));
    }

    #[test]
    fn deterministic_given_seed() {
        let policy = ReplayPolicy::heavy_prober();
        let mut a = ChaCha20Rng::seed_from_u64(7);
        let mut b = ChaCha20Rng::seed_from_u64(7);
        assert_eq!(
            policy.sample_schedule(&mut a),
            policy.sample_schedule(&mut b)
        );
    }
}
