//! The on-wire traffic observer: a DPI-style wire tap.
//!
//! Extracts the three clear-text fields the paper's decoys bait — DNS
//! QNAMEs, HTTP `Host` headers, TLS SNI — from packets the router forwards,
//! retains them, and schedules unsolicited probes through its exhibitor's
//! probe-origin hosts. Forwarding is never disturbed ([`TapVerdict::Continue`]):
//! that is precisely what makes traffic shadowing covert.

use crate::policy::{ReplayPolicy, WeightedChoice};
pub use crate::retention::ObservedProtocol;
use crate::retention::RetentionStore;
use shadow_netsim::engine::{Ctx, TapVerdict, WireTap};
use shadow_netsim::time::SimDuration;
use shadow_netsim::topology::NodeId;
use shadow_packet::dns::DnsName;
use shadow_packet::ipv4::Ipv4Packet;
use shadow_packet::{AppProtocol, DecodedView};
use std::any::Any;

impl From<AppProtocol> for ObservedProtocol {
    fn from(p: AppProtocol) -> Self {
        match p {
            AppProtocol::Dns => ObservedProtocol::Dns,
            AppProtocol::Http => ObservedProtocol::Http,
            AppProtocol::Tls => ObservedProtocol::Tls,
        }
    }
}

/// Configuration of one DPI observer.
#[derive(Debug, Clone)]
pub struct DpiConfig {
    /// Ground-truth exhibitor label (tests only; never read by the
    /// measurement pipeline).
    pub label: String,
    pub watch_dns: bool,
    pub watch_http: bool,
    pub watch_tls: bool,
    /// Only observe subdomains of this zone (`None` = everything). Real
    /// exhibitors key on newly-observed domains; the filter keeps large
    /// simulations cheap.
    pub zone_filter: Option<DnsName>,
    pub policy: ReplayPolicy,
    pub retention_capacity: usize,
    pub retention_ttl: SimDuration,
    /// Only observe packets towards these destinations (`None` = any).
    /// The paper: "observers exhibit preferences in traffic destination
    /// (similar to other types of manipulation, e.g., interception)".
    pub dst_filter: Option<std::collections::BTreeSet<std::net::Ipv4Addr>>,
    /// Probe-origin hosts this exhibitor commands, with selection weights
    /// (one AS may carry most probes, echoing Section 5.2).
    pub origins: Vec<WeightedChoice<NodeId>>,
    pub seed: u64,
}

/// Counters exposed for tests and for ground-truth bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpiStats {
    pub packets_seen: u64,
    pub domains_observed: u64,
    pub probes_scheduled: u64,
    pub probes_beyond_retention: u64,
}

/// The tap itself. Stateless apart from the retention store: all probe
/// randomness is derived per observation from `config.seed`, so what the
/// tap does for one domain never depends on what other traffic it saw.
pub struct DpiTap {
    config: DpiConfig,
    store: RetentionStore,
    stats: DpiStats,
}

impl DpiTap {
    pub fn new(config: DpiConfig) -> Self {
        config
            .policy
            .validate()
            .expect("DPI replay policy must validate");
        assert!(
            !config.origins.is_empty(),
            "a DPI observer needs at least one probe origin"
        );
        let store = RetentionStore::new(config.retention_capacity, config.retention_ttl);
        Self {
            config,
            store,
            stats: DpiStats::default(),
        }
    }

    pub fn label(&self) -> &str {
        &self.config.label
    }

    pub fn stats(&self) -> DpiStats {
        self.stats
    }

    pub fn store(&self) -> &RetentionStore {
        &self.store
    }

    /// Whether this observer's protocol switches cover `proto`. Filtering
    /// happens *after* reading the shared [`DecodedView`] — the view caches
    /// the maximal extraction, per-tap configuration is applied here.
    fn watches(&self, proto: AppProtocol) -> bool {
        match proto {
            AppProtocol::Dns => self.config.watch_dns,
            AppProtocol::Http => self.config.watch_http,
            AppProtocol::Tls => self.config.watch_tls,
        }
    }

    fn in_zone(&self, name: &DnsName) -> bool {
        match &self.config.zone_filter {
            Some(zone) => name.is_subdomain_of(zone),
            None => true,
        }
    }
}

impl WireTap for DpiTap {
    fn on_packet(
        &mut self,
        pkt: &Ipv4Packet,
        view: &DecodedView,
        _at: NodeId,
        ctx: &mut Ctx<'_>,
    ) -> TapVerdict {
        self.stats.packets_seen += 1;
        if let Some(filter) = &self.config.dst_filter {
            if !filter.contains(&pkt.header.dst) {
                return TapVerdict::Continue;
            }
        }
        // Parse-once fast path: the first tap on the route pays for the
        // application decode; this tap (and every later hop) reads the memo.
        let Some(field) = view.app_field(pkt) else {
            return TapVerdict::Continue;
        };
        if !self.watches(field.protocol) {
            return TapVerdict::Continue;
        }
        let proto = ObservedProtocol::from(field.protocol);
        let domain = field.name.clone();
        if !self.in_zone(&domain) {
            return TapVerdict::Continue;
        }
        // Data evicted after the retention TTL cannot fuel probes — the
        // mechanism behind the shorter intervals the paper sees for
        // mid-path (storage-bounded) observers.
        let (orders, plan) = crate::scheduler::plan_probes(
            &self.config.policy,
            &mut self.store,
            &self.config.origins,
            self.config.seed ^ 0xd91_7a9,
            &domain,
            proto,
            ctx.now(),
            &self.config.label,
        );
        if plan.was_new {
            self.stats.domains_observed += 1;
        }
        if plan.capacity_evictions > 0 {
            if let Some(m) = ctx.telemetry().metrics() {
                m.retention_capacity_evictions.add(plan.capacity_evictions);
            }
        }
        self.stats.probes_scheduled += u64::from(plan.probes);
        self.stats.probes_beyond_retention += u64::from(plan.beyond_retention);
        if plan.probes > 0 {
            let telemetry = ctx.telemetry();
            if let Some(m) = telemetry.metrics() {
                m.shadow_probes_scheduled.add(u64::from(plan.probes));
            }
            telemetry.event(ctx.now().millis(), Some(ctx.node().0), || {
                shadow_telemetry::EventKind::ShadowProbeScheduled {
                    domain: domain.as_str().to_string(),
                }
            });
        }
        for (origin, delay, order) in orders {
            ctx.post(origin, delay, Box::new(order));
        }
        TapVerdict::Continue
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{DelayBucket, ProbeKind};
    use crate::probe::ProbeOrder;
    use shadow_geo::{Asn, Region};
    use shadow_netsim::engine::{Engine, Host};
    use shadow_netsim::time::SimTime;
    use shadow_netsim::topology::TopologyBuilder;
    use shadow_packet::dns::DnsMessage;
    use shadow_packet::http::HttpRequest;
    use shadow_packet::ipv4::{IpProtocol, DEFAULT_TTL};
    use shadow_packet::tcp::{TcpFlags, TcpSegment};
    use shadow_packet::tls;
    use shadow_packet::udp::UdpDatagram;
    use std::net::Ipv4Addr;

    /// Records ProbeOrders with their delivery times.
    struct Recorder {
        orders: Vec<(SimTime, ProbeOrder)>,
    }

    impl Host for Recorder {
        fn on_packet(&mut self, _pkt: Ipv4Packet, _ctx: &mut Ctx<'_>) {}

        fn on_message(&mut self, msg: Box<dyn Any + Send + Sync>, ctx: &mut Ctx<'_>) {
            if let Ok(order) = msg.downcast::<ProbeOrder>() {
                self.orders.push((ctx.now(), *order));
            }
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct World {
        engine: Engine,
        client: shadow_netsim::NodeId,
        origin: shadow_netsim::NodeId,
        tap_node: shadow_netsim::NodeId,
        client_addr: Ipv4Addr,
        server_addr: Ipv4Addr,
    }

    fn world(config_for: impl FnOnce(NodeId) -> DpiConfig) -> World {
        let mut tb = TopologyBuilder::new(5);
        tb.add_as(Asn(1), Region::EastAsia);
        tb.add_as(Asn(2), Region::EastAsia);
        tb.link(Asn(1), Asn(2)).unwrap();
        tb.add_router(Asn(1), Ipv4Addr::new(1, 0, 0, 1), true)
            .unwrap();
        tb.add_router(Asn(2), Ipv4Addr::new(2, 0, 0, 1), true)
            .unwrap();
        let client_addr = Ipv4Addr::new(1, 1, 0, 1);
        let server_addr = Ipv4Addr::new(2, 1, 0, 1);
        let client = tb.add_host(Asn(1), client_addr).unwrap();
        let _server = tb.add_host(Asn(2), server_addr).unwrap();
        let origin = tb.add_host(Asn(2), Ipv4Addr::new(2, 1, 0, 99)).unwrap();
        let topo = tb.build().unwrap();
        let route = topo.route(client, _server).unwrap();
        let tap_node = route[1];
        let mut engine = Engine::new(topo);
        engine.add_tap(tap_node, Box::new(DpiTap::new(config_for(origin))));
        engine.add_host(origin, Box::new(Recorder { orders: Vec::new() }));
        World {
            engine,
            client,
            origin,
            tap_node,
            client_addr,
            server_addr,
        }
    }

    fn prompt_policy() -> ReplayPolicy {
        ReplayPolicy {
            trigger_percent: 100,
            delays: vec![WeightedChoice::new(DelayBucket::Seconds(1, 5), 1)],
            protocols: vec![WeightedChoice::new(ProbeKind::Dns, 1)],
            reuse: vec![WeightedChoice::new(2, 1)],
        }
    }

    fn base_config(origin: NodeId) -> DpiConfig {
        DpiConfig {
            label: "test-observer".into(),
            watch_dns: true,
            watch_http: true,
            watch_tls: true,
            zone_filter: Some(DnsName::parse("www.experiment.example").unwrap()),
            policy: prompt_policy(),
            retention_capacity: 100,
            retention_ttl: SimDuration::from_days(2),
            dst_filter: None,
            origins: vec![WeightedChoice::new(origin, 1)],
            seed: 77,
        }
    }

    fn dns_decoy(w: &World, label: &str) -> Ipv4Packet {
        let name = DnsName::parse(&format!("{label}.www.experiment.example")).unwrap();
        let query = DnsMessage::query(9, name);
        Ipv4Packet::new(
            w.client_addr,
            w.server_addr,
            IpProtocol::Udp,
            DEFAULT_TTL,
            1,
            UdpDatagram::new(5000, 53, query.encode()).encode(),
        )
    }

    fn http_decoy(w: &World, label: &str) -> Ipv4Packet {
        let req = HttpRequest::get(&format!("{label}.www.experiment.example"), "/");
        let seg = TcpSegment::new(40000, 80, 1, 1, TcpFlags::PSH_ACK, req.encode());
        Ipv4Packet::new(
            w.client_addr,
            w.server_addr,
            IpProtocol::Tcp,
            DEFAULT_TTL,
            2,
            seg.encode(),
        )
    }

    fn tls_decoy(w: &World, label: &str) -> Ipv4Packet {
        let ch = tls::ClientHello::with_sni(&format!("{label}.www.experiment.example"), [3u8; 32]);
        let seg = TcpSegment::new(40001, 443, 1, 1, TcpFlags::PSH_ACK, ch.encode_record());
        Ipv4Packet::new(
            w.client_addr,
            w.server_addr,
            IpProtocol::Tcp,
            DEFAULT_TTL,
            3,
            seg.encode(),
        )
    }

    #[test]
    fn observes_all_three_protocols_and_schedules_probes() {
        let mut w = world(base_config);
        w.engine
            .inject(SimTime::ZERO, w.client, dns_decoy(&w, "d1"));
        w.engine
            .inject(SimTime(1_000), w.client, http_decoy(&w, "h1"));
        w.engine
            .inject(SimTime(2_000), w.client, tls_decoy(&w, "t1"));
        w.engine.run_to_completion();
        let tap = w.engine.tap_as::<DpiTap>(w.tap_node, 0).unwrap();
        assert_eq!(tap.stats().domains_observed, 3);
        assert_eq!(tap.stats().probes_scheduled, 6, "2 probes per domain");
        let recorder = w.engine.host_as::<Recorder>(w.origin).unwrap();
        assert_eq!(recorder.orders.len(), 6);
        let domains: std::collections::HashSet<_> = recorder
            .orders
            .iter()
            .map(|(_, o)| o.domain.first_label().unwrap().to_string())
            .collect();
        assert_eq!(domains.len(), 3);
        // Probe delays respect the policy (1..=5 s after observation).
        for (at, order) in &recorder.orders {
            assert!(
                at.millis()
                    >= 1_000
                        * if order.domain.as_str().starts_with("d1") {
                            0
                        } else {
                            1
                        }
            );
        }
    }

    #[test]
    fn zone_filter_excludes_foreign_domains() {
        let mut w = world(base_config);
        let query = DnsMessage::query(1, DnsName::parse("www.unrelated.org").unwrap());
        let pkt = Ipv4Packet::new(
            w.client_addr,
            w.server_addr,
            IpProtocol::Udp,
            DEFAULT_TTL,
            1,
            UdpDatagram::new(5000, 53, query.encode()).encode(),
        );
        w.engine.inject(SimTime::ZERO, w.client, pkt);
        w.engine.run_to_completion();
        let tap = w.engine.tap_as::<DpiTap>(w.tap_node, 0).unwrap();
        assert_eq!(tap.stats().packets_seen, 1);
        assert_eq!(tap.stats().domains_observed, 0);
    }

    #[test]
    fn duplicate_domains_observed_once() {
        let mut w = world(base_config);
        w.engine
            .inject(SimTime::ZERO, w.client, dns_decoy(&w, "same"));
        w.engine
            .inject(SimTime(500), w.client, dns_decoy(&w, "same"));
        w.engine.run_to_completion();
        let tap = w.engine.tap_as::<DpiTap>(w.tap_node, 0).unwrap();
        assert_eq!(tap.stats().domains_observed, 1);
        assert_eq!(tap.stats().probes_scheduled, 2);
    }

    #[test]
    fn probes_beyond_retention_are_dropped() {
        let mut w = world(|origin| {
            let mut config = base_config(origin);
            // Policy wants probes after days, but the device only retains
            // data for one hour.
            config.policy.delays = vec![WeightedChoice::new(DelayBucket::Days(3, 5), 1)];
            config.retention_ttl = SimDuration::from_hours(1);
            config
        });
        w.engine
            .inject(SimTime::ZERO, w.client, dns_decoy(&w, "late"));
        w.engine.run_to_completion();
        let tap = w.engine.tap_as::<DpiTap>(w.tap_node, 0).unwrap();
        assert_eq!(tap.stats().probes_scheduled, 0);
        assert_eq!(tap.stats().probes_beyond_retention, 2);
        let recorder = w.engine.host_as::<Recorder>(w.origin).unwrap();
        assert!(recorder.orders.is_empty());
    }

    #[test]
    fn protocol_switches_disable_observation() {
        let mut w = world(|origin| {
            let mut config = base_config(origin);
            config.watch_dns = false;
            config.watch_tls = false;
            config
        });
        w.engine
            .inject(SimTime::ZERO, w.client, dns_decoy(&w, "d2"));
        w.engine.inject(SimTime(100), w.client, tls_decoy(&w, "t2"));
        w.engine
            .inject(SimTime(200), w.client, http_decoy(&w, "h2"));
        w.engine.run_to_completion();
        let tap = w.engine.tap_as::<DpiTap>(w.tap_node, 0).unwrap();
        assert_eq!(tap.stats().domains_observed, 1, "only HTTP watched");
    }

    #[test]
    fn forwarding_is_untouched() {
        // The defining property of traffic shadowing: the packet still
        // reaches its destination.
        let mut w = world(base_config);
        w.engine
            .inject(SimTime::ZERO, w.client, dns_decoy(&w, "fwd"));
        w.engine.run_to_completion();
        assert_eq!(w.engine.stats().packets_dropped_by_tap, 0);
        assert_eq!(w.engine.stats().packets_delivered, 1);
    }
}
