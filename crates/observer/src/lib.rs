//! # shadow-observer
//!
//! Behaviour models for the parties the paper measures: on-path traffic
//! observers and the shadowing exhibitors behind them.
//!
//! * [`retention`] — the bounded store where observed data lives
//!   ("user data can be retained for long, e.g. over 10 days");
//! * [`policy`] — replay policies: when observed data re-appears (delay
//!   distributions), over which protocols, how many times (reuse), and from
//!   which origins;
//! * [`dpi`] — the on-wire observer: a [`shadow_netsim::WireTap`] that
//!   extracts DNS QNAMEs, HTTP `Host` headers and TLS SNI from forwarded
//!   packets and schedules unsolicited probes;
//! * [`probe`] — probe-origin hosts: the machines that actually emit
//!   unsolicited requests (DNS re-queries via public resolvers, HTTP
//!   path-enumeration scans, TLS probes);
//! * [`intercept`] — DNS interception devices (Appendix E), the noise
//!   source the pair-resolver heuristic must filter out.
//!
//! Everything here is *ground truth* the measurement pipeline in
//! `shadow-core` must rediscover from packets alone.

pub mod dpi;
pub mod intercept;
pub mod policy;
pub mod probe;
pub mod retention;
pub mod scheduler;

pub use dpi::{DpiConfig, DpiTap, ObservedProtocol};
pub use intercept::{InterceptMode, InterceptorTap};
pub use policy::{DelayBucket, ProbeKind, ReplayPolicy, WeightedChoice};
pub use probe::{DnsVia, ProbeOrder, ProbeOriginHost, ProbeRecord};
pub use retention::{ObservedItem, RetentionStore};
pub use scheduler::{plan_probes, PlanStats};
