//! Shared probe-scheduling logic used by every exhibitor embodiment —
//! on-wire DPI taps, shadowing resolvers, and shadowing destination
//! servers all run the same pipeline: dedup against retention, roll the
//! trigger dice, sample a schedule, drop probes past the retention TTL,
//! and pick an origin per probe.

use crate::policy::{sample_weighted, ReplayPolicy, WeightedChoice};
use crate::probe::ProbeOrder;
use crate::retention::{ObservedProtocol, RetentionStore};
use rand_chacha::rand_core::{RngCore, SeedableRng};
use rand_chacha::ChaCha20Rng;
use shadow_netsim::time::{SimDuration, SimTime};
use shadow_netsim::topology::NodeId;
use shadow_packet::dns::DnsName;

/// Derive the RNG for one observation from the exhibitor seed, the observed
/// domain, and the observation time. Keyed per *value* rather than drawn
/// from a stateful stream so an exhibitor's decisions for one domain do not
/// depend on which other domains it happened to see first — the property
/// that lets sharded campaigns reproduce the sequential run exactly.
/// `now` is part of the key so a domain re-observed after retention expiry
/// gets a fresh stream.
pub fn observation_rng(seed: u64, domain: &DnsName, now: SimTime) -> ChaCha20Rng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in domain.as_str().bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h ^= seed;
    h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    h ^= now.millis();
    h ^= h >> 31;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 29;
    ChaCha20Rng::seed_from_u64(h)
}

/// Outcome counters for one observation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    pub was_new: bool,
    pub triggered: bool,
    pub probes: u32,
    pub beyond_retention: u32,
    /// Items FIFO-evicted from the store to make room for this one. In a
    /// sharded run per-shard stores see traffic subsets, so callers report
    /// this to the *run* telemetry section — nonzero means the DESIGN.md §5
    /// sharded-equivalence caveat is live for this campaign.
    pub capacity_evictions: u64,
}

/// Plan the unsolicited probes for one observed `domain`. Returns the
/// (origin node, delay, order) triples the caller must post, plus counters.
/// All randomness is derived from `(seed, domain, now)` via
/// [`observation_rng`]; the RNG is only consulted for *new* observations
/// (duplicates are inert), so planning for one domain is independent of
/// every other domain the exhibitor retains.
#[allow(clippy::too_many_arguments)]
pub fn plan_probes(
    policy: &ReplayPolicy,
    store: &mut RetentionStore,
    origins: &[WeightedChoice<NodeId>],
    seed: u64,
    domain: &DnsName,
    via: ObservedProtocol,
    now: SimTime,
    exhibitor: &str,
) -> (Vec<(NodeId, SimDuration, ProbeOrder)>, PlanStats) {
    let mut stats = PlanStats::default();
    let evictions_before = store.evictions();
    let was_new = store.observe(domain.clone(), via, now);
    stats.capacity_evictions = store.evictions() - evictions_before;
    if !was_new {
        return (Vec::new(), stats);
    }
    stats.was_new = true;
    let mut rng = observation_rng(seed, domain, now);
    if !policy.triggers(&mut rng) {
        return (Vec::new(), stats);
    }
    stats.triggered = true;
    let mut out = Vec::new();
    for (delay, kind) in policy.sample_schedule(&mut rng) {
        if delay > store.ttl() {
            stats.beyond_retention += 1;
            continue;
        }
        let origin = *sample_weighted(origins, &mut rng);
        store.mark_used(domain);
        stats.probes += 1;
        out.push((
            origin,
            delay,
            ProbeOrder {
                domain: domain.clone(),
                kind,
                exhibitor: exhibitor.to_string(),
                seed: rng.next_u64(),
            },
        ));
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{DelayBucket, ProbeKind};

    fn setup() -> (
        ReplayPolicy,
        RetentionStore,
        Vec<WeightedChoice<NodeId>>,
        u64,
    ) {
        let policy = ReplayPolicy {
            trigger_percent: 100,
            delays: vec![WeightedChoice::new(DelayBucket::Seconds(1, 10), 1)],
            protocols: vec![WeightedChoice::new(ProbeKind::Dns, 1)],
            reuse: vec![WeightedChoice::new(3, 1)],
        };
        let store = RetentionStore::new(100, SimDuration::from_days(1));
        let origins = vec![WeightedChoice::new(NodeId(7), 1)];
        (policy, store, origins, 5)
    }

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    #[test]
    fn plans_reuse_many_probes() {
        let (policy, mut store, origins, seed) = setup();
        let (orders, stats) = plan_probes(
            &policy,
            &mut store,
            &origins,
            seed,
            &name("a.example"),
            ObservedProtocol::Dns,
            SimTime(0),
            "x",
        );
        assert_eq!(orders.len(), 3);
        assert!(stats.was_new && stats.triggered);
        assert_eq!(stats.probes, 3);
        for (node, delay, order) in &orders {
            assert_eq!(*node, NodeId(7));
            assert!(*delay <= SimDuration::from_secs(10));
            assert_eq!(order.exhibitor, "x");
        }
    }

    #[test]
    fn duplicate_observation_is_inert() {
        let (policy, mut store, origins, seed) = setup();
        let d = name("a.example");
        let _ = plan_probes(
            &policy,
            &mut store,
            &origins,
            seed,
            &d,
            ObservedProtocol::Dns,
            SimTime(0),
            "x",
        );
        let (orders, stats) = plan_probes(
            &policy,
            &mut store,
            &origins,
            seed,
            &d,
            ObservedProtocol::Dns,
            SimTime(5),
            "x",
        );
        assert!(orders.is_empty());
        assert!(!stats.was_new);
    }

    #[test]
    fn retention_bound_drops_late_probes() {
        let (mut policy, _, origins, seed) = setup();
        policy.delays = vec![WeightedChoice::new(DelayBucket::Days(3, 4), 1)];
        let mut store = RetentionStore::new(100, SimDuration::from_hours(1));
        let (orders, stats) = plan_probes(
            &policy,
            &mut store,
            &origins,
            seed,
            &name("b.example"),
            ObservedProtocol::Tls,
            SimTime(0),
            "x",
        );
        assert!(orders.is_empty());
        assert_eq!(stats.beyond_retention, 3);
    }

    #[test]
    fn planning_is_value_derived_not_stream_dependent() {
        // Two exhibitor instances that saw *different* other domains first
        // must still plan identical probes for the same (domain, time).
        let (policy, mut store_a, origins, seed) = setup();
        let mut store_b = RetentionStore::new(100, SimDuration::from_days(1));
        let _ = plan_probes(
            &policy,
            &mut store_a,
            &origins,
            seed,
            &name("noise-1.example"),
            ObservedProtocol::Dns,
            SimTime(0),
            "x",
        );
        let _ = plan_probes(
            &policy,
            &mut store_a,
            &origins,
            seed,
            &name("noise-2.example"),
            ObservedProtocol::Dns,
            SimTime(1),
            "x",
        );
        let (a, _) = plan_probes(
            &policy,
            &mut store_a,
            &origins,
            seed,
            &name("same.example"),
            ObservedProtocol::Dns,
            SimTime(9),
            "x",
        );
        let (b, _) = plan_probes(
            &policy,
            &mut store_b,
            &origins,
            seed,
            &name("same.example"),
            ObservedProtocol::Dns,
            SimTime(9),
            "x",
        );
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
