//! Shared probe-scheduling logic used by every exhibitor embodiment —
//! on-wire DPI taps, shadowing resolvers, and shadowing destination
//! servers all run the same pipeline: dedup against retention, roll the
//! trigger dice, sample a schedule, drop probes past the retention TTL,
//! and pick an origin per probe.

use crate::policy::{sample_weighted, ReplayPolicy, WeightedChoice};
use crate::probe::ProbeOrder;
use crate::retention::RetentionStore;
use rand_chacha::ChaCha20Rng;
use shadow_netsim::time::{SimDuration, SimTime};
use shadow_netsim::topology::NodeId;
use shadow_packet::dns::DnsName;

/// Outcome counters for one observation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    pub was_new: bool,
    pub triggered: bool,
    pub probes: u32,
    pub beyond_retention: u32,
}

/// Plan the unsolicited probes for one observed `domain`. Returns the
/// (origin node, delay, order) triples the caller must post, plus counters.
#[allow(clippy::too_many_arguments)]
pub fn plan_probes(
    policy: &ReplayPolicy,
    store: &mut RetentionStore,
    origins: &[WeightedChoice<NodeId>],
    rng: &mut ChaCha20Rng,
    domain: &DnsName,
    via: &'static str,
    now: SimTime,
    exhibitor: &str,
) -> (Vec<(NodeId, SimDuration, ProbeOrder)>, PlanStats) {
    let mut stats = PlanStats::default();
    if !store.observe(domain.clone(), via, now) {
        return (Vec::new(), stats);
    }
    stats.was_new = true;
    if !policy.triggers(rng) {
        return (Vec::new(), stats);
    }
    stats.triggered = true;
    let mut out = Vec::new();
    for (delay, kind) in policy.sample_schedule(rng) {
        if delay > store.ttl() {
            stats.beyond_retention += 1;
            continue;
        }
        let origin = *sample_weighted(origins, rng);
        store.mark_used(domain);
        stats.probes += 1;
        out.push((
            origin,
            delay,
            ProbeOrder {
                domain: domain.clone(),
                kind,
                exhibitor: exhibitor.to_string(),
            },
        ));
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{DelayBucket, ProbeKind};
    use rand_chacha::rand_core::SeedableRng;

    fn setup() -> (ReplayPolicy, RetentionStore, Vec<WeightedChoice<NodeId>>, ChaCha20Rng) {
        let policy = ReplayPolicy {
            trigger_percent: 100,
            delays: vec![WeightedChoice::new(DelayBucket::Seconds(1, 10), 1)],
            protocols: vec![WeightedChoice::new(ProbeKind::Dns, 1)],
            reuse: vec![WeightedChoice::new(3, 1)],
        };
        let store = RetentionStore::new(100, SimDuration::from_days(1));
        let origins = vec![WeightedChoice::new(NodeId(7), 1)];
        let rng = ChaCha20Rng::seed_from_u64(5);
        (policy, store, origins, rng)
    }

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    #[test]
    fn plans_reuse_many_probes() {
        let (policy, mut store, origins, mut rng) = setup();
        let (orders, stats) = plan_probes(
            &policy,
            &mut store,
            &origins,
            &mut rng,
            &name("a.example"),
            "dns",
            SimTime(0),
            "x",
        );
        assert_eq!(orders.len(), 3);
        assert!(stats.was_new && stats.triggered);
        assert_eq!(stats.probes, 3);
        for (node, delay, order) in &orders {
            assert_eq!(*node, NodeId(7));
            assert!(*delay <= SimDuration::from_secs(10));
            assert_eq!(order.exhibitor, "x");
        }
    }

    #[test]
    fn duplicate_observation_is_inert() {
        let (policy, mut store, origins, mut rng) = setup();
        let d = name("a.example");
        let _ = plan_probes(&policy, &mut store, &origins, &mut rng, &d, "dns", SimTime(0), "x");
        let (orders, stats) =
            plan_probes(&policy, &mut store, &origins, &mut rng, &d, "dns", SimTime(5), "x");
        assert!(orders.is_empty());
        assert!(!stats.was_new);
    }

    #[test]
    fn retention_bound_drops_late_probes() {
        let (mut policy, _, origins, mut rng) = setup();
        policy.delays = vec![WeightedChoice::new(DelayBucket::Days(3, 4), 1)];
        let mut store = RetentionStore::new(100, SimDuration::from_hours(1));
        let (orders, stats) = plan_probes(
            &policy,
            &mut store,
            &origins,
            &mut rng,
            &name("b.example"),
            "tls",
            SimTime(0),
            "x",
        );
        assert!(orders.is_empty());
        assert_eq!(stats.beyond_retention, 3);
    }
}
