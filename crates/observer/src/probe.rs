//! Probe origins: the hosts that emit unsolicited requests.
//!
//! The paper stresses that "observers may not initiate unsolicited requests
//! by themselves" — the data flows from the on-path observer to some other
//! machine which performs the probing (security-company proxies, analysis
//! farms, resolver partners). A [`ProbeOriginHost`] is that machine: it
//! receives [`ProbeOrder`] messages (posted by DPI taps or shadowing
//! resolvers), resolves the observed domain, and issues DNS re-queries,
//! HTTP path-enumeration scans, or TLS probes.

use crate::policy::ProbeKind;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha20Rng;
use shadow_netsim::engine::{Ctx, Host};
use shadow_netsim::tcp::{ConnKey, TcpEvent, TcpStack};
use shadow_netsim::time::{SimDuration, SimTime};
use shadow_netsim::transport::Transport;
use shadow_packet::dns::{DnsMessage, DnsName, RecordData};
use shadow_packet::http::HttpRequest;
use shadow_packet::ipv4::{IpProtocol, Ipv4Packet, DEFAULT_TTL};
use shadow_packet::tls::ClientHello;
use shadow_packet::udp::UdpDatagram;
use std::any::Any;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// How this origin turns a domain into an address for HTTP/TLS probes, and
/// where its unsolicited DNS re-queries go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DnsVia {
    /// Through a recursive resolver (the common case — hence Google's AS
    /// dominating Figure 6's origins of unsolicited DNS queries).
    Resolver(Ipv4Addr),
    /// Straight at the zone's authoritative server (FireEye-style systems
    /// that extracted the NS themselves).
    Authoritative(Ipv4Addr),
}

impl DnsVia {
    fn target(self) -> Ipv4Addr {
        match self {
            DnsVia::Resolver(a) | DnsVia::Authoritative(a) => a,
        }
    }
}

/// An instruction to probe one observed domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeOrder {
    pub domain: DnsName,
    pub kind: ProbeKind,
    /// Ground-truth provenance label (which exhibitor sent this), carried
    /// for tests; the measurement pipeline never reads it.
    pub exhibitor: String,
    /// Per-order randomness (path choice, ClientHello random), drawn by the
    /// exhibitor from its observation-derived stream. Keeping it on the
    /// order makes the origin host's behaviour a pure function of the
    /// orders it receives, independent of their interleaving.
    pub seed: u64,
}

/// One emitted probe, logged for tests and debugging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeRecord {
    pub at: SimTime,
    pub domain: DnsName,
    pub kind: ProbeKind,
    pub detail: String,
}

/// The paths an HTTP prober enumerates — the shape Section 5 reports ("95%
/// of requests are performing path enumeration ... no malicious payloads or
/// vulnerability exploit codes").
pub const ENUMERATION_PATHS: &[&str] = &[
    "/",
    "/robots.txt",
    "/admin/",
    "/login",
    "/wp-login.php",
    "/backup/",
    "/.git/config",
    "/config.php",
    "/phpinfo.php",
    "/api/",
    "/static/",
    "/images/",
    "/uploads/",
    "/test/",
    "/old/",
];

#[derive(Debug)]
enum ConnPurpose {
    Http { domain: DnsName, path: String },
    Https { domain: DnsName, seed: u64 },
}

/// Internal self-posted message driving one extra enumeration request; kept
/// separate from [`ProbeOrder`] so follow-ups don't fan out recursively.
struct FollowUpHttp {
    domain: DnsName,
    seed: u64,
}

/// A host that executes probe orders.
pub struct ProbeOriginHost {
    addr: Ipv4Addr,
    dns_via: DnsVia,
    /// Number of HTTP requests one Http order fans into (path enumeration).
    http_paths_per_order: usize,
    tcp: TcpStack,
    next_dns_id: u16,
    /// DNS lookups in flight: query id → (domain, what to do once
    /// resolved, the order's seed).
    pending_dns: HashMap<u16, (DnsName, ProbeKind, u64)>,
    /// TCP connections in flight.
    pending_conns: HashMap<ConnKey, ConnPurpose>,
    /// Everything this origin emitted.
    pub log: Vec<ProbeRecord>,
}

impl ProbeOriginHost {
    pub fn new(addr: Ipv4Addr, dns_via: DnsVia, seed: u64) -> Self {
        Self {
            addr,
            dns_via,
            http_paths_per_order: 2,
            tcp: TcpStack::new(seed as u32 | 1),
            next_dns_id: 1,
            pending_dns: HashMap::new(),
            pending_conns: HashMap::new(),
            log: Vec::new(),
        }
    }

    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    pub fn set_http_paths_per_order(&mut self, n: usize) {
        self.http_paths_per_order = n.max(1);
    }

    fn udp(&self, dst: Ipv4Addr, dst_port: u16, payload: Vec<u8>) -> Ipv4Packet {
        Ipv4Packet::new(
            self.addr,
            dst,
            IpProtocol::Udp,
            DEFAULT_TTL,
            0,
            UdpDatagram::new(30_000 + self.next_dns_id, dst_port, payload).encode(),
        )
    }

    fn tcp_packets(
        &self,
        peer: Ipv4Addr,
        segs: Vec<shadow_packet::tcp::TcpSegment>,
        ctx: &mut Ctx<'_>,
    ) {
        for seg in segs {
            ctx.send(Ipv4Packet::new(
                self.addr,
                peer,
                IpProtocol::Tcp,
                DEFAULT_TTL,
                0,
                seg.encode(),
            ));
        }
    }

    /// Issue the DNS lookup that precedes any probe (or *is* the probe, for
    /// `ProbeKind::Dns`).
    fn start_lookup(&mut self, domain: DnsName, kind: ProbeKind, seed: u64, ctx: &mut Ctx<'_>) {
        let id = self.next_dns_id;
        self.next_dns_id = self.next_dns_id.wrapping_add(1).max(1);
        let query = DnsMessage::query(id, domain.clone());
        let pkt = self.udp(self.dns_via.target(), 53, query.encode());
        self.pending_dns.insert(id, (domain.clone(), kind, seed));
        self.log.push(ProbeRecord {
            at: ctx.now(),
            domain,
            kind: ProbeKind::Dns,
            detail: format!("lookup via {:?}", self.dns_via),
        });
        ctx.send(pkt);
    }

    fn on_dns_response(&mut self, msg: DnsMessage, ctx: &mut Ctx<'_>) {
        let Some((domain, kind, seed)) = self.pending_dns.remove(&msg.id) else {
            return;
        };
        let addr = msg.answers.iter().find_map(|rr| match rr.data {
            RecordData::A(a) => Some(a),
            _ => None,
        });
        let Some(addr) = addr else {
            return; // NXDOMAIN or empty answer: probe dies here.
        };
        match kind {
            ProbeKind::Dns => {
                // The lookup itself was the probe; nothing more to do.
            }
            ProbeKind::Http => {
                let mut rng = ChaCha20Rng::seed_from_u64(seed);
                let path = if self
                    .pending_conns
                    .values()
                    .any(|p| matches!(p, ConnPurpose::Http { domain: d, .. } if *d == domain))
                {
                    // Follow-up orders enumerate deeper paths.
                    ENUMERATION_PATHS[rng.gen_range(1..ENUMERATION_PATHS.len())].to_string()
                } else {
                    ENUMERATION_PATHS[rng.gen_range(0..ENUMERATION_PATHS.len())].to_string()
                };
                let mut segs = Vec::new();
                let key = self.tcp.connect(addr, 80, &mut segs);
                self.pending_conns
                    .insert(key, ConnPurpose::Http { domain, path });
                self.tcp_packets(addr, segs, ctx);
            }
            ProbeKind::Https => {
                let mut segs = Vec::new();
                let key = self.tcp.connect(addr, 443, &mut segs);
                self.pending_conns
                    .insert(key, ConnPurpose::Https { domain, seed });
                self.tcp_packets(addr, segs, ctx);
            }
        }
    }

    fn on_tcp(&mut self, src: Ipv4Addr, seg: shadow_packet::tcp::TcpSegment, ctx: &mut Ctx<'_>) {
        let mut out = Vec::new();
        let events = self.tcp.on_segment(src, seg, &mut out);
        self.tcp_packets(src, out, ctx);
        for event in events {
            match event {
                TcpEvent::Established(key) => {
                    let Some(purpose) = self.pending_conns.get(&key) else {
                        continue;
                    };
                    let (payload, record) = match purpose {
                        ConnPurpose::Http { domain, path } => (
                            HttpRequest::get(domain.as_str(), path).encode(),
                            ProbeRecord {
                                at: ctx.now(),
                                domain: domain.clone(),
                                kind: ProbeKind::Http,
                                detail: format!("GET {path}"),
                            },
                        ),
                        ConnPurpose::Https { domain, seed } => {
                            let mut random = [0u8; 32];
                            ChaCha20Rng::seed_from_u64(*seed).fill(&mut random);
                            (
                                ClientHello::with_sni(domain.as_str(), random).encode_record(),
                                ProbeRecord {
                                    at: ctx.now(),
                                    domain: domain.clone(),
                                    kind: ProbeKind::Https,
                                    detail: "ClientHello".to_string(),
                                },
                            )
                        }
                    };
                    self.log.push(record);
                    let mut out = Vec::new();
                    self.tcp.send(key, payload, &mut out);
                    self.tcp_packets(key.peer, out, ctx);
                }
                TcpEvent::Data(key, _bytes) => {
                    // Response received; the prober closes after one round.
                    let mut out = Vec::new();
                    self.tcp.close(key, &mut out);
                    self.tcp_packets(key.peer, out, ctx);
                    self.pending_conns.remove(&key);
                }
                TcpEvent::Closed(key) | TcpEvent::Reset(key) => {
                    self.pending_conns.remove(&key);
                }
            }
        }
    }
}

impl Host for ProbeOriginHost {
    fn on_packet(&mut self, pkt: Ipv4Packet, ctx: &mut Ctx<'_>) {
        match Transport::parse(&pkt) {
            Ok(Transport::Udp(dg)) if dg.src_port == 53 => {
                if let Ok(msg) = DnsMessage::decode(&dg.payload) {
                    if msg.flags.response {
                        self.on_dns_response(msg, ctx);
                    }
                }
            }
            Ok(Transport::Tcp(seg)) => self.on_tcp(pkt.header.src, seg, ctx),
            _ => {}
        }
    }

    fn on_message(&mut self, msg: Box<dyn Any + Send + Sync>, ctx: &mut Ctx<'_>) {
        let msg = match msg.downcast::<ProbeOrder>() {
            Ok(order) => {
                let order = *order;
                match order.kind {
                    ProbeKind::Dns => {
                        self.start_lookup(order.domain, ProbeKind::Dns, order.seed, ctx)
                    }
                    ProbeKind::Https => {
                        self.start_lookup(order.domain, ProbeKind::Https, order.seed, ctx)
                    }
                    ProbeKind::Http => {
                        // Path enumeration: fan one order into several
                        // staggered single-request connections, each with a
                        // sub-seed split from the order's.
                        self.start_lookup(order.domain.clone(), ProbeKind::Http, order.seed, ctx);
                        for i in 1..self.http_paths_per_order {
                            ctx.post(
                                ctx.node(),
                                SimDuration::from_millis(200 * i as u64),
                                Box::new(FollowUpHttp {
                                    domain: order.domain.clone(),
                                    seed: order.seed.wrapping_add(
                                        (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                                    ),
                                }),
                            );
                        }
                    }
                }
                return;
            }
            Err(other) => other,
        };
        if let Ok(follow_up) = msg.downcast::<FollowUpHttp>() {
            self.start_lookup(follow_up.domain, ProbeKind::Http, follow_up.seed, ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
