//! Property tests over exhibitor behaviour models: replay schedules stay
//! inside their declared mixtures; retention stores respect their bounds.

use proptest::prelude::*;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha20Rng;
use shadow_netsim::time::{SimDuration, SimTime};
use shadow_observer::policy::{DelayBucket, ProbeKind, ReplayPolicy, WeightedChoice};
use shadow_observer::retention::{ObservedProtocol, RetentionStore};
use shadow_packet::dns::DnsName;

fn arb_bucket() -> impl Strategy<Value = DelayBucket> {
    prop_oneof![
        (1u64..60, 1u64..60).prop_map(|(a, b)| DelayBucket::Seconds(a.min(b), a.max(b))),
        (1u64..60, 1u64..60).prop_map(|(a, b)| DelayBucket::Minutes(a.min(b), a.max(b))),
        (1u64..24, 1u64..24).prop_map(|(a, b)| DelayBucket::Hours(a.min(b), a.max(b))),
        (1u64..25, 1u64..25).prop_map(|(a, b)| DelayBucket::Days(a.min(b), a.max(b))),
    ]
}

fn bucket_bounds(bucket: DelayBucket) -> (SimDuration, SimDuration) {
    match bucket {
        DelayBucket::Seconds(lo, hi) => (SimDuration::from_secs(lo), SimDuration::from_secs(hi)),
        DelayBucket::Minutes(lo, hi) => (SimDuration::from_mins(lo), SimDuration::from_mins(hi)),
        DelayBucket::Hours(lo, hi) => (SimDuration::from_hours(lo), SimDuration::from_hours(hi)),
        DelayBucket::Days(lo, hi) => (SimDuration::from_days(lo), SimDuration::from_days(hi)),
    }
}

proptest! {
    #[test]
    fn schedules_respect_the_mixture(
        seed in any::<u64>(),
        buckets in proptest::collection::vec((arb_bucket(), 1u32..10), 1..4),
        reuse_counts in proptest::collection::vec((1u32..12, 1u32..10), 1..4),
        trigger in 0u8..=100,
    ) {
        let policy = ReplayPolicy {
            trigger_percent: trigger,
            delays: buckets
                .iter()
                .map(|&(b, w)| WeightedChoice::new(b, w))
                .collect(),
            protocols: vec![
                WeightedChoice::new(ProbeKind::Dns, 2),
                WeightedChoice::new(ProbeKind::Http, 1),
            ],
            reuse: reuse_counts
                .iter()
                .map(|&(n, w)| WeightedChoice::new(n, w))
                .collect(),
        };
        policy.validate().unwrap();
        let mut rng = ChaCha20Rng::seed_from_u64(seed);
        let schedule = policy.sample_schedule(&mut rng);
        // Count within the reuse support.
        let max_reuse = reuse_counts.iter().map(|&(n, _)| n).max().unwrap();
        let min_reuse = reuse_counts.iter().map(|&(n, _)| n).min().unwrap();
        prop_assert!((schedule.len() as u32) >= min_reuse);
        prop_assert!((schedule.len() as u32) <= max_reuse);
        // Sorted, and every delay within some bucket's bounds.
        prop_assert!(schedule.windows(2).all(|w| w[0].0 <= w[1].0));
        for (delay, _) in &schedule {
            let inside = buckets.iter().any(|&(b, _)| {
                let (lo, hi) = bucket_bounds(b);
                *delay >= lo && *delay <= hi
            });
            prop_assert!(inside, "delay {delay} escapes every bucket");
        }
    }

    #[test]
    fn retention_store_never_exceeds_capacity(
        capacity in 1usize..20,
        ttl_secs in 1u64..1_000,
        inserts in proptest::collection::vec(("[a-z]{1,8}", 0u64..2_000_000), 1..64),
    ) {
        let mut store = RetentionStore::new(capacity, SimDuration::from_secs(ttl_secs));
        let mut last_t = 0;
        for (label, t) in inserts {
            let t = last_t + t % 10_000;
            last_t = t;
            let name = DnsName::parse(&format!("{label}.example")).unwrap();
            store.observe(name, ObservedProtocol::Dns, SimTime(t));
            prop_assert!(store.len() <= capacity);
        }
    }

    #[test]
    fn retention_expiry_is_exact(
        ttl_secs in 1u64..100,
        gap_ms in 0u64..400_000,
    ) {
        let ttl = SimDuration::from_secs(ttl_secs);
        let mut store = RetentionStore::new(16, ttl);
        let name = DnsName::parse("probe.example").unwrap();
        store.observe(name.clone(), ObservedProtocol::Dns, SimTime(0));
        let still_there = gap_ms <= ttl.millis();
        prop_assert_eq!(store.contains(&name, SimTime(gap_ms)), still_there);
    }

    #[test]
    fn trigger_rate_is_statistically_sane(percent in 0u8..=100) {
        let policy = ReplayPolicy {
            trigger_percent: percent,
            ..ReplayPolicy::benign_retry()
        };
        let mut rng = ChaCha20Rng::seed_from_u64(42);
        let n = 2_000;
        let hits = (0..n).filter(|_| policy.triggers(&mut rng)).count();
        let rate = hits as f64 / n as f64;
        let expected = f64::from(percent) / 100.0;
        prop_assert!((rate - expected).abs() < 0.05, "rate {rate} vs {expected}");
    }
}
