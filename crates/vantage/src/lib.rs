//! # shadow-vantage
//!
//! The measurement platform of Section 3 / Appendix C: commercial-VPN
//! vantage points (VPs) that spread decoys and run hop-by-hop traceroutes.
//!
//! * [`providers`] — the 19 VPN providers of Table 5 (6 global, 13 CN),
//!   each with ground-truth defects the vetting pipeline must catch
//!   (TTL-rewriting egress, covertly residential nodes);
//! * [`vp`] — the vantage-point host: executes decoy-send and traceroute
//!   commands, records DNS answers and ICMP Time Exceeded observations;
//! * [`platform`] — recruitment, vetting, and the Table-1 capability
//!   summary;
//! * [`schedule`] — the round-robin decoy scheduler with the paper's
//!   ≤2 packets/second/target ethical rate limit.

pub mod platform;
pub mod providers;
pub mod schedule;
pub mod vp;

pub use platform::{Platform, PlatformSummary, VantagePoint, VpId};
pub use providers::{Market, VpnProvider, VPN_PROVIDERS};
pub use schedule::{RateLimitedScheduler, ScheduledSend};
pub use vp::{DnsAnswerRecord, IcmpObservation, VantagePointHost, VpCommand, VpReport};
