//! The vantage-point host: a measurement client behind one VPN egress.
//!
//! VPs execute commands posted by the campaign controller: send a DNS,
//! HTTP, or TLS decoy (Phase I — HTTP/TLS after a real TCP handshake), or
//! send raw handshake-less probes with a chosen initial TTL (Phase II
//! tracerouting; the paper skips handshakes there to avoid holding
//! connections open). Everything a VP observes — DNS answers, ICMP Time
//! Exceeded — is recorded for the campaign to harvest.

use serde::{Deserialize, Serialize};
use shadow_netsim::engine::{Ctx, Host};
use shadow_netsim::tcp::{ConnKey, TcpEvent, TcpStack};
use shadow_netsim::time::SimTime;
use shadow_netsim::transport::Transport;
use shadow_packet::dns::{DnsMessage, DnsName, Rcode, RecordData};
use shadow_packet::http::HttpRequest;
use shadow_packet::icmp::IcmpMessage;
use shadow_packet::ipv4::{IpProtocol, Ipv4Packet, DEFAULT_TTL};
use shadow_packet::tcp::{TcpFlags, TcpSegment};
use shadow_packet::tls::ClientHello;
use shadow_packet::udp::UdpDatagram;
use std::any::Any;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Retry policy for a DNS decoy: resend the same query (same transaction
/// id, same ident) up to `attempts` more times, `timeout_ms` apart, until
/// an answer arrives. Stub resolvers retry on the lossy real Internet; the
/// fault-injection sweeps rely on this to show DNS-path detection
/// degrading slower than one-shot HTTP/TLS under loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsRetry {
    /// Extra transmissions after the first (0 = retries disabled).
    pub attempts: u8,
    /// Gap between transmissions in simulated milliseconds. Keep this
    /// above the worst-case answer RTT: fault-free runs must never fire a
    /// spurious retransmission, or they would no longer be byte-identical
    /// to runs planned without retry.
    pub timeout_ms: u64,
}

impl DnsRetry {
    /// Paper-realistic stub-resolver default: two retries, 15 s apart.
    pub const STANDARD: DnsRetry = DnsRetry {
        attempts: 2,
        timeout_ms: 15_000,
    };
}

/// A command posted to a VP by the campaign controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VpCommand {
    /// UDP/53 A query for `domain` to `dst` with initial TTL `ttl`;
    /// optionally retry-protected.
    DnsDecoy {
        domain: DnsName,
        dst: Ipv4Addr,
        ttl: u8,
        retry: Option<DnsRetry>,
    },
    /// TCP handshake to `dst:80`, then `GET / HTTP/1.1` with Host `domain`.
    HttpDecoy {
        domain: DnsName,
        dst: Ipv4Addr,
        ttl: u8,
    },
    /// TCP handshake to `dst:443`, then a ClientHello with SNI `domain`.
    TlsDecoy {
        domain: DnsName,
        dst: Ipv4Addr,
        ttl: u8,
    },
    /// Handshake-less HTTP payload probe (Phase II traceroute).
    RawHttpProbe {
        domain: DnsName,
        dst: Ipv4Addr,
        ttl: u8,
    },
    /// Handshake-less TLS ClientHello probe (Phase II traceroute).
    RawTlsProbe {
        domain: DnsName,
        dst: Ipv4Addr,
        ttl: u8,
    },
    /// Raw UDP datagram (platform pre-flight checks).
    RawUdp {
        dst: Ipv4Addr,
        dst_port: u16,
        ttl: u8,
        payload: Vec<u8>,
    },
    /// Encrypted DNS decoy (§6 ablation): the query is opaque on the wire;
    /// only the terminating resolver sees the name.
    EncryptedDnsDecoy {
        domain: DnsName,
        dst: Ipv4Addr,
        ttl: u8,
    },
    /// TLS decoy with Encrypted Client Hello (§6 ablation): handshake, then
    /// a ClientHello with no clear-text experiment SNI at all.
    EchTlsDecoy {
        domain: DnsName,
        dst: Ipv4Addr,
        ttl: u8,
    },
}

/// A DNS answer the VP received.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsAnswerRecord {
    pub at: SimTime,
    pub domain: DnsName,
    pub rcode: Rcode,
    pub answer: Option<Ipv4Addr>,
    pub from: Ipv4Addr,
}

/// An ICMP Time Exceeded the VP received — the traceroute signal. The
/// original datagram's identification field maps it back to the probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcmpObservation {
    pub at: SimTime,
    /// The router that expired the probe (the candidate observer address).
    pub router: Ipv4Addr,
    pub orig_dst: Ipv4Addr,
    pub orig_ident: u16,
}

/// Everything a VP recorded, harvested post-run.
#[derive(Debug, Clone, Default)]
pub struct VpReport {
    pub dns_answers: Vec<DnsAnswerRecord>,
    pub icmp: Vec<IcmpObservation>,
    /// Completed decoy emissions: (time payload left, domain, ident used).
    pub decoys_sent: Vec<(SimTime, DnsName, u16)>,
    /// Probe ident → (domain, requested initial TTL, destination).
    pub ident_map: HashMap<u16, (DnsName, u8, Ipv4Addr)>,
    pub handshake_failures: u64,
}

#[derive(Debug)]
enum PendingConn {
    Http { domain: DnsName, ident: u16 },
    Tls { domain: DnsName, ident: u16 },
    EchTls { domain: DnsName, ident: u16 },
}

/// An unanswered retry-protected DNS decoy awaiting its timeout.
#[derive(Debug)]
struct PendingDns {
    dst: Ipv4Addr,
    ttl: u8,
    /// Encoded UDP datagram of the original query — retransmissions are
    /// byte-identical (same transaction id, same ident).
    payload: Vec<u8>,
    remaining: u8,
    timeout_ms: u64,
}

/// Timer-token namespace for DNS retry timers; low 16 bits carry the ident.
const DNS_RETRY_TOKEN: u64 = 0x5245_5452_0000_0000;

/// The VP host.
pub struct VantagePointHost {
    addr: Ipv4Addr,
    /// Ground-truth provider defect: force every outgoing TTL to this
    /// value (the paper excludes such VPNs after pre-flight checks).
    ttl_rewrite: Option<u8>,
    tcp: TcpStack,
    next_ident: u16,
    pending_conns: HashMap<ConnKey, PendingConn>,
    /// TTL to use for packets of each pending connection.
    conn_ttl: HashMap<ConnKey, u8>,
    /// Unanswered retry-protected DNS decoys, by ident.
    pending_dns: HashMap<u16, PendingDns>,
    pub report: VpReport,
}

impl VantagePointHost {
    pub fn new(addr: Ipv4Addr, seed: u32, ttl_rewrite: Option<u8>) -> Self {
        Self {
            addr,
            ttl_rewrite,
            tcp: TcpStack::new(seed),
            next_ident: 1,
            pending_conns: HashMap::new(),
            conn_ttl: HashMap::new(),
            pending_dns: HashMap::new(),
            report: VpReport::default(),
        }
    }

    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    fn effective_ttl(&self, requested: u8) -> u8 {
        self.ttl_rewrite.unwrap_or(requested)
    }

    fn alloc_ident(&mut self, domain: &DnsName, ttl: u8, dst: Ipv4Addr) -> u16 {
        let ident = self.next_ident;
        self.next_ident = self.next_ident.wrapping_add(1).max(1);
        self.report
            .ident_map
            .insert(ident, (domain.clone(), ttl, dst));
        ident
    }

    fn packet(
        &self,
        dst: Ipv4Addr,
        proto: IpProtocol,
        ttl: u8,
        ident: u16,
        payload: Vec<u8>,
    ) -> Ipv4Packet {
        Ipv4Packet::new(
            self.addr,
            dst,
            proto,
            self.effective_ttl(ttl),
            ident,
            payload,
        )
    }

    fn emit_tcp(&self, key: ConnKey, segs: Vec<TcpSegment>, ident: u16, ctx: &mut Ctx<'_>) {
        let ttl = self.conn_ttl.get(&key).copied().unwrap_or(DEFAULT_TTL);
        for seg in segs {
            ctx.send(self.packet(key.peer, IpProtocol::Tcp, ttl, ident, seg.encode()));
        }
    }

    fn run_command(&mut self, cmd: VpCommand, ctx: &mut Ctx<'_>) {
        match cmd {
            VpCommand::DnsDecoy {
                domain,
                dst,
                ttl,
                retry,
            } => {
                let ident = self.alloc_ident(&domain, ttl, dst);
                let query = DnsMessage::query(ident, domain.clone());
                let datagram = UdpDatagram::new(10_000 + ident, 53, query.encode()).encode();
                let pkt = self.packet(dst, IpProtocol::Udp, ttl, ident, datagram.clone());
                self.report.decoys_sent.push((ctx.now(), domain, ident));
                ctx.send(pkt);
                // Retry-free decoys arm no timer at all, so runs planned
                // without retry stay byte-identical to pre-chaos runs.
                if let Some(retry) = retry.filter(|r| r.attempts > 0) {
                    self.pending_dns.insert(
                        ident,
                        PendingDns {
                            dst,
                            ttl,
                            payload: datagram,
                            remaining: retry.attempts,
                            timeout_ms: retry.timeout_ms,
                        },
                    );
                    ctx.timer(
                        shadow_netsim::time::SimDuration::from_millis(retry.timeout_ms),
                        DNS_RETRY_TOKEN | u64::from(ident),
                    );
                }
            }
            VpCommand::HttpDecoy { domain, dst, ttl } => {
                let ident = self.alloc_ident(&domain, ttl, dst);
                let mut segs = Vec::new();
                let key = self.tcp.connect(dst, 80, &mut segs);
                self.conn_ttl.insert(key, ttl);
                self.pending_conns
                    .insert(key, PendingConn::Http { domain, ident });
                self.emit_tcp(key, segs, ident, ctx);
            }
            VpCommand::TlsDecoy { domain, dst, ttl } => {
                let ident = self.alloc_ident(&domain, ttl, dst);
                let mut segs = Vec::new();
                let key = self.tcp.connect(dst, 443, &mut segs);
                self.conn_ttl.insert(key, ttl);
                self.pending_conns
                    .insert(key, PendingConn::Tls { domain, ident });
                self.emit_tcp(key, segs, ident, ctx);
            }
            VpCommand::RawHttpProbe { domain, dst, ttl } => {
                let ident = self.alloc_ident(&domain, ttl, dst);
                let req = HttpRequest::get(domain.as_str(), "/");
                let seg =
                    TcpSegment::new(20_000 + ident, 80, 1, 1, TcpFlags::PSH_ACK, req.encode());
                self.report.decoys_sent.push((ctx.now(), domain, ident));
                ctx.send(self.packet(dst, IpProtocol::Tcp, ttl, ident, seg.encode()));
            }
            VpCommand::RawTlsProbe { domain, dst, ttl } => {
                let ident = self.alloc_ident(&domain, ttl, dst);
                let hello = ClientHello::with_sni(domain.as_str(), derive_random(ident));
                let seg = TcpSegment::new(
                    21_000 + ident,
                    443,
                    1,
                    1,
                    TcpFlags::PSH_ACK,
                    hello.encode_record(),
                );
                self.report.decoys_sent.push((ctx.now(), domain, ident));
                ctx.send(self.packet(dst, IpProtocol::Tcp, ttl, ident, seg.encode()));
            }
            VpCommand::RawUdp {
                dst,
                dst_port,
                ttl,
                payload,
            } => {
                let ident = self.next_ident;
                self.next_ident = self.next_ident.wrapping_add(1).max(1);
                ctx.send(self.packet(
                    dst,
                    IpProtocol::Udp,
                    ttl,
                    ident,
                    UdpDatagram::new(9_999, dst_port, payload).encode(),
                ));
            }
            VpCommand::EncryptedDnsDecoy { domain, dst, ttl } => {
                let ident = self.alloc_ident(&domain, ttl, dst);
                let query = DnsMessage::query(ident, domain.clone());
                let frame = shadow_packet::doq::seal(&query, u32::from(ident));
                let pkt = self.packet(
                    dst,
                    IpProtocol::Udp,
                    ttl,
                    ident,
                    UdpDatagram::new(10_000 + ident, shadow_packet::doq::DOQ_PORT, frame).encode(),
                );
                self.report.decoys_sent.push((ctx.now(), domain, ident));
                ctx.send(pkt);
            }
            VpCommand::EchTlsDecoy { domain, dst, ttl } => {
                let ident = self.alloc_ident(&domain, ttl, dst);
                let mut segs = Vec::new();
                let key = self.tcp.connect(dst, 443, &mut segs);
                self.conn_ttl.insert(key, ttl);
                self.pending_conns
                    .insert(key, PendingConn::EchTls { domain, ident });
                self.emit_tcp(key, segs, ident, ctx);
            }
        }
    }

    fn on_tcp(&mut self, src: Ipv4Addr, seg: TcpSegment, ctx: &mut Ctx<'_>) {
        let mut out = Vec::new();
        let events = self.tcp.on_segment(src, seg, &mut out);
        // Out-of-band segments (raw probes answered by RSTs) have no conn
        // state; emit with default ident.
        if let Some(key) = out.first().map(|s| ConnKey {
            peer: src,
            peer_port: s.dst_port,
            local_port: s.src_port,
        }) {
            let ident = match self.pending_conns.get(&key) {
                Some(PendingConn::Http { ident, .. })
                | Some(PendingConn::Tls { ident, .. })
                | Some(PendingConn::EchTls { ident, .. }) => *ident,
                None => 0,
            };
            self.emit_tcp(key, out, ident, ctx);
        }
        for event in events {
            match event {
                TcpEvent::Established(key) => {
                    let Some(pending) = self.pending_conns.get(&key) else {
                        continue;
                    };
                    let (payload, ident, domain) = match pending {
                        PendingConn::Http { domain, ident } => (
                            HttpRequest::get(domain.as_str(), "/").encode(),
                            *ident,
                            domain.clone(),
                        ),
                        PendingConn::Tls { domain, ident } => (
                            ClientHello::with_sni(domain.as_str(), derive_random(*ident))
                                .encode_record(),
                            *ident,
                            domain.clone(),
                        ),
                        PendingConn::EchTls { domain, ident } => {
                            // The real name travels only in the encrypted
                            // inner hello (modeled as keyed obfuscation).
                            let inner: Vec<u8> = domain
                                .as_str()
                                .bytes()
                                .enumerate()
                                .map(|(i, b)| b ^ derive_random(*ident)[i % 32])
                                .collect();
                            (
                                ClientHello::with_ech(derive_random(*ident), inner).encode_record(),
                                *ident,
                                domain.clone(),
                            )
                        }
                    };
                    self.report.decoys_sent.push((ctx.now(), domain, ident));
                    let mut out = Vec::new();
                    self.tcp.send(key, payload, &mut out);
                    self.tcp.close(key, &mut out);
                    self.emit_tcp(key, out, ident, ctx);
                }
                TcpEvent::Reset(key) => {
                    if self.pending_conns.remove(&key).is_some() {
                        self.report.handshake_failures += 1;
                    }
                    self.conn_ttl.remove(&key);
                }
                TcpEvent::Closed(key) => {
                    self.pending_conns.remove(&key);
                    self.conn_ttl.remove(&key);
                }
                TcpEvent::Data(..) => {}
            }
        }
    }
}

/// Deterministic ClientHello randomness derived from the probe ident.
fn derive_random(ident: u16) -> [u8; 32] {
    let mut out = [0u8; 32];
    let mut x = u64::from(ident) ^ 0x9e37_79b9_7f4a_7c15;
    for chunk in out.chunks_mut(8) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        chunk.copy_from_slice(&x.to_be_bytes());
    }
    out
}

impl Host for VantagePointHost {
    fn on_packet(&mut self, pkt: Ipv4Packet, ctx: &mut Ctx<'_>) {
        match Transport::parse(&pkt) {
            Ok(Transport::Udp(dg)) if dg.src_port == shadow_packet::doq::DOQ_PORT => {
                if let Ok(msg) = shadow_packet::doq::open(&dg.payload) {
                    if msg.flags.response {
                        if let Some(qname) = msg.qname().cloned() {
                            let answer = msg.answers.iter().find_map(|rr| match rr.data {
                                RecordData::A(a) => Some(a),
                                _ => None,
                            });
                            self.report.dns_answers.push(DnsAnswerRecord {
                                at: ctx.now(),
                                domain: qname,
                                rcode: msg.flags.rcode,
                                answer,
                                from: pkt.header.src,
                            });
                        }
                    }
                }
            }
            Ok(Transport::Udp(dg)) if dg.src_port == 53 => {
                if let Ok(msg) = DnsMessage::decode(&dg.payload) {
                    if msg.flags.response {
                        // An answer (any rcode) settles the decoy: cancel
                        // any outstanding retry.
                        self.pending_dns.remove(&msg.id);
                        if let Some(qname) = msg.qname().cloned() {
                            let answer = msg.answers.iter().find_map(|rr| match rr.data {
                                RecordData::A(a) => Some(a),
                                _ => None,
                            });
                            self.report.dns_answers.push(DnsAnswerRecord {
                                at: ctx.now(),
                                domain: qname,
                                rcode: msg.flags.rcode,
                                answer,
                                from: pkt.header.src,
                            });
                        }
                    }
                }
            }
            Ok(Transport::Tcp(seg)) => self.on_tcp(pkt.header.src, seg, ctx),
            Ok(Transport::Icmp(IcmpMessage::TimeExceeded {
                original_header, ..
            })) => {
                self.report.icmp.push(IcmpObservation {
                    at: ctx.now(),
                    router: pkt.header.src,
                    orig_dst: original_header.dst,
                    orig_ident: original_header.identification,
                });
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        if token & DNS_RETRY_TOKEN != DNS_RETRY_TOKEN {
            return;
        }
        let ident = (token & 0xFFFF) as u16;
        // Already answered ⇒ the timer is a no-op.
        let Some(pending) = self.pending_dns.get_mut(&ident) else {
            return;
        };
        pending.remaining -= 1;
        let (dst, ttl, payload) = (pending.dst, pending.ttl, pending.payload.clone());
        let rearm = pending.remaining > 0;
        if !rearm {
            self.pending_dns.remove(&ident);
        }
        if let Some(m) = ctx.telemetry().metrics() {
            m.dns_retries.inc();
        }
        // Byte-identical retransmission; not re-recorded in decoys_sent —
        // it is the same logical decoy.
        let pkt = self.packet(dst, IpProtocol::Udp, ttl, ident, payload);
        ctx.send(pkt);
        if rearm {
            let timeout = self.pending_dns[&ident].timeout_ms;
            ctx.timer(
                shadow_netsim::time::SimDuration::from_millis(timeout),
                DNS_RETRY_TOKEN | u64::from(ident),
            );
        }
    }

    fn on_message(&mut self, msg: Box<dyn Any + Send + Sync>, ctx: &mut Ctx<'_>) {
        if let Ok(cmd) = msg.downcast::<VpCommand>() {
            self.run_command(*cmd, ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_random_is_deterministic_and_distinct() {
        assert_eq!(derive_random(7), derive_random(7));
        assert_ne!(derive_random(7), derive_random(8));
    }

    #[test]
    fn effective_ttl_applies_rewrite_defect() {
        let clean = VantagePointHost::new(Ipv4Addr::new(1, 1, 1, 1), 1, None);
        assert_eq!(clean.effective_ttl(5), 5);
        let broken = VantagePointHost::new(Ipv4Addr::new(1, 1, 1, 1), 1, Some(64));
        assert_eq!(broken.effective_ttl(5), 64);
        assert_eq!(broken.effective_ttl(1), 64);
    }

    #[test]
    fn ident_allocation_tracks_probes() {
        let mut vp = VantagePointHost::new(Ipv4Addr::new(1, 1, 1, 1), 1, None);
        let d = DnsName::parse("x.www.experiment.example").unwrap();
        let dst = Ipv4Addr::new(8, 8, 8, 8);
        let i1 = vp.alloc_ident(&d, 3, dst);
        let i2 = vp.alloc_ident(&d, 4, dst);
        assert_ne!(i1, i2);
        assert_eq!(vp.report.ident_map[&i1], (d.clone(), 3, dst));
        assert_eq!(vp.report.ident_map[&i2], (d, 4, dst));
    }
}
