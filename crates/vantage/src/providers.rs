//! The VPN providers of Table 5, with ground-truth properties the
//! platform's vetting pipeline (Appendix C / Appendix E) must discover:
//! whether a provider's egress rewrites IP TTLs (breaks Phase II, must be
//! excluded) and whether nodes are covertly residential (ethical exclusion).

use serde::{Deserialize, Serialize};

/// Which market a provider serves (Table 1 splits counts by this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Market {
    Global,
    China,
}

/// One commercial VPN provider.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VpnProvider {
    pub name: &'static str,
    pub market: Market,
    /// Relative share of VPs this provider contributes.
    pub vp_weight: u32,
    /// Ground truth: egress rewrites the TTL of outgoing packets to a fixed
    /// value. The paper tests for this before integration and excludes such
    /// providers (Appendix E, "Bias caused by VPN nodes").
    pub rewrites_ttl: Option<u8>,
    /// Ground truth: despite datacenter claims, some egress nodes are
    /// residential. Appendix C's IPinfo check catches most of these.
    pub covertly_residential: bool,
}

const fn provider(
    name: &'static str,
    market: Market,
    vp_weight: u32,
    rewrites_ttl: Option<u8>,
    covertly_residential: bool,
) -> VpnProvider {
    VpnProvider {
        name,
        market,
        vp_weight,
        rewrites_ttl,
        covertly_residential,
    }
}

/// Table 5: 6 global providers and 13 providers dedicated to the Chinese
/// market. Two extra candidate providers carry ground-truth defects so the
/// vetting pipeline has something to catch; the paper likewise reports
/// testing providers "beforehand" and not integrating TTL-resetting ones.
pub const VPN_PROVIDERS: &[VpnProvider] = &[
    provider("Anonine", Market::Global, 10, None, false),
    provider("AzireVPN", Market::Global, 9, None, false),
    provider("Cryptostorm", Market::Global, 8, None, false),
    provider("HideMe", Market::Global, 11, None, false),
    provider("PrivateInt", Market::Global, 14, None, false),
    provider("PureVPN", Market::Global, 13, None, false),
    provider("QiXun", Market::China, 9, None, false),
    provider("XunYou", Market::China, 8, None, false),
    provider("YOYO", Market::China, 8, None, false),
    provider("BeiKe", Market::China, 7, None, false),
    provider("SunYunD", Market::China, 7, None, false),
    provider("HuoJian", Market::China, 8, None, false),
    provider("DuoDuo", Market::China, 7, None, false),
    provider("MoGu", Market::China, 8, None, false),
    provider("QiangZi", Market::China, 7, None, false),
    provider("XunLian", Market::China, 7, None, false),
    provider("TianTian", Market::China, 8, None, false),
    provider("JiKe", Market::China, 7, None, false),
    provider("XiGua", Market::China, 8, None, false),
];

/// Candidate providers that fail vetting — tested before integration and
/// rejected, so they never appear in Table 1's counts.
pub const REJECTED_CANDIDATES: &[VpnProvider] = &[
    provider("TtlMangler", Market::Global, 6, Some(64), false),
    provider("HomeNodes", Market::China, 5, None, true),
];

/// Providers serving one market.
pub fn providers_in(market: Market) -> impl Iterator<Item = &'static VpnProvider> {
    VPN_PROVIDERS.iter().filter(move |p| p.market == market)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_counts() {
        assert_eq!(VPN_PROVIDERS.len(), 19, "19 providers integrated");
        assert_eq!(providers_in(Market::Global).count(), 6);
        assert_eq!(providers_in(Market::China).count(), 13);
    }

    #[test]
    fn integrated_providers_are_clean() {
        for p in VPN_PROVIDERS {
            assert!(p.rewrites_ttl.is_none(), "{} rewrites TTL", p.name);
            assert!(!p.covertly_residential, "{} residential", p.name);
        }
    }

    #[test]
    fn rejected_candidates_have_defects() {
        assert!(REJECTED_CANDIDATES
            .iter()
            .all(|p| p.rewrites_ttl.is_some() || p.covertly_residential));
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = VPN_PROVIDERS
            .iter()
            .chain(REJECTED_CANDIDATES)
            .map(|p| p.name)
            .collect();
        names.sort();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }
}
