//! The decoy send scheduler.
//!
//! The paper runs "switching between different VPs ... in a round-robin
//! fashion without stop" under an ethical rate limit of "no more than 2
//! decoy packets per second to a given target". The scheduler turns a
//! (VP × destination × protocol) work list into deterministic send times
//! honoring both the per-target cap and a per-VP pacing gap.

use crate::platform::VpId;
use shadow_netsim::time::{SimDuration, SimTime};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// One planned decoy emission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledSend<T> {
    pub at: SimTime,
    pub vp: VpId,
    pub target: Ipv4Addr,
    pub work: T,
}

/// Deterministic rate-limited scheduler.
#[derive(Debug)]
pub struct RateLimitedScheduler {
    /// Minimum spacing between sends to one target (2 pps ⇒ 500 ms).
    target_gap: SimDuration,
    /// Minimum spacing between sends from one VP.
    vp_gap: SimDuration,
    next_target_slot: HashMap<Ipv4Addr, SimTime>,
    next_vp_slot: HashMap<VpId, SimTime>,
}

impl RateLimitedScheduler {
    /// The paper's limit: ≤2 packets per second per target.
    pub fn paper_defaults() -> Self {
        Self::new(SimDuration::from_millis(500), SimDuration::from_millis(100))
    }

    pub fn new(target_gap: SimDuration, vp_gap: SimDuration) -> Self {
        Self {
            target_gap,
            vp_gap,
            next_target_slot: HashMap::new(),
            next_vp_slot: HashMap::new(),
        }
    }

    /// Reserve the earliest slot at or after `not_before` satisfying both
    /// rate constraints.
    pub fn reserve(&mut self, not_before: SimTime, vp: VpId, target: Ipv4Addr) -> SimTime {
        let t_slot = self
            .next_target_slot
            .get(&target)
            .copied()
            .unwrap_or(SimTime::ZERO);
        let v_slot = self.next_vp_slot.get(&vp).copied().unwrap_or(SimTime::ZERO);
        let at = not_before.max(t_slot).max(v_slot);
        self.next_target_slot.insert(target, at + self.target_gap);
        self.next_vp_slot.insert(vp, at + self.vp_gap);
        at
    }

    /// Schedule a whole work list round-robin over VPs: the `i`-th item of
    /// each VP is interleaved before any VP's `i+1`-th item, subject to the
    /// rate constraints.
    pub fn schedule_round_robin<T: Clone>(
        &mut self,
        start: SimTime,
        work: &[(VpId, Ipv4Addr, T)],
    ) -> Vec<ScheduledSend<T>> {
        // Group by VP preserving order, then interleave.
        let mut per_vp: HashMap<VpId, Vec<(Ipv4Addr, T)>> = HashMap::new();
        let mut vp_order: Vec<VpId> = Vec::new();
        for (vp, target, item) in work {
            if !per_vp.contains_key(vp) {
                vp_order.push(*vp);
            }
            per_vp.entry(*vp).or_default().push((*target, item.clone()));
        }
        let mut out = Vec::with_capacity(work.len());
        let max_len = per_vp.values().map(Vec::len).max().unwrap_or(0);
        for round in 0..max_len {
            for &vp in &vp_order {
                if let Some((target, item)) = per_vp.get(&vp).and_then(|v| v.get(round)) {
                    let at = self.reserve(start, vp, *target);
                    out.push(ScheduledSend {
                        at,
                        vp,
                        target: *target,
                        work: item.clone(),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(8, 8, 8, last)
    }

    #[test]
    fn per_target_rate_capped_at_2pps() {
        let mut sched = RateLimitedScheduler::paper_defaults();
        let target = addr(8);
        let times: Vec<SimTime> = (0..10)
            .map(|i| sched.reserve(SimTime::ZERO, VpId(i), target))
            .collect();
        for pair in times.windows(2) {
            assert!(
                pair[1].since(pair[0]) >= SimDuration::from_millis(500),
                "gap {} < 500ms",
                pair[1].since(pair[0])
            );
        }
        // Exactly 2 per second.
        assert_eq!(times[2].since(times[0]), SimDuration::from_secs(1));
    }

    #[test]
    fn per_vp_gap_enforced() {
        let mut sched = RateLimitedScheduler::paper_defaults();
        let t1 = sched.reserve(SimTime::ZERO, VpId(1), addr(1));
        let t2 = sched.reserve(SimTime::ZERO, VpId(1), addr(2));
        assert!(t2.since(t1) >= SimDuration::from_millis(100));
    }

    #[test]
    fn distinct_targets_and_vps_can_share_a_slot() {
        let mut sched = RateLimitedScheduler::paper_defaults();
        let t1 = sched.reserve(SimTime::ZERO, VpId(1), addr(1));
        let t2 = sched.reserve(SimTime::ZERO, VpId(2), addr(2));
        assert_eq!(t1, t2, "no shared constraint, no delay");
    }

    #[test]
    fn round_robin_interleaves_vps() {
        let mut sched =
            RateLimitedScheduler::new(SimDuration::from_millis(0), SimDuration::from_millis(0));
        let work = vec![
            (VpId(1), addr(1), "a1"),
            (VpId(1), addr(2), "a2"),
            (VpId(2), addr(1), "b1"),
            (VpId(2), addr(2), "b2"),
        ];
        let planned = sched.schedule_round_robin(SimTime::ZERO, &work);
        let order: Vec<&str> = planned.iter().map(|s| s.work).collect();
        assert_eq!(order, vec!["a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn schedule_is_deterministic() {
        let build = || {
            let mut sched = RateLimitedScheduler::paper_defaults();
            let work: Vec<_> = (0..20)
                .map(|i| (VpId(i % 4), addr((i % 3) as u8), i))
                .collect();
            sched.schedule_round_robin(SimTime(1_000), &work)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn respects_not_before() {
        let mut sched = RateLimitedScheduler::paper_defaults();
        let at = sched.reserve(SimTime(5_000), VpId(1), addr(1));
        assert!(at >= SimTime(5_000));
    }
}
