//! Recruitment, vetting, and the Table-1 capability summary.
//!
//! The builder recruits VPs from provider catalogs, applies the paper's
//! vetting pipeline — datacenter check against the IP-intel database
//! (Appendix C) and the TTL-rewrite pre-flight (Appendix E) — and produces
//! the platform the campaign drives.

use crate::providers::{Market, VpnProvider};
use serde::{Deserialize, Serialize};
use shadow_geo::{CountryCode, GeoDb, HostingLabel};
use shadow_netsim::topology::NodeId;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Opaque VP identifier (index into the platform's VP list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VpId(pub u32);

/// One recruited vantage point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VantagePoint {
    pub id: VpId,
    pub provider: &'static str,
    pub market: Market,
    pub node: NodeId,
    pub addr: Ipv4Addr,
    /// Country from the provider's marketing material — possibly wrong
    /// ("we do not use VP locations advertised by VPN providers").
    pub advertised_country: CountryCode,
    /// Country from true-address discovery + IP database lookup.
    pub country: CountryCode,
    /// Ground-truth defect flags carried for vetting tests.
    pub ttl_rewrite: Option<u8>,
    pub residential: bool,
}

/// Why a VP (or provider) was excluded during vetting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExclusionReason {
    TtlRewrite,
    Residential,
    DnsInterceptionOnPath,
}

/// The assembled platform.
#[derive(Debug, Clone, Default)]
pub struct Platform {
    pub vps: Vec<VantagePoint>,
    pub excluded: Vec<(VpId, ExclusionReason)>,
}

/// One row of the Table-1 summary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlatformSummary {
    pub market: &'static str,
    pub providers: usize,
    pub vps: usize,
    pub ases: usize,
    pub countries: usize,
}

impl Platform {
    pub fn new(vps: Vec<VantagePoint>) -> Self {
        Self {
            vps,
            excluded: Vec::new(),
        }
    }

    /// Appendix C vetting: drop VPs whose addresses the IP-intel database
    /// labels residential. (The paper: 71/74 global ASes labeled
    /// "hosting"; residential providers are not integrated.)
    pub fn vet_residential(&mut self, geo: &GeoDb) {
        let mut kept = Vec::with_capacity(self.vps.len());
        for vp in self.vps.drain(..) {
            match geo.hosting_of(vp.addr) {
                Some(HostingLabel::Residential) => {
                    self.excluded.push((vp.id, ExclusionReason::Residential));
                }
                _ => kept.push(vp),
            }
        }
        self.vps = kept;
    }

    /// Appendix E pre-flight: given per-VP measured TTL deltas from the
    /// control-server check (`observed_delta` = arrival-TTL difference for
    /// two probes sent with initial TTLs differing by `expected_delta`),
    /// drop VPs whose egress rewrites TTLs.
    pub fn vet_ttl_rewrite(&mut self, measured: &[(VpId, i32)], expected_delta: i32) {
        let mut kept = Vec::with_capacity(self.vps.len());
        for vp in self.vps.drain(..) {
            let delta = measured
                .iter()
                .find(|(id, _)| *id == vp.id)
                .map(|&(_, d)| d);
            match delta {
                Some(d) if d != expected_delta => {
                    self.excluded.push((vp.id, ExclusionReason::TtlRewrite));
                }
                _ => kept.push(vp),
            }
        }
        self.vps = kept;
    }

    /// Drop VPs the pair-resolver test found behind DNS interception
    /// (Appendix E: "already removed from VPs counted in Table 1").
    pub fn exclude_intercepted(&mut self, intercepted: &BTreeSet<VpId>) {
        let mut kept = Vec::with_capacity(self.vps.len());
        for vp in self.vps.drain(..) {
            if intercepted.contains(&vp.id) {
                self.excluded
                    .push((vp.id, ExclusionReason::DnsInterceptionOnPath));
            } else {
                kept.push(vp);
            }
        }
        self.vps = kept;
    }

    pub fn get(&self, id: VpId) -> Option<&VantagePoint> {
        self.vps.iter().find(|vp| vp.id == id)
    }

    pub fn in_market(&self, market: Market) -> impl Iterator<Item = &VantagePoint> {
        self.vps.iter().filter(move |vp| vp.market == market)
    }

    /// The Table-1 rows: per-market provider/VP/AS/country counts, plus the
    /// total row. AS counts come from the IP database, as in the paper.
    pub fn table1(&self, geo: &GeoDb) -> Vec<PlatformSummary> {
        let mut rows = Vec::new();
        let market_row = |label: &'static str, vps: Vec<&VantagePoint>| {
            let providers: BTreeSet<_> = vps.iter().map(|vp| vp.provider).collect();
            let ases: BTreeSet<_> = vps.iter().filter_map(|vp| geo.asn_of(vp.addr)).collect();
            let countries: BTreeSet<_> = vps.iter().map(|vp| vp.country).collect();
            PlatformSummary {
                market: label,
                providers: providers.len(),
                vps: vps.len(),
                ases: ases.len(),
                countries: countries.len(),
            }
        };
        rows.push(market_row(
            "Global (excl. CN)",
            self.in_market(Market::Global).collect(),
        ));
        rows.push(market_row(
            "China (CN mainland)",
            self.in_market(Market::China).collect(),
        ));
        rows.push(market_row("Total", self.vps.iter().collect()));
        rows
    }
}

/// Helper used by world builders: pick an advertised country that is
/// sometimes wrong (the paper distrusts advertised locations because "they
/// may be skewed").
pub fn advertised_country(
    true_country: CountryCode,
    provider: &VpnProvider,
    skew: bool,
) -> CountryCode {
    if skew && provider.market == Market::Global {
        // A common skew: advertising an exotic location served from a hub.
        shadow_geo::country::cc("PA")
    } else {
        true_country
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_geo::country::cc;
    use shadow_geo::{Asn, GeoRecord, Ipv4Prefix};

    fn vp(id: u32, market: Market, addr: [u8; 4], country: &str) -> VantagePoint {
        VantagePoint {
            id: VpId(id),
            provider: if market == Market::Global {
                "PureVPN"
            } else {
                "QiXun"
            },
            market,
            node: NodeId(id),
            addr: Ipv4Addr::new(addr[0], addr[1], addr[2], addr[3]),
            advertised_country: cc(country),
            country: cc(country),
            ttl_rewrite: None,
            residential: false,
        }
    }

    fn geo_with(prefix: [u8; 4], len: u8, asn: u32, hosting: bool) -> GeoDb {
        let mut db = GeoDb::new();
        db.insert(GeoRecord {
            prefix: Ipv4Prefix::new(
                Ipv4Addr::new(prefix[0], prefix[1], prefix[2], prefix[3]),
                len,
            )
            .unwrap(),
            asn: Asn(asn),
            country: cc("US"),
            hosting: if hosting {
                shadow_geo::HostingLabel::Hosting
            } else {
                shadow_geo::HostingLabel::Residential
            },
        });
        db.build();
        db
    }

    #[test]
    fn residential_vetting_drops_flagged_vps() {
        let mut platform = Platform::new(vec![
            vp(1, Market::Global, [5, 0, 0, 1], "US"),
            vp(2, Market::Global, [6, 0, 0, 1], "US"),
        ]);
        let mut geo = geo_with([5, 0, 0, 0], 8, 100, true);
        geo.insert(GeoRecord {
            prefix: Ipv4Prefix::new(Ipv4Addr::new(6, 0, 0, 0), 8).unwrap(),
            asn: Asn(200),
            country: cc("US"),
            hosting: shadow_geo::HostingLabel::Residential,
        });
        geo.build();
        platform.vet_residential(&geo);
        assert_eq!(platform.vps.len(), 1);
        assert_eq!(platform.vps[0].id, VpId(1));
        assert_eq!(
            platform.excluded,
            vec![(VpId(2), ExclusionReason::Residential)]
        );
    }

    #[test]
    fn ttl_vetting_uses_measured_deltas() {
        let mut platform = Platform::new(vec![
            vp(1, Market::Global, [5, 0, 0, 1], "US"),
            vp(2, Market::Global, [5, 0, 0, 2], "US"),
            vp(3, Market::Global, [5, 0, 0, 3], "US"),
        ]);
        // VP2's egress rewrote TTLs: both probes arrived with equal TTL.
        let measured = vec![(VpId(1), 50), (VpId(2), 0), (VpId(3), 50)];
        platform.vet_ttl_rewrite(&measured, 50);
        assert_eq!(platform.vps.len(), 2);
        assert_eq!(
            platform.excluded,
            vec![(VpId(2), ExclusionReason::TtlRewrite)]
        );
    }

    #[test]
    fn interception_exclusion() {
        let mut platform = Platform::new(vec![
            vp(1, Market::China, [5, 0, 0, 1], "CN"),
            vp(2, Market::China, [5, 0, 0, 2], "CN"),
        ]);
        let intercepted: BTreeSet<_> = [VpId(1)].into();
        platform.exclude_intercepted(&intercepted);
        assert_eq!(platform.vps.len(), 1);
        assert_eq!(platform.vps[0].id, VpId(2));
    }

    #[test]
    fn table1_counts_by_market() {
        let platform = Platform::new(vec![
            vp(1, Market::Global, [5, 0, 0, 1], "US"),
            vp(2, Market::Global, [5, 0, 1, 1], "DE"),
            vp(3, Market::China, [5, 0, 2, 1], "CN"),
        ]);
        let geo = geo_with([5, 0, 0, 0], 8, 100, true);
        let rows = platform.table1(&geo);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].market, "Global (excl. CN)");
        assert_eq!(rows[0].vps, 2);
        assert_eq!(rows[0].countries, 2);
        assert_eq!(rows[1].vps, 1);
        assert_eq!(rows[2].market, "Total");
        assert_eq!(rows[2].vps, 3);
        assert_eq!(rows[2].countries, 3);
        assert_eq!(rows[2].ases, 1, "all in AS100 per the geo db");
    }
}
