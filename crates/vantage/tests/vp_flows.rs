//! Vantage-point host flows through a real engine: decoy emission over all
//! protocols, handshake behaviour, raw Phase-II probes, TTL control, and
//! ICMP bookkeeping.

use shadow_geo::{Asn, Region};
use shadow_honeypot::web::WebHost;
use shadow_netsim::engine::{Ctx, Engine, Host};
use shadow_netsim::time::SimTime;
use shadow_netsim::topology::{NodeId, TopologyBuilder};
use shadow_netsim::transport::Transport;
use shadow_packet::dns::{DnsMessage, DnsName, Rcode};
use shadow_packet::ipv4::Ipv4Packet;
use shadow_packet::udp::UdpDatagram;
use shadow_vantage::vp::{VantagePointHost, VpCommand};
use std::any::Any;
use std::net::Ipv4Addr;

/// Minimal DNS responder (answers every A query with a fixed address).
struct MiniResolver {
    addr: Ipv4Addr,
    answer: Ipv4Addr,
    pub queries: Vec<DnsName>,
}

impl Host for MiniResolver {
    fn on_packet(&mut self, pkt: Ipv4Packet, ctx: &mut Ctx<'_>) {
        let Ok(Transport::Udp(dg)) = Transport::parse(&pkt) else {
            return;
        };
        if dg.dst_port != 53 {
            return;
        }
        let Ok(query) = DnsMessage::decode(&dg.payload) else {
            return;
        };
        if query.flags.response {
            return;
        }
        let Some(qname) = query.qname().cloned() else {
            return;
        };
        self.queries.push(qname.clone());
        let resp = DnsMessage::response(
            &query,
            false,
            Rcode::NoError,
            vec![shadow_packet::dns::DnsRecord::a(qname, 300, self.answer)],
        );
        ctx.send(Ipv4Packet::new(
            self.addr,
            pkt.header.src,
            shadow_packet::ipv4::IpProtocol::Udp,
            64,
            0,
            UdpDatagram::new(53, dg.src_port, resp.encode()).encode(),
        ));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct World {
    engine: Engine,
    vp: NodeId,
    resolver: NodeId,
    web: NodeId,
    web_addr: Ipv4Addr,
    resolver_addr: Ipv4Addr,
}

fn world(ttl_rewrite: Option<u8>) -> World {
    let mut tb = TopologyBuilder::new(13);
    tb.add_as(Asn(1), Region::Europe);
    tb.add_as(Asn(2), Region::NorthAmerica);
    tb.link(Asn(1), Asn(2)).unwrap();
    for (asn, base) in [(1u32, 1u8), (2, 2)] {
        for r in 0..3u8 {
            tb.add_router(Asn(asn), Ipv4Addr::new(base, 0, 0, r + 1), true)
                .unwrap();
        }
    }
    let vp_addr = Ipv4Addr::new(1, 1, 0, 1);
    let resolver_addr = Ipv4Addr::new(2, 1, 0, 53);
    let web_addr = Ipv4Addr::new(2, 1, 0, 80);
    let vp = tb.add_host(Asn(1), vp_addr).unwrap();
    let resolver = tb.add_host(Asn(2), resolver_addr).unwrap();
    let web = tb.add_host(Asn(2), web_addr).unwrap();
    let mut engine = Engine::new(tb.build().unwrap());
    engine.add_host(vp, Box::new(VantagePointHost::new(vp_addr, 3, ttl_rewrite)));
    engine.add_host(
        resolver,
        Box::new(MiniResolver {
            addr: resolver_addr,
            answer: Ipv4Addr::new(198, 51, 100, 1),
            queries: Vec::new(),
        }),
    );
    engine.add_host(web, Box::new(WebHost::honeypot(web_addr, "US", 5)));
    World {
        engine,
        vp,
        resolver,
        web,
        web_addr,
        resolver_addr,
    }
}

fn domain(label: &str) -> DnsName {
    DnsName::parse(&format!("{label}.www.experiment.example")).unwrap()
}

#[test]
fn dns_decoy_resolves_and_records_answer() {
    let mut w = world(None);
    w.engine.post(
        SimTime::ZERO,
        w.vp,
        Box::new(VpCommand::DnsDecoy {
            domain: domain("d1"),
            dst: w.resolver_addr,
            ttl: 64,
            retry: None,
        }),
    );
    w.engine.run_to_completion();
    let resolver = w.engine.host_as::<MiniResolver>(w.resolver).unwrap();
    assert_eq!(resolver.queries.len(), 1);
    let vp = w.engine.host_as::<VantagePointHost>(w.vp).unwrap();
    assert_eq!(vp.report.dns_answers.len(), 1);
    let ans = &vp.report.dns_answers[0];
    assert_eq!(ans.answer, Some(Ipv4Addr::new(198, 51, 100, 1)));
    assert_eq!(ans.from, w.resolver_addr);
    assert_eq!(vp.report.decoys_sent.len(), 1);
}

#[test]
fn http_decoy_completes_handshake_and_delivers_host_header() {
    let mut w = world(None);
    w.engine.post(
        SimTime::ZERO,
        w.vp,
        Box::new(VpCommand::HttpDecoy {
            domain: domain("h1"),
            dst: w.web_addr,
            ttl: 64,
        }),
    );
    w.engine.run_to_completion();
    let web = w.engine.host_as::<WebHost>(w.web).unwrap();
    assert_eq!(web.http_requests_served, 1);
    let arrival = web.captures().iter().next().unwrap();
    assert_eq!(arrival.domain, domain("h1"));
    let vp = w.engine.host_as::<VantagePointHost>(w.vp).unwrap();
    assert_eq!(vp.report.decoys_sent.len(), 1, "decoy sent after handshake");
    assert_eq!(vp.report.handshake_failures, 0);
}

#[test]
fn tls_decoy_delivers_sni() {
    let mut w = world(None);
    w.engine.post(
        SimTime::ZERO,
        w.vp,
        Box::new(VpCommand::TlsDecoy {
            domain: domain("t1"),
            dst: w.web_addr,
            ttl: 64,
        }),
    );
    w.engine.run_to_completion();
    let web = w.engine.host_as::<WebHost>(w.web).unwrap();
    assert_eq!(web.tls_hellos_seen, 1);
    let arrival = web.captures().iter().next().unwrap();
    assert_eq!(arrival.domain, domain("t1"));
}

#[test]
fn handshake_to_dead_host_counts_failure() {
    let mut w = world(None);
    // The resolver node has no TCP listener: SYNs are silently ignored
    // (it is a UDP host), so no failure... use an unbound port on the web
    // host instead by targeting the resolver address (MiniResolver ignores
    // TCP) — the connection just never establishes.
    w.engine.post(
        SimTime::ZERO,
        w.vp,
        Box::new(VpCommand::HttpDecoy {
            domain: domain("x1"),
            dst: w.resolver_addr,
            ttl: 64,
        }),
    );
    w.engine.run_to_completion();
    let vp = w.engine.host_as::<VantagePointHost>(w.vp).unwrap();
    assert!(vp.report.decoys_sent.is_empty(), "no handshake, no decoy");
}

#[test]
fn ttl_sweep_records_icmp_per_probe() {
    let mut w = world(None);
    let route = w.engine.topology().route(w.vp, w.resolver).unwrap();
    let router_hops = (route.len() - 2) as u8;
    for ttl in 1..=router_hops {
        w.engine.post(
            SimTime(u64::from(ttl) * 10_000),
            w.vp,
            Box::new(VpCommand::DnsDecoy {
                domain: domain(&format!("s{ttl}")),
                dst: w.resolver_addr,
                ttl,
                retry: None,
            }),
        );
    }
    w.engine.run_to_completion();
    let vp = w.engine.host_as::<VantagePointHost>(w.vp).unwrap();
    assert_eq!(vp.report.icmp.len(), router_hops as usize);
    // Every ICMP observation maps back to its probe via the ident map.
    for obs in &vp.report.icmp {
        let (_, ttl, dst) = vp.report.ident_map[&obs.orig_ident].clone();
        assert_eq!(dst, w.resolver_addr);
        assert!(ttl >= 1 && ttl <= router_hops);
        assert_eq!(obs.orig_dst, w.resolver_addr);
    }
    // And the routers revealed are distinct per TTL.
    let mut routers: Vec<_> = vp.report.icmp.iter().map(|o| o.router).collect();
    routers.dedup();
    assert_eq!(routers.len(), router_hops as usize);
}

#[test]
fn ttl_rewrite_defect_breaks_the_sweep() {
    let mut w = world(Some(64));
    w.engine.post(
        SimTime::ZERO,
        w.vp,
        Box::new(VpCommand::DnsDecoy {
            domain: domain("r1"),
            dst: w.resolver_addr,
            ttl: 1, // requested TTL 1, but the egress rewrites to 64
            retry: None,
        }),
    );
    w.engine.run_to_completion();
    let vp = w.engine.host_as::<VantagePointHost>(w.vp).unwrap();
    assert!(vp.report.icmp.is_empty(), "no expiry: TTL was rewritten");
    assert_eq!(
        vp.report.dns_answers.len(),
        1,
        "the decoy reached the resolver"
    );
}

#[test]
fn raw_probes_skip_the_handshake() {
    let mut w = world(None);
    w.engine.post(
        SimTime::ZERO,
        w.vp,
        Box::new(VpCommand::RawHttpProbe {
            domain: domain("p1"),
            dst: w.web_addr,
            ttl: 64,
        }),
    );
    w.engine.post(
        SimTime(1_000),
        w.vp,
        Box::new(VpCommand::RawTlsProbe {
            domain: domain("p2"),
            dst: w.web_addr,
            ttl: 64,
        }),
    );
    w.engine.run_to_completion();
    // The server's TCP stack refuses payloads on unknown connections, so
    // nothing is served — but the probes were emitted (for on-path
    // observers to see), and the server answered with RSTs.
    let web = w.engine.host_as::<WebHost>(w.web).unwrap();
    assert_eq!(web.http_requests_served, 0);
    assert_eq!(web.tls_hellos_seen, 0);
    let vp = w.engine.host_as::<VantagePointHost>(w.vp).unwrap();
    assert_eq!(vp.report.decoys_sent.len(), 2);
}
