//! Property-based round-trip tests: for every codec, `decode(encode(x)) == x`
//! over randomized structured inputs, and decoders never panic on arbitrary
//! byte soup.

use proptest::prelude::*;
use shadow_packet::dns::{DnsMessage, DnsName, DnsRecord, Rcode, RecordData, RecordType};
use shadow_packet::{
    ClientHello, DnsClass, HttpRequest, HttpResponse, IcmpMessage, IpProtocol, Ipv4Header,
    Ipv4Packet, TcpFlags, TcpSegment, TlsRecord, UdpDatagram,
};
use std::net::Ipv4Addr;

fn arb_ipv4() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9][a-z0-9-]{0,20}").expect("valid regex")
}

fn arb_name() -> impl Strategy<Value = DnsName> {
    proptest::collection::vec(arb_label(), 1..6)
        .prop_map(|labels| DnsName::parse(&labels.join(".")).expect("labels are valid"))
}

proptest! {
    #[test]
    fn ipv4_packet_round_trips(
        src in arb_ipv4(),
        dst in arb_ipv4(),
        proto in prop_oneof![Just(IpProtocol::Udp), Just(IpProtocol::Tcp), Just(IpProtocol::Icmp)],
        ttl in 1u8..=255,
        ident in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let pkt = Ipv4Packet::new(src, dst, proto, ttl, ident, payload);
        prop_assert_eq!(Ipv4Packet::decode(&pkt.encode()).unwrap(), pkt);
    }

    #[test]
    fn ipv4_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = Ipv4Packet::decode(&bytes);
    }

    #[test]
    fn udp_round_trips(
        sp in any::<u16>(),
        dp in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let d = UdpDatagram::new(sp, dp, payload);
        prop_assert_eq!(UdpDatagram::decode(&d.encode()).unwrap(), d);
    }

    #[test]
    fn tcp_round_trips(
        sp in any::<u16>(),
        dp in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        flags in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let seg = TcpSegment::new(sp, dp, seq, ack, TcpFlags(flags), payload);
        prop_assert_eq!(TcpSegment::decode(&seg.encode()).unwrap(), seg);
    }

    #[test]
    fn icmp_time_exceeded_round_trips(
        src in arb_ipv4(),
        dst in arb_ipv4(),
        ident in any::<u16>(),
        quoted in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let header = Ipv4Header::new(src, dst, IpProtocol::Udp, 0, ident, quoted.len());
        let msg = IcmpMessage::time_exceeded(header, &quoted);
        let back = IcmpMessage::decode(&msg.encode()).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn icmp_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let _ = IcmpMessage::decode(&bytes);
    }

    #[test]
    fn dns_name_round_trips(name in arb_name()) {
        let mut buf = Vec::new();
        name.encode(&mut buf);
        let mut r = shadow_packet::Reader::new(&buf);
        prop_assert_eq!(DnsName::decode(&mut r).unwrap(), name);
    }

    #[test]
    fn dns_query_round_trips(id in any::<u16>(), name in arb_name()) {
        let q = DnsMessage::query(id, name);
        prop_assert_eq!(DnsMessage::decode(&q.encode()).unwrap(), q);
    }

    #[test]
    fn dns_response_round_trips(
        id in any::<u16>(),
        name in arb_name(),
        addr in arb_ipv4(),
        ttl in 0u32..1_000_000,
        txts in proptest::collection::vec(arb_label(), 0..4),
    ) {
        let q = DnsMessage::query(id, name.clone());
        let mut resp = DnsMessage::response(&q, true, Rcode::NoError, vec![
            DnsRecord::a(name.clone(), ttl, addr),
        ]);
        resp.additionals.push(DnsRecord {
            name,
            rtype: RecordType::Txt,
            class: DnsClass::In,
            ttl,
            data: RecordData::Txt(txts),
        });
        prop_assert_eq!(DnsMessage::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn dns_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = DnsMessage::decode(&bytes);
    }

    /// A name whose tail is a compression pointer decodes to the full
    /// (prefix + target) name, and the reader resumes just past the
    /// pointer — not past the pointer's target.
    #[test]
    fn dns_name_with_compression_pointer_decodes(
        pad in proptest::collection::vec(any::<u8>(), 0..24),
        prefix in proptest::collection::vec(arb_label(), 0..3),
        suffix in arb_name(),
    ) {
        let mut buf = pad.clone();
        let target = buf.len();
        suffix.encode(&mut buf);
        let start = buf.len();
        for label in &prefix {
            buf.push(label.len() as u8);
            buf.extend_from_slice(label.as_bytes());
        }
        buf.extend_from_slice(&[0xc0 | (target >> 8) as u8, target as u8]);
        let end = buf.len();
        // Trailing garbage the decoder must not run into.
        buf.extend_from_slice(&[0xff, 0xff, 0xff]);

        let mut r = shadow_packet::Reader::new(&buf);
        r.seek(start).unwrap();
        let decoded = DnsName::decode(&mut r).unwrap();
        let expected = if prefix.is_empty() {
            suffix
        } else {
            DnsName::parse(&format!("{}.{}", prefix.join("."), suffix)).unwrap()
        };
        prop_assert_eq!(decoded, expected);
        prop_assert_eq!(r.position(), end);
    }

    /// Two-level pointer chains (a pointer whose target itself ends in a
    /// pointer) decode correctly — resolvers emit these for shared suffixes.
    #[test]
    fn dns_name_pointer_chains_decode(
        inner in proptest::collection::vec(arb_label(), 1..3),
        outer in proptest::collection::vec(arb_label(), 1..3),
        suffix in arb_name(),
    ) {
        let mut buf = Vec::new();
        let suffix_at = buf.len();
        suffix.encode(&mut buf);
        let inner_at = buf.len();
        for label in &inner {
            buf.push(label.len() as u8);
            buf.extend_from_slice(label.as_bytes());
        }
        buf.extend_from_slice(&[0xc0 | (suffix_at >> 8) as u8, suffix_at as u8]);
        let outer_at = buf.len();
        for label in &outer {
            buf.push(label.len() as u8);
            buf.extend_from_slice(label.as_bytes());
        }
        buf.extend_from_slice(&[0xc0 | (inner_at >> 8) as u8, inner_at as u8]);

        let mut r = shadow_packet::Reader::new(&buf);
        r.seek(outer_at).unwrap();
        let decoded = DnsName::decode(&mut r).unwrap();
        let expected = DnsName::parse(&format!(
            "{}.{}.{}",
            outer.join("."),
            inner.join("."),
            suffix
        ))
        .unwrap();
        prop_assert_eq!(decoded, expected);
    }

    /// Forward and self pointers are rejected as loops — an error, never a
    /// panic or an infinite loop.
    #[test]
    fn dns_name_forward_pointers_are_rejected(
        pad in proptest::collection::vec(any::<u8>(), 0..16),
        ahead in 0u8..32,
    ) {
        let mut buf = pad.clone();
        let start = buf.len();
        let target = start + usize::from(ahead); // >= its own offset: invalid
        buf.extend_from_slice(&[0xc0 | (target >> 8) as u8, target as u8]);
        let mut r = shadow_packet::Reader::new(&buf);
        r.seek(start).unwrap();
        prop_assert!(DnsName::decode(&mut r).is_err());
    }

    /// A response whose answer name is a compression pointer to the
    /// question decodes to the question name; re-encoding (uncompressed)
    /// then round-trips.
    #[test]
    fn dns_message_with_compressed_answer_round_trips(
        id in any::<u16>(),
        qname in arb_name(),
        addr in arb_ipv4(),
        ttl in 0u32..1_000_000,
    ) {
        let q = DnsMessage::query(id, qname.clone());
        let mut bytes = q.encode();
        bytes[2] |= 0x80; // QR: response
        bytes[6..8].copy_from_slice(&1u16.to_be_bytes()); // ancount = 1
        bytes.extend_from_slice(&[0xc0, 12]); // pointer to the question name
        bytes.extend_from_slice(&1u16.to_be_bytes()); // type A
        bytes.extend_from_slice(&1u16.to_be_bytes()); // class IN
        bytes.extend_from_slice(&ttl.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&addr.octets());

        let decoded = DnsMessage::decode(&bytes).unwrap();
        prop_assert_eq!(decoded.answers.len(), 1);
        prop_assert_eq!(&decoded.answers[0].name, &qname);
        prop_assert_eq!(&decoded.answers[0].data, &RecordData::A(addr));
        // The uncompressed re-encoding carries the identical message.
        let reencoded = DnsMessage::decode(&decoded.encode()).unwrap();
        prop_assert_eq!(reencoded, decoded);
    }

    #[test]
    fn http_request_round_trips(
        host in arb_label(),
        path_seg in arb_label(),
    ) {
        let req = HttpRequest::get(&host, &format!("/{path_seg}"));
        prop_assert_eq!(HttpRequest::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn http_response_round_trips(
        status in 100u16..600,
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let resp = HttpResponse::new(status, "Reason", body);
        prop_assert_eq!(HttpResponse::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn http_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = HttpRequest::decode(&bytes);
        let _ = HttpResponse::decode(&bytes);
    }

    #[test]
    fn tls_client_hello_round_trips(
        host in proptest::string::string_regex("[a-z0-9]{1,20}(\\.[a-z0-9]{1,15}){0,4}").expect("valid regex"),
        random in any::<[u8; 32]>(),
    ) {
        let ch = ClientHello::with_sni(&host, random);
        let back = ClientHello::decode_record(&ch.encode_record()).unwrap();
        let sni = back.sni();
        prop_assert_eq!(sni.as_deref(), Some(host.as_str()));
        prop_assert_eq!(back, ch);
    }

    #[test]
    fn tls_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = TlsRecord::decode(&bytes);
        let _ = ClientHello::decode_record(&bytes);
        let _ = shadow_packet::tls::sniff_sni(&bytes);
    }

    #[test]
    fn ttl_decrement_is_monotone(initial in 0u8..=255) {
        let mut h = Ipv4Header::new(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            IpProtocol::Udp,
            initial,
            0,
            0,
        );
        let before = h.ttl;
        let res = h.decrement_ttl();
        match res {
            Some(new) => {
                prop_assert_eq!(new, before - 1);
                prop_assert!(before > 1);
            }
            None => {
                prop_assert!(before <= 1);
                prop_assert_eq!(h.ttl, 0);
            }
        }
    }
}
