//! TCP segment codec (RFC 9293 framing; no options beyond MSS on SYN).
//!
//! The simulator models TCP at segment level: three-way handshakes before
//! HTTP/TLS decoys (Phase I requires them; Phase II deliberately skips them),
//! sequence-number accounting, FIN/RST teardown. Congestion control and
//! retransmission are out of scope — simulated links are reliable and
//! in-order, which the paper's methodology does not depend on.

use crate::bytes::SharedBytes;
use crate::cursor::Reader;
use crate::error::DecodeError;
use serde::{Deserialize, Serialize};

pub const TCP_HEADER_LEN: usize = 20;

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    pub const FIN: TcpFlags = TcpFlags(0x01);
    pub const SYN: TcpFlags = TcpFlags(0x02);
    pub const RST: TcpFlags = TcpFlags(0x04);
    pub const PSH: TcpFlags = TcpFlags(0x08);
    pub const ACK: TcpFlags = TcpFlags(0x10);

    pub const SYN_ACK: TcpFlags = TcpFlags(0x12);
    pub const PSH_ACK: TcpFlags = TcpFlags(0x18);
    pub const FIN_ACK: TcpFlags = TcpFlags(0x11);

    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    pub fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }

    pub fn is_syn(self) -> bool {
        self.contains(TcpFlags::SYN) && !self.contains(TcpFlags::ACK)
    }

    pub fn is_syn_ack(self) -> bool {
        self.contains(TcpFlags::SYN) && self.contains(TcpFlags::ACK)
    }
}

/// A TCP segment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpSegment {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u32,
    pub ack: u32,
    pub flags: TcpFlags,
    pub window: u16,
    pub payload: SharedBytes,
}

impl TcpSegment {
    pub fn new(
        src_port: u16,
        dst_port: u16,
        seq: u32,
        ack: u32,
        flags: TcpFlags,
        payload: impl Into<SharedBytes>,
    ) -> Self {
        Self {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window: 65_535,
            payload: payload.into(),
        }
    }

    /// A bare SYN opening a connection.
    pub fn syn(src_port: u16, dst_port: u16, isn: u32) -> Self {
        Self::new(
            src_port,
            dst_port,
            isn,
            0,
            TcpFlags::SYN,
            SharedBytes::empty(),
        )
    }

    /// The SYN-ACK answering `syn`.
    pub fn syn_ack(syn: &TcpSegment, server_isn: u32) -> Self {
        Self::new(
            syn.dst_port,
            syn.src_port,
            server_isn,
            syn.seq.wrapping_add(1),
            TcpFlags::SYN_ACK,
            SharedBytes::empty(),
        )
    }

    /// An RST answering an unwanted segment.
    pub fn rst(seg: &TcpSegment) -> Self {
        Self::new(
            seg.dst_port,
            seg.src_port,
            seg.ack,
            seg.seq.wrapping_add(seg.seq_len()),
            TcpFlags::RST.union(TcpFlags::ACK),
            SharedBytes::empty(),
        )
    }

    /// Sequence space consumed by this segment (payload + SYN/FIN).
    pub fn seq_len(&self) -> u32 {
        let mut n = self.payload.len() as u32;
        if self.flags.contains(TcpFlags::SYN) {
            n = n.wrapping_add(1);
        }
        if self.flags.contains(TcpFlags::FIN) {
            n = n.wrapping_add(1);
        }
        n
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(TCP_HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(5 << 4); // data offset 5 words, no options
        out.push(self.flags.0);
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes()); // checksum (pseudo-header elided)
        out.extend_from_slice(&0u16.to_be_bytes()); // urgent pointer
        out.extend_from_slice(&self.payload);
        out
    }

    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        Self::decode_shared(&SharedBytes::from(buf))
    }

    /// Decode from an already-shared buffer (e.g. an [`crate::Ipv4Packet`]
    /// payload); the segment payload is a zero-copy window into `buf`.
    pub fn decode_shared(buf: &SharedBytes) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        let src_port = r.u16("TCP source port")?;
        let dst_port = r.u16("TCP destination port")?;
        let seq = r.u32("TCP sequence")?;
        let ack = r.u32("TCP ack")?;
        let offset_byte = r.u8("TCP data offset")?;
        let data_offset = (offset_byte >> 4) as usize * 4;
        if data_offset < TCP_HEADER_LEN {
            return Err(DecodeError::malformed(
                "TCP data offset",
                format!("{data_offset} < {TCP_HEADER_LEN}"),
            ));
        }
        let flags = TcpFlags(r.u8("TCP flags")?);
        let window = r.u16("TCP window")?;
        let _checksum = r.u16("TCP checksum")?;
        let _urgent = r.u16("TCP urgent pointer")?;
        r.skip("TCP options", data_offset - TCP_HEADER_LEN)?;
        let start = r.position();
        Ok(Self {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window,
            payload: buf.slice(start..buf.len()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let seg = TcpSegment::new(40000, 443, 1000, 2000, TcpFlags::PSH_ACK, b"hello".to_vec());
        assert_eq!(TcpSegment::decode(&seg.encode()).unwrap(), seg);
    }

    #[test]
    fn handshake_constructors() {
        let syn = TcpSegment::syn(1234, 80, 999);
        assert!(syn.flags.is_syn());
        assert_eq!(syn.seq_len(), 1);
        let synack = TcpSegment::syn_ack(&syn, 5555);
        assert!(synack.flags.is_syn_ack());
        assert_eq!(synack.ack, 1000);
        assert_eq!(synack.src_port, 80);
        assert_eq!(synack.dst_port, 1234);
    }

    #[test]
    fn rst_acks_consumed_sequence() {
        let seg = TcpSegment::new(1, 2, 10, 0, TcpFlags::PSH_ACK, vec![0u8; 5]);
        let rst = TcpSegment::rst(&seg);
        assert!(rst.flags.contains(TcpFlags::RST));
        assert_eq!(rst.ack, 15);
    }

    #[test]
    fn seq_len_counts_syn_fin() {
        let mut seg = TcpSegment::new(1, 2, 0, 0, TcpFlags::SYN.union(TcpFlags::FIN), vec![0; 3]);
        assert_eq!(seg.seq_len(), 5);
        seg.flags = TcpFlags::ACK;
        assert_eq!(seg.seq_len(), 3);
    }

    #[test]
    fn rejects_bad_data_offset() {
        let seg = TcpSegment::new(1, 2, 3, 4, TcpFlags::ACK, Vec::new());
        let mut bytes = seg.encode();
        bytes[12] = 2 << 4;
        assert!(matches!(
            TcpSegment::decode(&bytes),
            Err(DecodeError::Malformed { .. })
        ));
    }

    #[test]
    fn flag_predicates() {
        assert!(TcpFlags::SYN.is_syn());
        assert!(!TcpFlags::SYN_ACK.is_syn());
        assert!(TcpFlags::SYN_ACK.is_syn_ack());
        assert!(TcpFlags::PSH_ACK.contains(TcpFlags::ACK));
    }
}
