//! A bounds-checked big-endian byte reader used by every decoder.

use crate::error::DecodeError;

/// Forward-only reader over a byte slice with decode-friendly errors.
///
/// Keeps the full original buffer accessible (needed by the DNS codec, whose
/// compression pointers reference absolute message offsets).
#[derive(Debug, Clone, Copy)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current absolute offset into the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Jump to an absolute offset (used for DNS compression pointers).
    pub fn seek(&mut self, pos: usize) -> Result<(), DecodeError> {
        if pos > self.buf.len() {
            return Err(DecodeError::Truncated {
                what: "seek target",
                needed: pos - self.buf.len(),
            });
        }
        self.pos = pos;
        Ok(())
    }

    /// Bytes remaining from the cursor to the end.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The entire underlying buffer (not just the unread part).
    pub fn full_buffer(&self) -> &'a [u8] {
        self.buf
    }

    fn need(&self, what: &'static str, n: usize) -> Result<(), DecodeError> {
        if self.remaining() < n {
            Err(DecodeError::Truncated {
                what,
                needed: n - self.remaining(),
            })
        } else {
            Ok(())
        }
    }

    pub fn u8(&mut self, what: &'static str) -> Result<u8, DecodeError> {
        self.need(what, 1)?;
        let v = self.buf[self.pos];
        self.pos += 1;
        Ok(v)
    }

    pub fn u16(&mut self, what: &'static str) -> Result<u16, DecodeError> {
        self.need(what, 2)?;
        let v = u16::from_be_bytes([self.buf[self.pos], self.buf[self.pos + 1]]);
        self.pos += 2;
        Ok(v)
    }

    pub fn u32(&mut self, what: &'static str) -> Result<u32, DecodeError> {
        self.need(what, 4)?;
        let v = u32::from_be_bytes([
            self.buf[self.pos],
            self.buf[self.pos + 1],
            self.buf[self.pos + 2],
            self.buf[self.pos + 3],
        ]);
        self.pos += 4;
        Ok(v)
    }

    /// Read exactly `n` bytes.
    pub fn bytes(&mut self, what: &'static str, n: usize) -> Result<&'a [u8], DecodeError> {
        self.need(what, n)?;
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read all remaining bytes.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    /// Skip `n` bytes.
    pub fn skip(&mut self, what: &'static str, n: usize) -> Result<(), DecodeError> {
        self.need(what, n)?;
        self.pos += n;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_be_integers() {
        let mut r = Reader::new(&[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07]);
        assert_eq!(r.u8("a").unwrap(), 0x01);
        assert_eq!(r.u16("b").unwrap(), 0x0203);
        assert_eq!(r.u32("c").unwrap(), 0x0405_0607);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_reports_deficit() {
        let mut r = Reader::new(&[0x01]);
        match r.u32("x") {
            Err(DecodeError::Truncated {
                what: "x",
                needed: 3,
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn seek_and_rest() {
        let mut r = Reader::new(b"hello world");
        r.seek(6).unwrap();
        assert_eq!(r.rest(), b"world");
        assert!(r.seek(100).is_err());
    }

    #[test]
    fn bytes_advances() {
        let mut r = Reader::new(b"abcdef");
        assert_eq!(r.bytes("s", 3).unwrap(), b"abc");
        assert_eq!(r.position(), 3);
        r.skip("s", 2).unwrap();
        assert_eq!(r.rest(), b"f");
    }
}
