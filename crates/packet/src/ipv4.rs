//! IPv4 header and packet codec with the Internet checksum.
//!
//! TTL behaviour is central to the reproduction: Phase II of the paper's
//! methodology sweeps the initial TTL from 1 to 64 to locate on-path
//! observers, and routers in `shadow-netsim` decrement [`Ipv4Header::ttl`]
//! and emit ICMP Time Exceeded when it hits zero.

use crate::bytes::SharedBytes;
use crate::cursor::Reader;
use crate::error::DecodeError;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Default initial TTL for packets originated by simulated hosts (Linux
/// default; also what the VPN vantage points emit unless Phase II overrides).
pub const DEFAULT_TTL: u8 = 64;

/// The protocol numbers this stack speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IpProtocol {
    Icmp,
    Tcp,
    Udp,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl IpProtocol {
    pub fn number(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(n) => n,
        }
    }

    pub fn from_number(n: u8) -> Self {
        match n {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

/// A decoded IPv4 header (options unsupported, IHL always 5 on encode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Header {
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub protocol: IpProtocol,
    pub ttl: u8,
    pub identification: u16,
    /// Total length: header (20) + payload.
    pub total_length: u16,
}

pub const IPV4_HEADER_LEN: usize = 20;

impl Ipv4Header {
    /// Header for a payload of `payload_len` bytes.
    pub fn new(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        protocol: IpProtocol,
        ttl: u8,
        identification: u16,
        payload_len: usize,
    ) -> Self {
        let total = (IPV4_HEADER_LEN + payload_len).min(u16::MAX as usize) as u16;
        Self {
            src,
            dst,
            protocol,
            ttl,
            identification,
            total_length: total,
        }
    }

    /// Serialize, computing the header checksum.
    pub fn encode(&self) -> [u8; IPV4_HEADER_LEN] {
        let mut h = [0u8; IPV4_HEADER_LEN];
        h[0] = 0x45; // version 4, IHL 5
        h[1] = 0; // DSCP/ECN
        h[2..4].copy_from_slice(&self.total_length.to_be_bytes());
        h[4..6].copy_from_slice(&self.identification.to_be_bytes());
        h[6..8].copy_from_slice(&0u16.to_be_bytes()); // flags/fragment
        h[8] = self.ttl;
        h[9] = self.protocol.number();
        // checksum at 10..12 left zero for computation
        h[12..16].copy_from_slice(&self.src.octets());
        h[16..20].copy_from_slice(&self.dst.octets());
        let sum = internet_checksum(&h);
        h[10..12].copy_from_slice(&sum.to_be_bytes());
        h
    }

    /// Decode and verify the checksum.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let start = r.position();
        let vihl = r.u8("IPv4 version/IHL")?;
        let version = vihl >> 4;
        let ihl = (vihl & 0x0f) as usize * 4;
        if version != 4 {
            return Err(DecodeError::Unsupported {
                what: "IP version",
                value: version as u32,
            });
        }
        if ihl < IPV4_HEADER_LEN {
            return Err(DecodeError::malformed(
                "IPv4 header",
                format!("IHL {ihl} < 20"),
            ));
        }
        let _dscp = r.u8("IPv4 DSCP")?;
        let total_length = r.u16("IPv4 total length")?;
        let identification = r.u16("IPv4 identification")?;
        let flags_frag = r.u16("IPv4 flags/fragment")?;
        if flags_frag & 0x1fff != 0 {
            return Err(DecodeError::Unsupported {
                what: "IPv4 fragment offset",
                value: (flags_frag & 0x1fff) as u32,
            });
        }
        let ttl = r.u8("IPv4 TTL")?;
        let protocol = IpProtocol::from_number(r.u8("IPv4 protocol")?);
        let _checksum = r.u16("IPv4 checksum")?;
        let src = Ipv4Addr::from(r.u32("IPv4 source")?);
        let dst = Ipv4Addr::from(r.u32("IPv4 destination")?);
        // Verify checksum over the full header (including any options).
        let end_opts = start + ihl;
        let full = r.full_buffer();
        if end_opts > full.len() {
            return Err(DecodeError::Truncated {
                what: "IPv4 options",
                needed: end_opts - full.len(),
            });
        }
        // A buffer containing a correct checksum sums to zero.
        if internet_checksum(&full[start..end_opts]) != 0 {
            return Err(DecodeError::BadChecksum {
                what: "IPv4 header",
            });
        }
        r.seek(end_opts)?;
        Ok(Self {
            src,
            dst,
            protocol,
            ttl,
            identification,
            total_length,
        })
    }

    /// Decrement TTL in place; returns the new value, or `None` if the TTL
    /// was already 0 or reaches 0 (packet must be dropped and ICMP Time
    /// Exceeded generated, per router forwarding rules).
    pub fn decrement_ttl(&mut self) -> Option<u8> {
        if self.ttl <= 1 {
            self.ttl = 0;
            None
        } else {
            self.ttl -= 1;
            Some(self.ttl)
        }
    }

    pub fn payload_len(&self) -> usize {
        (self.total_length as usize).saturating_sub(IPV4_HEADER_LEN)
    }
}

/// A full IPv4 packet: header plus transport payload.
///
/// The payload is a [`SharedBytes`] view: cloning a packet (event
/// duplication, harvest, capture) bumps a reference count instead of
/// copying the buffer, and transport decoders can slice it zero-copy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Packet {
    pub header: Ipv4Header,
    pub payload: SharedBytes,
}

impl Ipv4Packet {
    pub fn new(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        protocol: IpProtocol,
        ttl: u8,
        identification: u16,
        payload: impl Into<SharedBytes>,
    ) -> Self {
        let payload = payload.into();
        let header = Ipv4Header::new(src, dst, protocol, ttl, identification, payload.len());
        Self { header, payload }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(IPV4_HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.header.encode());
        out.extend_from_slice(&self.payload);
        out
    }

    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        Self::decode_shared(&SharedBytes::from(buf))
    }

    /// Decode from an already-shared buffer; the payload is a zero-copy
    /// window into `buf`.
    pub fn decode_shared(buf: &SharedBytes) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        let header = Ipv4Header::decode(&mut r)?;
        let want = header.payload_len();
        let start = r.position();
        let have = r.remaining().min(want);
        if have < want {
            return Err(DecodeError::Truncated {
                what: "IPv4 payload",
                needed: want - have,
            });
        }
        Ok(Self {
            header,
            payload: buf.slice(start..start + want),
        })
    }
}

/// RFC 1071 Internet checksum of `data`.
///
/// With the checksum field zeroed, the result is the value to store. Over a
/// buffer that already contains a correct checksum, the result is `0` — the
/// verification condition decoders use.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(8, 8, 8, 8),
            IpProtocol::Udp,
            64,
            0x1234,
            40,
        )
    }

    #[test]
    fn header_round_trips() {
        let h = header();
        let bytes = h.encode();
        let mut r = Reader::new(&bytes);
        let back = Ipv4Header::decode(&mut r).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn checksum_detects_corruption() {
        let h = header();
        let mut bytes = h.encode();
        bytes[15] ^= 0x40; // flip a bit in the source address
        let mut r = Reader::new(&bytes);
        assert_eq!(
            Ipv4Header::decode(&mut r),
            Err(DecodeError::BadChecksum {
                what: "IPv4 header"
            })
        );
    }

    #[test]
    fn ttl_decrement_semantics() {
        let mut h = header();
        h.ttl = 2;
        assert_eq!(h.decrement_ttl(), Some(1));
        assert_eq!(h.decrement_ttl(), None);
        assert_eq!(h.ttl, 0);
        let mut h0 = header();
        h0.ttl = 0;
        assert_eq!(h0.decrement_ttl(), None);
    }

    #[test]
    fn packet_round_trips() {
        let pkt = Ipv4Packet::new(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            IpProtocol::Tcp,
            33,
            7,
            b"payload bytes".to_vec(),
        );
        let bytes = pkt.encode();
        assert_eq!(Ipv4Packet::decode(&bytes).unwrap(), pkt);
    }

    #[test]
    fn truncated_payload_rejected() {
        let pkt = Ipv4Packet::new(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            IpProtocol::Udp,
            10,
            9,
            vec![0u8; 32],
        );
        let bytes = pkt.encode();
        assert!(matches!(
            Ipv4Packet::decode(&bytes[..bytes.len() - 5]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_ipv6_version() {
        let h = header();
        let mut bytes = h.encode();
        bytes[0] = 0x65;
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            Ipv4Header::decode(&mut r),
            Err(DecodeError::Unsupported {
                what: "IP version",
                ..
            })
        ));
    }

    #[test]
    fn checksum_rfc1071_example() {
        // Verifying a buffer that includes a correct checksum yields zero.
        let h = header().encode();
        assert_eq!(internet_checksum(&h), 0);
    }

    #[test]
    fn odd_length_checksum() {
        let a = internet_checksum(&[0x01, 0x02, 0x03]);
        let b = internet_checksum(&[0x01, 0x02, 0x03, 0x00]);
        assert_eq!(a, b, "odd tail must be zero-padded");
    }
}
