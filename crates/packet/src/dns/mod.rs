//! DNS wire-format codec (RFC 1035).
//!
//! Supports the full message structure the reproduction needs: header with
//! flags/rcode, questions, and A/NS/CNAME/SOA/PTR/TXT/AAAA-opaque records in
//! all four sections. Name decompression follows pointers (with loop
//! protection); encoding always emits uncompressed names, which is valid and
//! keeps the encoder simple.

mod message;
mod name;

pub use message::{DnsFlags, DnsMessage, DnsQuestion, DnsRecord, Opcode, Rcode, RecordData};
pub use name::{DnsName, NameError, MAX_LABEL_LEN, MAX_NAME_LEN};

use serde::{Deserialize, Serialize};

/// DNS record types the codec understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordType {
    A,
    Ns,
    Cname,
    Soa,
    Ptr,
    Txt,
    Aaaa,
    /// Anything else, preserved by number (record data kept opaque).
    Other(u16),
}

impl RecordType {
    pub fn number(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Ptr => 12,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Other(n) => n,
        }
    }

    pub fn from_number(n: u16) -> Self {
        match n {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            12 => RecordType::Ptr,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            other => RecordType::Other(other),
        }
    }
}

/// DNS classes (IN is the only one in live use; others preserved by number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DnsClass {
    In,
    Other(u16),
}

impl DnsClass {
    pub fn number(self) -> u16 {
        match self {
            DnsClass::In => 1,
            DnsClass::Other(n) => n,
        }
    }

    pub fn from_number(n: u16) -> Self {
        match n {
            1 => DnsClass::In,
            other => DnsClass::Other(other),
        }
    }
}
