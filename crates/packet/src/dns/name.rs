//! Domain names: validation, canonicalization, wire encoding, and
//! compression-aware decoding.

use crate::cursor::Reader;
use crate::error::DecodeError;
use std::fmt;
use std::sync::Arc;

/// Maximum length of one label (RFC 1035 §2.3.4).
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum length of a full name in presentation format.
pub const MAX_NAME_LEN: usize = 253;

/// A validated, lower-cased domain name stored in presentation format
/// without the trailing dot (the root is the empty name).
///
/// Decoys embed identifiers as the leftmost label, so label-level access
/// ([`DnsName::labels`], [`DnsName::first_label`]) is first-class here.
///
/// Backed by `Arc<str>`: a decoy's name is decoded once per packet and
/// then cloned into every observer's retention store, capture log and
/// probe order along the route — with a shared allocation those clones
/// are refcount bumps, and the per-hop memory cost of wide observation
/// stays flat.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DnsName(Arc<str>);

/// Why a string failed to validate as a domain name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    Empty,
    TooLong(usize),
    LabelTooLong(String),
    EmptyLabel,
    BadCharacter(char),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::Empty => write!(f, "empty domain name"),
            NameError::TooLong(n) => write!(f, "domain name too long: {n} > {MAX_NAME_LEN}"),
            NameError::LabelTooLong(l) => write!(f, "label too long: {l:?}"),
            NameError::EmptyLabel => write!(f, "empty label"),
            NameError::BadCharacter(c) => write!(f, "bad character {c:?} in domain name"),
        }
    }
}

impl std::error::Error for NameError {}

impl DnsName {
    /// Parse and canonicalize (lowercase, strip one trailing dot).
    ///
    /// Accepts letters, digits, `-` and `_` in labels — underscore is
    /// required for service labels and appears in real query streams the
    /// paper's honeypots log.
    pub fn parse(s: &str) -> Result<Self, NameError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Err(NameError::Empty);
        }
        if s.len() > MAX_NAME_LEN {
            return Err(NameError::TooLong(s.len()));
        }
        let mut canon = String::with_capacity(s.len());
        for (i, label) in s.split('.').enumerate() {
            if label.is_empty() {
                return Err(NameError::EmptyLabel);
            }
            if label.len() > MAX_LABEL_LEN {
                return Err(NameError::LabelTooLong(label.to_string()));
            }
            for ch in label.chars() {
                if !(ch.is_ascii_alphanumeric() || ch == '-' || ch == '_') {
                    return Err(NameError::BadCharacter(ch));
                }
            }
            if i > 0 {
                canon.push('.');
            }
            // Labels are ASCII-validated above, so per-char lowercasing
            // matches `to_ascii_lowercase` without its per-label String.
            for ch in label.chars() {
                canon.push(ch.to_ascii_lowercase());
            }
        }
        Ok(Self(canon.into()))
    }

    /// The root name (zero labels).
    pub fn root() -> Self {
        Self("".into())
    }

    pub fn is_root(&self) -> bool {
        self.0.is_empty()
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }

    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.0.split('.').filter(|l| !l.is_empty())
    }

    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// The leftmost label (where decoy identifiers live).
    pub fn first_label(&self) -> Option<&str> {
        self.labels().next()
    }

    /// True if `self` equals `suffix` or ends with `.suffix`.
    pub fn is_subdomain_of(&self, suffix: &DnsName) -> bool {
        if suffix.is_root() {
            return true;
        }
        self.0 == suffix.0
            || (self.0.len() > suffix.0.len()
                && self.0.ends_with(&*suffix.0)
                && self.0.as_bytes()[self.0.len() - suffix.0.len() - 1] == b'.')
    }

    /// Prepend one label, validating it.
    ///
    /// `self` is already canonical, so only the new label needs checking
    /// and lowercasing — one concatenation, no re-parse. (Decoy planning
    /// calls this once per registered decoy; at paper scale that is ~20M
    /// calls, so the allocation count here is a measured hot spot.)
    pub fn prepend(&self, label: &str) -> Result<Self, NameError> {
        if self.is_root() {
            return Self::parse(label);
        }
        if label.contains('.') {
            // Multi-label prefixes take the full validating parse.
            return Self::parse(&format!("{label}.{}", self.0));
        }
        if label.is_empty() {
            return Err(NameError::EmptyLabel);
        }
        if label.len() > MAX_LABEL_LEN {
            return Err(NameError::LabelTooLong(label.to_string()));
        }
        for ch in label.chars() {
            if !(ch.is_ascii_alphanumeric() || ch == '-' || ch == '_') {
                return Err(NameError::BadCharacter(ch));
            }
        }
        let total = label.len() + 1 + self.0.len();
        if total > MAX_NAME_LEN {
            return Err(NameError::TooLong(total));
        }
        let mut canon = String::with_capacity(total);
        for ch in label.chars() {
            canon.push(ch.to_ascii_lowercase());
        }
        canon.push('.');
        canon.push_str(&self.0);
        Ok(Self(canon.into()))
    }

    /// Strip the leftmost label; `None` if already root.
    pub fn parent(&self) -> Option<Self> {
        if self.is_root() {
            return None;
        }
        match self.0.find('.') {
            Some(i) => Some(Self(self.0[i + 1..].into())),
            None => Some(Self::root()),
        }
    }

    /// Wire-encode (uncompressed) onto `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        for label in self.labels() {
            out.push(label.len() as u8);
            out.extend_from_slice(label.as_bytes());
        }
        out.push(0);
    }

    /// Decode a possibly-compressed name. The reader must sit at the name's
    /// first byte within the *full message buffer* (pointers are absolute
    /// message offsets). On return the reader sits just past the name's
    /// in-place bytes (not past any pointer target).
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let mut labels: Vec<String> = Vec::new();
        let mut jumps = 0usize;
        // After following the first pointer, the "real" cursor stays put; we
        // decode the rest from a cloned reader.
        let mut current = *r;
        let mut resume_pos: Option<usize> = None;
        loop {
            let len = current.u8("DNS name label length")?;
            match len {
                0 => break,
                l if l & 0xc0 == 0xc0 => {
                    let lo = current.u8("DNS compression pointer")?;
                    let pointer_offset = current.position() - 2;
                    let target = (usize::from(l & 0x3f) << 8) | usize::from(lo);
                    if resume_pos.is_none() {
                        resume_pos = Some(current.position());
                    }
                    jumps += 1;
                    // Well-formed compression always points strictly earlier
                    // in the message; the jump cap bounds pathological chains
                    // that bounce between prior offsets.
                    if target >= pointer_offset || jumps > 32 {
                        return Err(DecodeError::CompressionLoop);
                    }
                    current.seek(target)?;
                }
                l if l & 0xc0 != 0 => {
                    return Err(DecodeError::Unsupported {
                        what: "DNS label type",
                        value: u32::from(l >> 6),
                    });
                }
                l => {
                    let raw = current.bytes("DNS label", usize::from(l))?;
                    let label = std::str::from_utf8(raw)
                        .map_err(|_| DecodeError::malformed("DNS label", "not UTF-8"))?;
                    labels.push(label.to_ascii_lowercase());
                    if labels.len() > 128 {
                        return Err(DecodeError::malformed("DNS name", "too many labels"));
                    }
                }
            }
        }
        match resume_pos {
            Some(p) => r.seek(p)?,
            None => r.seek(current.position())?,
        }
        if labels.is_empty() {
            return Ok(Self::root());
        }
        Self::parse(&labels.join("."))
            .map_err(|e| DecodeError::malformed("DNS name", e.to_string()))
    }
}

// Hand-written (instead of derived) so the `Arc<str>` interior still
// serializes as a plain string — the shape every committed bundle and
// journal already uses. Deserialization revalidates through `parse`.
impl serde::Serialize for DnsName {
    fn serialize_content(&self) -> serde::Content {
        serde::Content::Str(self.0.to_string())
    }
}

impl serde::Deserialize for DnsName {
    fn deserialize_content(content: &serde::Content) -> Result<Self, serde::DeError> {
        match content {
            serde::Content::Str(s) if s.is_empty() => Ok(Self::root()),
            serde::Content::Str(s) => {
                Self::parse(s).map_err(|e| serde::DeError::new(e.to_string()))
            }
            other => Err(serde::DeError::mismatch("domain name string", other)),
        }
    }
}

impl fmt::Display for DnsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            f.write_str(".")
        } else {
            f.write_str(&self.0)
        }
    }
}

impl fmt::Debug for DnsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DnsName({self})")
    }
}

impl std::str::FromStr for DnsName {
    type Err = NameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_lowercases() {
        let n = DnsName::parse("WWW.Example.COM.").unwrap();
        assert_eq!(n.as_str(), "www.example.com");
        assert_eq!(n.label_count(), 3);
        assert_eq!(n.first_label(), Some("www"));
    }

    #[test]
    fn rejects_invalid() {
        assert_eq!(DnsName::parse(""), Err(NameError::Empty));
        assert_eq!(DnsName::parse("a..b"), Err(NameError::EmptyLabel));
        assert!(matches!(
            DnsName::parse("a b.com"),
            Err(NameError::BadCharacter(' '))
        ));
        let long_label = "a".repeat(64);
        assert!(matches!(
            DnsName::parse(&format!("{long_label}.com")),
            Err(NameError::LabelTooLong(_))
        ));
        let long_name = format!("{}.com", "a.".repeat(130));
        assert!(DnsName::parse(&long_name).is_err());
    }

    #[test]
    fn subdomain_checks() {
        let zone = DnsName::parse("experiment.example").unwrap();
        let sub = DnsName::parse("abc123.www.experiment.example").unwrap();
        let other = DnsName::parse("notexperiment.example").unwrap();
        assert!(sub.is_subdomain_of(&zone));
        assert!(zone.is_subdomain_of(&zone));
        assert!(!other.is_subdomain_of(&zone));
        assert!(sub.is_subdomain_of(&DnsName::root()));
    }

    #[test]
    fn prepend_and_parent() {
        let zone = DnsName::parse("www.experiment.example").unwrap();
        let full = zone.prepend("g6d8jjkut5obc4-9982").unwrap();
        assert_eq!(full.as_str(), "g6d8jjkut5obc4-9982.www.experiment.example");
        assert_eq!(full.parent().unwrap(), zone);
        assert_eq!(
            DnsName::parse("com").unwrap().parent().unwrap(),
            DnsName::root()
        );
        assert_eq!(DnsName::root().parent(), None);
    }

    #[test]
    fn wire_round_trip_uncompressed() {
        let n = DnsName::parse("mail.example.org").unwrap();
        let mut buf = Vec::new();
        n.encode(&mut buf);
        assert_eq!(buf[0], 4); // "mail"
        let mut r = Reader::new(&buf);
        assert_eq!(DnsName::decode(&mut r).unwrap(), n);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn decodes_compressed_names() {
        // Message layout: name "example.com" at offset 0, then a name
        // "www" + pointer to offset 0 at offset 13.
        let mut buf = Vec::new();
        DnsName::parse("example.com").unwrap().encode(&mut buf);
        let second_at = buf.len();
        buf.push(3);
        buf.extend_from_slice(b"www");
        buf.push(0xc0);
        buf.push(0);
        let mut r = Reader::new(&buf);
        r.seek(second_at).unwrap();
        let n = DnsName::decode(&mut r).unwrap();
        assert_eq!(n.as_str(), "www.example.com");
        assert_eq!(r.remaining(), 0, "reader resumes after the pointer");
    }

    #[test]
    fn rejects_pointer_loop() {
        // A pointer that points at itself.
        let buf = [0xc0u8, 0x00];
        let mut r = Reader::new(&buf);
        assert!(matches!(
            DnsName::decode(&mut r),
            Err(DecodeError::CompressionLoop) | Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_mutual_pointer_loop() {
        // offset 0 -> pointer to 2; offset 2 -> pointer to 0.
        let buf = [0xc0u8, 0x02, 0xc0, 0x00];
        let mut r = Reader::new(&buf);
        assert!(matches!(
            DnsName::decode(&mut r),
            Err(DecodeError::CompressionLoop)
        ));
    }

    #[test]
    fn root_round_trips() {
        let mut buf = Vec::new();
        DnsName::root().encode(&mut buf);
        assert_eq!(buf, vec![0]);
        let mut r = Reader::new(&buf);
        assert!(DnsName::decode(&mut r).unwrap().is_root());
    }

    #[test]
    fn underscore_labels_allowed() {
        let n = DnsName::parse("_dns.resolver.arpa").unwrap();
        assert_eq!(n.first_label(), Some("_dns"));
    }
}
