//! DNS message structure: header, question, resource records, full codec.

use super::name::DnsName;
use super::{DnsClass, RecordType};
use crate::cursor::Reader;
use crate::error::DecodeError;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Query/response opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Opcode {
    Query,
    Other(u8),
}

impl Opcode {
    fn number(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::Other(n) => n & 0x0f,
        }
    }

    fn from_number(n: u8) -> Self {
        match n & 0x0f {
            0 => Opcode::Query,
            other => Opcode::Other(other),
        }
    }
}

/// Response code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rcode {
    NoError,
    FormErr,
    ServFail,
    NxDomain,
    NotImp,
    Refused,
    Other(u8),
}

impl Rcode {
    fn number(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(n) => n & 0x0f,
        }
    }

    fn from_number(n: u8) -> Self {
        match n & 0x0f {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

/// Decoded header flag word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsFlags {
    pub response: bool,
    pub opcode: Opcode,
    pub authoritative: bool,
    pub truncated: bool,
    pub recursion_desired: bool,
    pub recursion_available: bool,
    pub rcode: Rcode,
}

impl DnsFlags {
    /// Flags for a recursive client query.
    pub fn query() -> Self {
        Self {
            response: false,
            opcode: Opcode::Query,
            authoritative: false,
            truncated: false,
            recursion_desired: true,
            recursion_available: false,
            rcode: Rcode::NoError,
        }
    }

    /// Flags for a response to `q` with the given rcode.
    pub fn response_to(q: DnsFlags, authoritative: bool, rcode: Rcode) -> Self {
        Self {
            response: true,
            opcode: q.opcode,
            authoritative,
            truncated: false,
            recursion_desired: q.recursion_desired,
            recursion_available: true,
            rcode,
        }
    }

    fn encode(self) -> u16 {
        let mut w = 0u16;
        if self.response {
            w |= 0x8000;
        }
        w |= u16::from(self.opcode.number()) << 11;
        if self.authoritative {
            w |= 0x0400;
        }
        if self.truncated {
            w |= 0x0200;
        }
        if self.recursion_desired {
            w |= 0x0100;
        }
        if self.recursion_available {
            w |= 0x0080;
        }
        w |= u16::from(self.rcode.number());
        w
    }

    fn decode(w: u16) -> Self {
        Self {
            response: w & 0x8000 != 0,
            opcode: Opcode::from_number((w >> 11) as u8),
            authoritative: w & 0x0400 != 0,
            truncated: w & 0x0200 != 0,
            recursion_desired: w & 0x0100 != 0,
            recursion_available: w & 0x0080 != 0,
            rcode: Rcode::from_number(w as u8),
        }
    }
}

/// One question-section entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsQuestion {
    pub name: DnsName,
    pub rtype: RecordType,
    pub class: DnsClass,
}

impl DnsQuestion {
    pub fn a(name: DnsName) -> Self {
        Self {
            name,
            rtype: RecordType::A,
            class: DnsClass::In,
        }
    }
}

/// Record data, typed for the types the reproduction manipulates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecordData {
    A(Ipv4Addr),
    Ns(DnsName),
    Cname(DnsName),
    Ptr(DnsName),
    Txt(Vec<String>),
    Soa {
        mname: DnsName,
        rname: DnsName,
        serial: u32,
        refresh: u32,
        retry: u32,
        expire: u32,
        minimum: u32,
    },
    /// Unparsed rdata for types the codec keeps opaque.
    Opaque(Vec<u8>),
}

impl RecordData {
    pub fn rtype(&self) -> Option<RecordType> {
        Some(match self {
            RecordData::A(_) => RecordType::A,
            RecordData::Ns(_) => RecordType::Ns,
            RecordData::Cname(_) => RecordType::Cname,
            RecordData::Ptr(_) => RecordType::Ptr,
            RecordData::Txt(_) => RecordType::Txt,
            RecordData::Soa { .. } => RecordType::Soa,
            RecordData::Opaque(_) => return None,
        })
    }
}

/// A resource record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsRecord {
    pub name: DnsName,
    pub rtype: RecordType,
    pub class: DnsClass,
    pub ttl: u32,
    pub data: RecordData,
}

impl DnsRecord {
    pub fn a(name: DnsName, ttl: u32, addr: Ipv4Addr) -> Self {
        Self {
            name,
            rtype: RecordType::A,
            class: DnsClass::In,
            ttl,
            data: RecordData::A(addr),
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        out.extend_from_slice(&self.rtype.number().to_be_bytes());
        out.extend_from_slice(&self.class.number().to_be_bytes());
        out.extend_from_slice(&self.ttl.to_be_bytes());
        let mut rdata = Vec::new();
        match &self.data {
            RecordData::A(addr) => rdata.extend_from_slice(&addr.octets()),
            RecordData::Ns(n) | RecordData::Cname(n) | RecordData::Ptr(n) => n.encode(&mut rdata),
            RecordData::Txt(strings) => {
                for s in strings {
                    let bytes = s.as_bytes();
                    let take = bytes.len().min(255);
                    rdata.push(take as u8);
                    rdata.extend_from_slice(&bytes[..take]);
                }
            }
            RecordData::Soa {
                mname,
                rname,
                serial,
                refresh,
                retry,
                expire,
                minimum,
            } => {
                mname.encode(&mut rdata);
                rname.encode(&mut rdata);
                rdata.extend_from_slice(&serial.to_be_bytes());
                rdata.extend_from_slice(&refresh.to_be_bytes());
                rdata.extend_from_slice(&retry.to_be_bytes());
                rdata.extend_from_slice(&expire.to_be_bytes());
                rdata.extend_from_slice(&minimum.to_be_bytes());
            }
            RecordData::Opaque(bytes) => rdata.extend_from_slice(bytes),
        }
        out.extend_from_slice(&(rdata.len().min(u16::MAX as usize) as u16).to_be_bytes());
        out.extend_from_slice(&rdata);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let name = DnsName::decode(r)?;
        let rtype = RecordType::from_number(r.u16("DNS record type")?);
        let class = DnsClass::from_number(r.u16("DNS record class")?);
        let ttl = r.u32("DNS record TTL")?;
        let rdlen = r.u16("DNS rdata length")? as usize;
        let rdata_start = r.position();
        let data = match rtype {
            RecordType::A => {
                if rdlen != 4 {
                    return Err(DecodeError::malformed("A rdata", format!("length {rdlen}")));
                }
                RecordData::A(Ipv4Addr::from(r.u32("A rdata")?))
            }
            RecordType::Ns => RecordData::Ns(DnsName::decode(r)?),
            RecordType::Cname => RecordData::Cname(DnsName::decode(r)?),
            RecordType::Ptr => RecordData::Ptr(DnsName::decode(r)?),
            RecordType::Txt => {
                let mut strings = Vec::new();
                while r.position() < rdata_start + rdlen {
                    let len = usize::from(r.u8("TXT string length")?);
                    let raw = r.bytes("TXT string", len)?;
                    strings.push(String::from_utf8_lossy(raw).into_owned());
                }
                RecordData::Txt(strings)
            }
            RecordType::Soa => {
                let mname = DnsName::decode(r)?;
                let rname = DnsName::decode(r)?;
                RecordData::Soa {
                    mname,
                    rname,
                    serial: r.u32("SOA serial")?,
                    refresh: r.u32("SOA refresh")?,
                    retry: r.u32("SOA retry")?,
                    expire: r.u32("SOA expire")?,
                    minimum: r.u32("SOA minimum")?,
                }
            }
            RecordType::Aaaa | RecordType::Other(_) => {
                RecordData::Opaque(r.bytes("opaque rdata", rdlen)?.to_vec())
            }
        };
        if r.position() != rdata_start + rdlen {
            return Err(DecodeError::malformed(
                "DNS rdata",
                format!(
                    "declared {rdlen} bytes, consumed {}",
                    r.position() - rdata_start
                ),
            ));
        }
        Ok(Self {
            name,
            rtype,
            class,
            ttl,
            data,
        })
    }
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsMessage {
    pub id: u16,
    pub flags: DnsFlags,
    pub questions: Vec<DnsQuestion>,
    pub answers: Vec<DnsRecord>,
    pub authorities: Vec<DnsRecord>,
    pub additionals: Vec<DnsRecord>,
}

impl DnsMessage {
    /// A recursive A query for `name`.
    pub fn query(id: u16, name: DnsName) -> Self {
        Self {
            id,
            flags: DnsFlags::query(),
            questions: vec![DnsQuestion::a(name)],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// A response echoing `query`'s id and question.
    pub fn response(
        query: &DnsMessage,
        authoritative: bool,
        rcode: Rcode,
        answers: Vec<DnsRecord>,
    ) -> Self {
        Self {
            id: query.id,
            flags: DnsFlags::response_to(query.flags, authoritative, rcode),
            questions: query.questions.clone(),
            answers,
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// The first question's name, if any (the QNAME observers sniff).
    pub fn qname(&self) -> Option<&DnsName> {
        self.questions.first().map(|q| &q.name)
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&self.id.to_be_bytes());
        out.extend_from_slice(&self.flags.encode().to_be_bytes());
        out.extend_from_slice(&(self.questions.len() as u16).to_be_bytes());
        out.extend_from_slice(&(self.answers.len() as u16).to_be_bytes());
        out.extend_from_slice(&(self.authorities.len() as u16).to_be_bytes());
        out.extend_from_slice(&(self.additionals.len() as u16).to_be_bytes());
        for q in &self.questions {
            q.name.encode(&mut out);
            out.extend_from_slice(&q.rtype.number().to_be_bytes());
            out.extend_from_slice(&q.class.number().to_be_bytes());
        }
        for rr in self
            .answers
            .iter()
            .chain(&self.authorities)
            .chain(&self.additionals)
        {
            rr.encode(&mut out);
        }
        out
    }

    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        let id = r.u16("DNS id")?;
        let flags = DnsFlags::decode(r.u16("DNS flags")?);
        let qdcount = r.u16("DNS qdcount")?;
        let ancount = r.u16("DNS ancount")?;
        let nscount = r.u16("DNS nscount")?;
        let arcount = r.u16("DNS arcount")?;
        if qdcount > 64 || ancount > 512 || nscount > 512 || arcount > 512 {
            return Err(DecodeError::malformed(
                "DNS counts",
                format!("implausible counts {qdcount}/{ancount}/{nscount}/{arcount}"),
            ));
        }
        let mut questions = Vec::with_capacity(qdcount as usize);
        for _ in 0..qdcount {
            let name = DnsName::decode(&mut r)?;
            let rtype = RecordType::from_number(r.u16("DNS question type")?);
            let class = DnsClass::from_number(r.u16("DNS question class")?);
            questions.push(DnsQuestion { name, rtype, class });
        }
        let section = |count: u16, r: &mut Reader<'_>| -> Result<Vec<DnsRecord>, DecodeError> {
            let mut out = Vec::with_capacity(count as usize);
            for _ in 0..count {
                out.push(DnsRecord::decode(r)?);
            }
            Ok(out)
        };
        let answers = section(ancount, &mut r)?;
        let authorities = section(nscount, &mut r)?;
        let additionals = section(arcount, &mut r)?;
        Ok(Self {
            id,
            flags,
            questions,
            answers,
            authorities,
            additionals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DnsName {
        DnsName::parse(s).unwrap()
    }

    #[test]
    fn query_round_trips() {
        let q = DnsMessage::query(0xabcd, name("abc123.www.experiment.example"));
        let back = DnsMessage::decode(&q.encode()).unwrap();
        assert_eq!(back, q);
        assert_eq!(
            back.qname().unwrap().as_str(),
            "abc123.www.experiment.example"
        );
        assert!(!back.flags.response);
        assert!(back.flags.recursion_desired);
    }

    #[test]
    fn response_round_trips_with_answers() {
        let q = DnsMessage::query(7, name("x.example"));
        let resp = DnsMessage::response(
            &q,
            true,
            Rcode::NoError,
            vec![DnsRecord::a(
                name("x.example"),
                3600,
                Ipv4Addr::new(192, 0, 2, 1),
            )],
        );
        let back = DnsMessage::decode(&resp.encode()).unwrap();
        assert_eq!(back, resp);
        assert!(back.flags.response);
        assert!(back.flags.authoritative);
        assert_eq!(back.answers[0].ttl, 3600);
    }

    #[test]
    fn all_record_types_round_trip() {
        let q = DnsMessage::query(1, name("zone.example"));
        let mut resp = DnsMessage::response(&q, true, Rcode::NoError, Vec::new());
        resp.answers = vec![
            DnsRecord::a(name("a.zone.example"), 60, Ipv4Addr::new(1, 2, 3, 4)),
            DnsRecord {
                name: name("zone.example"),
                rtype: RecordType::Ns,
                class: DnsClass::In,
                ttl: 300,
                data: RecordData::Ns(name("ns1.zone.example")),
            },
            DnsRecord {
                name: name("alias.zone.example"),
                rtype: RecordType::Cname,
                class: DnsClass::In,
                ttl: 300,
                data: RecordData::Cname(name("a.zone.example")),
            },
            DnsRecord {
                name: name("zone.example"),
                rtype: RecordType::Txt,
                class: DnsClass::In,
                ttl: 120,
                data: RecordData::Txt(vec!["v=experiment".into(), "contact=ops".into()]),
            },
        ];
        resp.authorities = vec![DnsRecord {
            name: name("zone.example"),
            rtype: RecordType::Soa,
            class: DnsClass::In,
            ttl: 900,
            data: RecordData::Soa {
                mname: name("ns1.zone.example"),
                rname: name("hostmaster.zone.example"),
                #[allow(clippy::inconsistent_digit_grouping)] // YYYY_MM_DD serial
                serial: 2024_03_01,
                refresh: 7200,
                retry: 3600,
                expire: 1_209_600,
                minimum: 300,
            },
        }];
        let back = DnsMessage::decode(&resp.encode()).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn opaque_record_preserved() {
        let rr = DnsRecord {
            name: name("x.example"),
            rtype: RecordType::Other(99),
            class: DnsClass::In,
            ttl: 1,
            data: RecordData::Opaque(vec![1, 2, 3]),
        };
        let q = DnsMessage::query(2, name("x.example"));
        let mut resp = DnsMessage::response(&q, false, Rcode::NoError, vec![rr]);
        resp.additionals = resp.answers.clone();
        let back = DnsMessage::decode(&resp.encode()).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn rejects_implausible_counts() {
        let q = DnsMessage::query(3, name("y.example"));
        let mut bytes = q.encode();
        bytes[4..6].copy_from_slice(&9999u16.to_be_bytes());
        assert!(matches!(
            DnsMessage::decode(&bytes),
            Err(DecodeError::Malformed { .. })
        ));
    }

    #[test]
    fn rejects_rdata_length_mismatch() {
        let q = DnsMessage::query(4, name("z.example"));
        let resp = DnsMessage::response(
            &q,
            true,
            Rcode::NoError,
            vec![DnsRecord::a(
                name("z.example"),
                60,
                Ipv4Addr::new(9, 9, 9, 9),
            )],
        );
        let mut bytes = resp.encode();
        // Corrupt the A record's rdlength (last 6 bytes are len(2)+addr(4)).
        let len_at = bytes.len() - 6;
        bytes[len_at..len_at + 2].copy_from_slice(&3u16.to_be_bytes());
        assert!(DnsMessage::decode(&bytes).is_err());
    }

    #[test]
    fn nxdomain_flags() {
        let q = DnsMessage::query(5, name("missing.example"));
        let resp = DnsMessage::response(&q, true, Rcode::NxDomain, Vec::new());
        let back = DnsMessage::decode(&resp.encode()).unwrap();
        assert_eq!(back.flags.rcode, Rcode::NxDomain);
        assert!(back.answers.is_empty());
    }

    #[test]
    fn decodes_response_with_compressed_answer_names() {
        // Hand-build a response whose answer name is a pointer to the
        // question name, as real resolvers emit.
        let qname = name("decoy.www.experiment.example");
        let q = DnsMessage::query(0x1111, qname.clone());
        let mut bytes = q.encode();
        // ancount = 1
        bytes[6..8].copy_from_slice(&1u16.to_be_bytes());
        // answer: pointer to offset 12 (question name), type A, class IN,
        // ttl 3600, rdlen 4, addr.
        bytes.extend_from_slice(&[0xc0, 12]);
        bytes.extend_from_slice(&1u16.to_be_bytes());
        bytes.extend_from_slice(&1u16.to_be_bytes());
        bytes.extend_from_slice(&3600u32.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&[203, 0, 113, 7]);
        let back = DnsMessage::decode(&bytes).unwrap();
        assert_eq!(back.answers.len(), 1);
        assert_eq!(back.answers[0].name, qname);
        assert_eq!(
            back.answers[0].data,
            RecordData::A(Ipv4Addr::new(203, 0, 113, 7))
        );
    }
}
