//! [`DecodedView`]: the parse-once memo attached to each in-flight packet.
//!
//! The paper's observers are *on-path*: every router hop of a 5–15-hop
//! route may carry a DPI tap that wants the packet's clear-text application
//! field (DNS QNAME, HTTP `Host`, TLS SNI). Re-decoding the payload at
//! every hop multiplies the (identical) parse work by the route length.
//! A `DecodedView` rides along with the packet through the event queue:
//! the first tap that asks pays for one full extraction, every later hop
//! reads the cached result.
//!
//! ## The parse-once contract
//!
//! * Extraction is a **pure function of the packet bytes** — never of tap
//!   configuration. The view caches the *maximal* extraction (whatever any
//!   of the three protocols yields); per-tap concerns (watch flags, zone
//!   filters, destination filters) are applied by the tap *after* reading
//!   the cached field. This is what makes sharing across taps with
//!   different configs sound.
//! * Payload bytes are immutable in flight ([`crate::SharedBytes`]), so a
//!   cached view can never go stale. Anything that changes the payload
//!   (e.g. an ICMP rewrite) constructs a new packet and a new view.
//! * Taps receive the view read-only and must not substitute their own
//!   parse for watched protocols; `shadow-bench`'s proptests pin the cached
//!   extraction byte-for-byte to a direct re-parse.

use crate::dns::{DnsMessage, DnsName};
use crate::http::HttpRequest;
use crate::ipv4::{IpProtocol, Ipv4Packet};
use crate::tcp::TcpSegment;
use crate::tls;
use crate::udp::UdpDatagram;
use std::sync::OnceLock;

/// Which application protocol a field was extracted from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppProtocol {
    /// UDP/53 query QNAME.
    Dns,
    /// TCP/80 request `Host` header.
    Http,
    /// TCP/443 ClientHello SNI.
    Tls,
}

/// The clear-text application-layer field a traffic observer shadows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppField {
    pub name: DnsName,
    pub protocol: AppProtocol,
}

/// Lazily-computed, shareable application-layer extraction for one packet.
///
/// Cheap to construct (no parsing happens until [`DecodedView::app_field`]
/// is first called); intended to be wrapped in an `Arc` and cloned along
/// with the packet through duplications and hops.
#[derive(Debug, Default)]
pub struct DecodedView {
    field: OnceLock<Option<AppField>>,
}

impl DecodedView {
    pub fn new() -> Self {
        Self::default()
    }

    /// The packet's application field, decoding on first use.
    ///
    /// `pkt` must be the packet this view rides with; the engine maintains
    /// that pairing. (The view deliberately does not store the packet —
    /// the packet already owns its payload, and duplicated packets share
    /// both payload and view.)
    pub fn app_field(&self, pkt: &Ipv4Packet) -> Option<&AppField> {
        self.field.get_or_init(|| extract_app_field(pkt)).as_ref()
    }

    /// Whether the extraction has already run (test/bench introspection).
    pub fn is_decoded(&self) -> bool {
        self.field.get().is_some()
    }
}

/// The reference extraction: decode `pkt`'s application field directly,
/// with no memoization. [`DecodedView`] caches exactly this function;
/// equivalence is pinned by proptests in `shadow-bench`.
pub fn extract_app_field(pkt: &Ipv4Packet) -> Option<AppField> {
    match pkt.header.protocol {
        IpProtocol::Udp => {
            let dg = UdpDatagram::decode_shared(&pkt.payload).ok()?;
            if dg.dst_port != 53 {
                return None;
            }
            let msg = DnsMessage::decode(&dg.payload).ok()?;
            if msg.flags.response {
                return None;
            }
            msg.qname().cloned().map(|name| AppField {
                name,
                protocol: AppProtocol::Dns,
            })
        }
        IpProtocol::Tcp => {
            let seg = TcpSegment::decode_shared(&pkt.payload).ok()?;
            if seg.payload.is_empty() {
                return None;
            }
            if seg.dst_port == 80 {
                let req = HttpRequest::decode(&seg.payload).ok()?;
                let host = req.host()?;
                DnsName::parse(host).ok().map(|name| AppField {
                    name,
                    protocol: AppProtocol::Http,
                })
            } else if seg.dst_port == 443 {
                let sni = tls::sniff_sni(&seg.payload)?;
                DnsName::parse(&sni).ok().map(|name| AppField {
                    name,
                    protocol: AppProtocol::Tls,
                })
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::DEFAULT_TTL;
    use crate::tcp::TcpFlags;
    use std::net::Ipv4Addr;

    fn wrap(proto: IpProtocol, payload: Vec<u8>) -> Ipv4Packet {
        Ipv4Packet::new(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            proto,
            DEFAULT_TTL,
            7,
            payload,
        )
    }

    #[test]
    fn dns_query_extracts_once_and_caches() {
        let q = DnsMessage::query(1, DnsName::parse("a.example").unwrap());
        let pkt = wrap(
            IpProtocol::Udp,
            UdpDatagram::new(5000, 53, q.encode()).encode(),
        );
        let view = DecodedView::new();
        assert!(!view.is_decoded());
        let field = view.app_field(&pkt).cloned().expect("qname extracted");
        assert_eq!(field.protocol, AppProtocol::Dns);
        assert_eq!(field.name.as_str(), "a.example");
        assert!(view.is_decoded());
        // Second call returns the cached value.
        assert_eq!(view.app_field(&pkt), Some(&field));
    }

    #[test]
    fn http_host_and_tls_sni_extract() {
        let req = HttpRequest::get("h.example", "/");
        let http = wrap(
            IpProtocol::Tcp,
            TcpSegment::new(1, 80, 1, 1, TcpFlags::PSH_ACK, req.encode()).encode(),
        );
        let f = DecodedView::new().app_field(&http).cloned().unwrap();
        assert_eq!(f.protocol, AppProtocol::Http);
        assert_eq!(f.name.as_str(), "h.example");

        let ch = tls::ClientHello::with_sni("t.example", [0u8; 32]);
        let tls_pkt = wrap(
            IpProtocol::Tcp,
            TcpSegment::new(1, 443, 1, 1, TcpFlags::PSH_ACK, ch.encode_record()).encode(),
        );
        let f = DecodedView::new().app_field(&tls_pkt).cloned().unwrap();
        assert_eq!(f.protocol, AppProtocol::Tls);
        assert_eq!(f.name.as_str(), "t.example");
    }

    #[test]
    fn non_watched_traffic_yields_none() {
        // DNS response, wrong ports, garbage, ICMP: all cache `None`.
        let mut resp = DnsMessage::query(2, DnsName::parse("r.example").unwrap());
        resp.flags.response = true;
        let pkt = wrap(
            IpProtocol::Udp,
            UdpDatagram::new(53, 53, resp.encode()).encode(),
        );
        assert!(DecodedView::new().app_field(&pkt).is_none());

        let off_port = wrap(
            IpProtocol::Tcp,
            TcpSegment::new(1, 8080, 1, 1, TcpFlags::PSH_ACK, b"x".to_vec()).encode(),
        );
        assert!(DecodedView::new().app_field(&off_port).is_none());

        let garbage = wrap(IpProtocol::Udp, vec![1, 2, 3]);
        let view = DecodedView::new();
        assert!(view.app_field(&garbage).is_none());
        assert!(view.is_decoded(), "failed extraction is cached too");
    }

    #[test]
    fn matches_reference_extraction() {
        let q = DnsMessage::query(9, DnsName::parse("eq.example").unwrap());
        let pkt = wrap(
            IpProtocol::Udp,
            UdpDatagram::new(5000, 53, q.encode()).encode(),
        );
        assert_eq!(
            DecodedView::new().app_field(&pkt).cloned(),
            extract_app_field(&pkt)
        );
    }
}
