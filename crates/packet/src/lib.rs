//! # shadow-packet
//!
//! From-scratch, byte-accurate wire-format codecs for every protocol the
//! paper's decoys and unsolicited requests travel over:
//!
//! * [`ipv4`] — IPv4 header with Internet checksum, TTL semantics;
//! * [`udp`] — UDP datagrams;
//! * [`tcp`] — TCP segments (flag/sequence level, enough for handshakes and
//!   payload delivery in the simulator);
//! * [`icmp`] — ICMP Echo and Time Exceeded (the Phase-II traceroute signal);
//! * [`dns`] — full DNS message codec with name-compression decoding;
//! * [`doq`] — a model of encrypted DNS transport (the §6 mitigation
//!   ablation);
//! * [`http`] — HTTP/1.1 request/response parsing and serialization;
//! * [`tls`] — TLS record layer + ClientHello with the Server Name
//!   Indication extension (the clear-text field decoys embed).
//!
//! Every codec is a pure function of bytes: no I/O, no globals. Decoders
//! return structured [`DecodeError`]s rather than panicking on hostile
//! input, and every encoder/decoder pair round-trips (enforced by unit and
//! property tests).
//!
//! Two supporting pieces serve the simulator's zero-copy fast path:
//! [`bytes::SharedBytes`], the `Arc`-backed payload buffer that makes
//! packet duplication and sub-slicing free, and [`view::DecodedView`], the
//! parse-once memo that lets every router-hop tap share one application-
//! layer extraction per packet instead of re-decoding at each hop.

pub mod bytes;
pub mod cursor;
pub mod dns;
pub mod doq;
pub mod error;
pub mod http;
pub mod icmp;
pub mod ipv4;
pub mod tcp;
pub mod tls;
pub mod udp;
pub mod view;

pub use bytes::SharedBytes;
pub use cursor::Reader;
pub use dns::{
    DnsClass, DnsFlags, DnsMessage, DnsName, DnsQuestion, DnsRecord, RecordData, RecordType,
};
pub use error::DecodeError;
pub use http::{HttpMethod, HttpRequest, HttpResponse};
pub use icmp::IcmpMessage;
pub use ipv4::{IpProtocol, Ipv4Header, Ipv4Packet};
pub use tcp::{TcpFlags, TcpSegment};
pub use tls::{ClientHello, TlsExtension, TlsRecord};
pub use udp::UdpDatagram;
pub use view::{extract_app_field, AppField, AppProtocol, DecodedView};
