//! Decode errors shared by all codecs in this crate.

use std::fmt;

/// Why a byte sequence failed to decode.
///
/// Decoders never panic on hostile input; every malformed-packet path maps
/// to one of these variants with enough context to diagnose the failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Ran out of bytes while `what` still needed `needed` more.
    Truncated { what: &'static str, needed: usize },
    /// A length or version field is inconsistent with the data.
    Malformed { what: &'static str, detail: String },
    /// A checksum failed verification.
    BadChecksum { what: &'static str },
    /// A DNS name-compression pointer loops or points forward.
    CompressionLoop,
    /// A value is syntactically valid but unsupported by this codec.
    Unsupported { what: &'static str, value: u32 },
}

impl DecodeError {
    pub(crate) fn malformed(what: &'static str, detail: impl Into<String>) -> Self {
        DecodeError::Malformed {
            what,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { what, needed } => {
                write!(f, "truncated {what}: {needed} more byte(s) needed")
            }
            DecodeError::Malformed { what, detail } => write!(f, "malformed {what}: {detail}"),
            DecodeError::BadChecksum { what } => write!(f, "bad checksum in {what}"),
            DecodeError::CompressionLoop => write!(f, "DNS name compression loop"),
            DecodeError::Unsupported { what, value } => {
                write!(f, "unsupported {what} value {value}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}
