//! ICMP codec: Echo (used by connectivity pre-flight checks) and Time
//! Exceeded, the signal Phase II of the methodology relies on — a router
//! that decrements a decoy's TTL to zero sends Time Exceeded back to the
//! vantage point, exposing the router's (possible observer's) address.

use crate::cursor::Reader;
use crate::error::DecodeError;
use crate::ipv4::{internet_checksum, Ipv4Header, IPV4_HEADER_LEN};
use serde::{Deserialize, Serialize};

/// How many bytes of the original datagram a Time Exceeded message quotes:
/// the IP header plus 8 bytes, per RFC 792. Those 8 bytes cover the UDP
/// header or the TCP ports/sequence — enough for the VP to match the expired
/// probe to the decoy it sent.
pub const QUOTED_PAYLOAD_LEN: usize = 8;

/// Decoded ICMP message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IcmpMessage {
    /// Echo request (type 8).
    EchoRequest {
        identifier: u16,
        sequence: u16,
        payload: Vec<u8>,
    },
    /// Echo reply (type 0).
    EchoReply {
        identifier: u16,
        sequence: u16,
        payload: Vec<u8>,
    },
    /// Time Exceeded in transit (type 11, code 0): quotes the original IP
    /// header and the first 8 payload bytes.
    TimeExceeded {
        original_header: Ipv4Header,
        quoted_payload: Vec<u8>,
    },
    /// Destination unreachable (type 3), with code (e.g. 3 = port).
    DestinationUnreachable {
        code: u8,
        original_header: Ipv4Header,
        quoted_payload: Vec<u8>,
    },
}

impl IcmpMessage {
    /// Build the Time Exceeded a router emits when `expired` reaches TTL 0.
    /// The quoted header preserves the (already decremented) TTL as real
    /// routers do; only the first 8 payload bytes are included.
    pub fn time_exceeded(expired_header: Ipv4Header, expired_payload: &[u8]) -> Self {
        IcmpMessage::TimeExceeded {
            original_header: expired_header,
            quoted_payload: expired_payload[..expired_payload.len().min(QUOTED_PAYLOAD_LEN)]
                .to_vec(),
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            IcmpMessage::EchoRequest {
                identifier,
                sequence,
                payload,
            } => {
                out.push(8);
                out.push(0);
                out.extend_from_slice(&[0, 0]); // checksum placeholder
                out.extend_from_slice(&identifier.to_be_bytes());
                out.extend_from_slice(&sequence.to_be_bytes());
                out.extend_from_slice(payload);
            }
            IcmpMessage::EchoReply {
                identifier,
                sequence,
                payload,
            } => {
                out.push(0);
                out.push(0);
                out.extend_from_slice(&[0, 0]);
                out.extend_from_slice(&identifier.to_be_bytes());
                out.extend_from_slice(&sequence.to_be_bytes());
                out.extend_from_slice(payload);
            }
            IcmpMessage::TimeExceeded {
                original_header,
                quoted_payload,
            } => {
                out.push(11);
                out.push(0);
                out.extend_from_slice(&[0, 0]);
                out.extend_from_slice(&[0, 0, 0, 0]); // unused
                out.extend_from_slice(&original_header.encode());
                out.extend_from_slice(quoted_payload);
            }
            IcmpMessage::DestinationUnreachable {
                code,
                original_header,
                quoted_payload,
            } => {
                out.push(3);
                out.push(*code);
                out.extend_from_slice(&[0, 0]);
                out.extend_from_slice(&[0, 0, 0, 0]);
                out.extend_from_slice(&original_header.encode());
                out.extend_from_slice(quoted_payload);
            }
        }
        let sum = internet_checksum(&out);
        out[2..4].copy_from_slice(&sum.to_be_bytes());
        out
    }

    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        if buf.len() >= 4 && checksum_nonzero(buf) {
            return Err(DecodeError::BadChecksum {
                what: "ICMP message",
            });
        }
        let mut r = Reader::new(buf);
        let ty = r.u8("ICMP type")?;
        let code = r.u8("ICMP code")?;
        let _checksum = r.u16("ICMP checksum")?;
        match (ty, code) {
            (8, 0) | (0, 0) => {
                let identifier = r.u16("ICMP identifier")?;
                let sequence = r.u16("ICMP sequence")?;
                let payload = r.rest().to_vec();
                Ok(if ty == 8 {
                    IcmpMessage::EchoRequest {
                        identifier,
                        sequence,
                        payload,
                    }
                } else {
                    IcmpMessage::EchoReply {
                        identifier,
                        sequence,
                        payload,
                    }
                })
            }
            (11, 0) | (3, _) => {
                r.skip("ICMP unused", 4)?;
                let original_header = Ipv4Header::decode(&mut r)?;
                let quoted_payload = r.rest().to_vec();
                if quoted_payload.len() > QUOTED_PAYLOAD_LEN {
                    return Err(DecodeError::malformed(
                        "ICMP quoted payload",
                        format!("{} bytes > {QUOTED_PAYLOAD_LEN}", quoted_payload.len()),
                    ));
                }
                Ok(if ty == 11 {
                    IcmpMessage::TimeExceeded {
                        original_header,
                        quoted_payload,
                    }
                } else {
                    IcmpMessage::DestinationUnreachable {
                        code,
                        original_header,
                        quoted_payload,
                    }
                })
            }
            _ => Err(DecodeError::Unsupported {
                what: "ICMP type/code",
                value: (u32::from(ty) << 8) | u32::from(code),
            }),
        }
    }

    /// For error messages: the header of the datagram that triggered them.
    pub fn original_header(&self) -> Option<&Ipv4Header> {
        match self {
            IcmpMessage::TimeExceeded {
                original_header, ..
            }
            | IcmpMessage::DestinationUnreachable {
                original_header, ..
            } => Some(original_header),
            _ => None,
        }
    }
}

fn checksum_nonzero(buf: &[u8]) -> bool {
    // A buffer with a correct embedded checksum verifies to zero.
    internet_checksum(buf) != 0
}

/// Sanity guard: a Time Exceeded quote never includes the full transport
/// payload, so honeypot-side code must match probes by the quoted ports and
/// the IP identification field, not by payload content.
pub fn quoted_transport_bytes(msg: &IcmpMessage) -> Option<&[u8]> {
    match msg {
        IcmpMessage::TimeExceeded { quoted_payload, .. }
        | IcmpMessage::DestinationUnreachable { quoted_payload, .. } => Some(quoted_payload),
        _ => None,
    }
}

/// Length of the fixed ICMP error preamble before the quoted IP header.
pub const ICMP_ERROR_PREFIX_LEN: usize = 8;

/// Maximum encoded size of a Time Exceeded message.
pub const MAX_TIME_EXCEEDED_LEN: usize =
    ICMP_ERROR_PREFIX_LEN + IPV4_HEADER_LEN + QUOTED_PAYLOAD_LEN;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::IpProtocol;
    use std::net::Ipv4Addr;

    fn sample_header() -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr::new(100, 1, 2, 3),
            Ipv4Addr::new(77, 88, 8, 8),
            IpProtocol::Udp,
            0,
            0xbeef,
            64,
        )
    }

    #[test]
    fn echo_round_trips() {
        let m = IcmpMessage::EchoRequest {
            identifier: 77,
            sequence: 3,
            payload: b"ping".to_vec(),
        };
        assert_eq!(IcmpMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn time_exceeded_round_trips() {
        let m = IcmpMessage::time_exceeded(sample_header(), &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let bytes = m.encode();
        assert!(bytes.len() <= MAX_TIME_EXCEEDED_LEN);
        let back = IcmpMessage::decode(&bytes).unwrap();
        match &back {
            IcmpMessage::TimeExceeded {
                original_header,
                quoted_payload,
            } => {
                assert_eq!(*original_header, sample_header());
                assert_eq!(quoted_payload, &[1, 2, 3, 4, 5, 6, 7, 8]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quote_is_limited_to_eight_bytes() {
        let m = IcmpMessage::time_exceeded(sample_header(), &[0xaa; 100]);
        match &m {
            IcmpMessage::TimeExceeded { quoted_payload, .. } => {
                assert_eq!(quoted_payload.len(), QUOTED_PAYLOAD_LEN)
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn corrupted_checksum_detected() {
        let m = IcmpMessage::EchoReply {
            identifier: 1,
            sequence: 2,
            payload: b"pong".to_vec(),
        };
        let mut bytes = m.encode();
        bytes[5] ^= 0xff;
        assert_eq!(
            IcmpMessage::decode(&bytes),
            Err(DecodeError::BadChecksum {
                what: "ICMP message"
            })
        );
    }

    #[test]
    fn destination_unreachable_round_trips() {
        let m = IcmpMessage::DestinationUnreachable {
            code: 3,
            original_header: sample_header(),
            quoted_payload: vec![9, 9, 9, 9],
        };
        assert_eq!(IcmpMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn unknown_type_rejected() {
        let mut bytes = IcmpMessage::EchoRequest {
            identifier: 0,
            sequence: 0,
            payload: Vec::new(),
        }
        .encode();
        bytes[0] = 42;
        // Re-fix checksum so the type check is what fails.
        bytes[2..4].copy_from_slice(&[0, 0]);
        let sum = internet_checksum(&bytes);
        bytes[2..4].copy_from_slice(&sum.to_be_bytes());
        assert!(matches!(
            IcmpMessage::decode(&bytes),
            Err(DecodeError::Unsupported { .. })
        ));
    }

    #[test]
    fn original_header_accessor() {
        let m = IcmpMessage::time_exceeded(sample_header(), &[]);
        assert_eq!(m.original_header(), Some(&sample_header()));
        let e = IcmpMessage::EchoRequest {
            identifier: 0,
            sequence: 0,
            payload: vec![],
        };
        assert_eq!(e.original_header(), None);
    }
}
