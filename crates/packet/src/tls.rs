//! TLS record layer and ClientHello codec.
//!
//! The decoy we care about is a ClientHello whose Server Name Indication
//! extension (RFC 6066) carries the experiment domain in clear text — the
//! exact field the paper shows on-path observers extracting. Handshake
//! completion/encryption is out of scope: the honeypot answers with a fatal
//! alert after logging the SNI, mirroring a sensor more than a real server.

use crate::cursor::Reader;
use crate::error::DecodeError;
use serde::{Deserialize, Serialize};

/// TLS record content types used here.
pub const CONTENT_TYPE_HANDSHAKE: u8 = 22;
pub const CONTENT_TYPE_ALERT: u8 = 21;

/// Handshake message type for ClientHello.
pub const HANDSHAKE_CLIENT_HELLO: u8 = 1;

/// The legacy record version emitted (TLS 1.0 in record layer, as real
/// clients do) and the ClientHello's legacy_version (TLS 1.2).
pub const RECORD_VERSION: u16 = 0x0301;
pub const HELLO_VERSION: u16 = 0x0303;

/// Extension type codes.
pub const EXT_SERVER_NAME: u16 = 0;
pub const EXT_SUPPORTED_VERSIONS: u16 = 43;
pub const EXT_SUPPORTED_GROUPS: u16 = 10;
pub const EXT_SIGNATURE_ALGORITHMS: u16 = 13;
/// `encrypted_client_hello` (draft-ietf-tls-esni): the §6 mitigation that
/// hides the server name even from destination-side port mirrors.
pub const EXT_ECH: u16 = 0xfe0d;

/// A TLS record (one message per record; fragmentation unsupported).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlsRecord {
    pub content_type: u8,
    pub version: u16,
    pub payload: Vec<u8>,
}

impl TlsRecord {
    pub fn handshake(payload: Vec<u8>) -> Self {
        Self {
            content_type: CONTENT_TYPE_HANDSHAKE,
            version: RECORD_VERSION,
            payload,
        }
    }

    /// A fatal alert record (e.g. what the honeypot answers after logging).
    pub fn fatal_alert(description: u8) -> Self {
        Self {
            content_type: CONTENT_TYPE_ALERT,
            version: RECORD_VERSION,
            payload: vec![2, description],
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(5 + self.payload.len());
        out.push(self.content_type);
        out.extend_from_slice(&self.version.to_be_bytes());
        out.extend_from_slice(&(self.payload.len().min(u16::MAX as usize) as u16).to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        let content_type = r.u8("TLS content type")?;
        let version = r.u16("TLS record version")?;
        if version >> 8 != 0x03 {
            return Err(DecodeError::Unsupported {
                what: "TLS record version",
                value: u32::from(version),
            });
        }
        let len = r.u16("TLS record length")? as usize;
        let payload = r.bytes("TLS record payload", len)?.to_vec();
        Ok(Self {
            content_type,
            version,
            payload,
        })
    }
}

/// A parsed extension: type plus raw body (SNI gets dedicated accessors).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlsExtension {
    pub ext_type: u16,
    pub body: Vec<u8>,
}

impl TlsExtension {
    /// Build a server_name extension for `host` (host_name type 0).
    pub fn server_name(host: &str) -> Self {
        let name = host.as_bytes();
        let mut body = Vec::with_capacity(5 + name.len());
        body.extend_from_slice(&((name.len() + 3).min(u16::MAX as usize) as u16).to_be_bytes());
        body.push(0); // name_type: host_name
        body.extend_from_slice(&(name.len().min(u16::MAX as usize) as u16).to_be_bytes());
        body.extend_from_slice(name);
        Self {
            ext_type: EXT_SERVER_NAME,
            body,
        }
    }

    /// Extract the host_name if this is a well-formed SNI extension.
    pub fn sni_host(&self) -> Option<String> {
        if self.ext_type != EXT_SERVER_NAME {
            return None;
        }
        let mut r = Reader::new(&self.body);
        let list_len = r.u16("SNI list length").ok()? as usize;
        if list_len != r.remaining() {
            return None;
        }
        let name_type = r.u8("SNI name type").ok()?;
        if name_type != 0 {
            return None;
        }
        let name_len = r.u16("SNI name length").ok()? as usize;
        let raw = r.bytes("SNI host name", name_len).ok()?;
        std::str::from_utf8(raw).ok().map(str::to_string)
    }
}

/// A ClientHello handshake message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientHello {
    pub version: u16,
    pub random: [u8; 32],
    pub session_id: Vec<u8>,
    pub cipher_suites: Vec<u16>,
    pub extensions: Vec<TlsExtension>,
}

impl ClientHello {
    /// Build a ClientHello with Encrypted Client Hello: no clear-text SNI
    /// at all; the inner hello (carrying the real name) is opaque bytes.
    /// On-path observers — and passive destination-side sensors — see
    /// nothing to extract (the paper's §6 recommendation: "TLS 1.3 with
    /// ECH").
    pub fn with_ech(random: [u8; 32], ech_payload: Vec<u8>) -> Self {
        let mut hello = Self::with_sni("public.cover.example", random);
        // ECH replaces the real SNI with a cover name plus the encrypted
        // inner hello.
        for ext in &mut hello.extensions {
            if ext.ext_type == EXT_SERVER_NAME {
                *ext = TlsExtension::server_name("public.cover.example");
            }
        }
        hello.extensions.push(TlsExtension {
            ext_type: EXT_ECH,
            body: ech_payload,
        });
        hello
    }

    /// Whether this hello carries an ECH extension.
    pub fn has_ech(&self) -> bool {
        self.extensions.iter().any(|e| e.ext_type == EXT_ECH)
    }

    /// Build a realistic-looking ClientHello carrying `sni` — the TLS decoy.
    pub fn with_sni(sni: &str, random: [u8; 32]) -> Self {
        Self {
            version: HELLO_VERSION,
            random,
            session_id: Vec::new(),
            cipher_suites: vec![
                0x1301, // TLS_AES_128_GCM_SHA256
                0x1302, // TLS_AES_256_GCM_SHA384
                0x1303, // TLS_CHACHA20_POLY1305_SHA256
                0xc02f, // ECDHE-RSA-AES128-GCM-SHA256
                0xc030, // ECDHE-RSA-AES256-GCM-SHA384
            ],
            extensions: vec![
                TlsExtension::server_name(sni),
                TlsExtension {
                    ext_type: EXT_SUPPORTED_VERSIONS,
                    body: vec![2, 0x03, 0x04],
                },
                TlsExtension {
                    ext_type: EXT_SUPPORTED_GROUPS,
                    body: vec![0, 4, 0, 0x1d, 0, 0x17],
                },
            ],
        }
    }

    /// The SNI host, if present — what on-path observers extract.
    pub fn sni(&self) -> Option<String> {
        self.extensions.iter().find_map(TlsExtension::sni_host)
    }

    /// Encode as a handshake message body (without record framing).
    pub fn encode_handshake(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(128);
        body.extend_from_slice(&self.version.to_be_bytes());
        body.extend_from_slice(&self.random);
        body.push(self.session_id.len().min(32) as u8);
        body.extend_from_slice(&self.session_id[..self.session_id.len().min(32)]);
        body.extend_from_slice(
            &((self.cipher_suites.len() * 2).min(u16::MAX as usize) as u16).to_be_bytes(),
        );
        for cs in &self.cipher_suites {
            body.extend_from_slice(&cs.to_be_bytes());
        }
        body.push(1); // compression methods length
        body.push(0); // null compression
        let mut exts = Vec::new();
        for ext in &self.extensions {
            exts.extend_from_slice(&ext.ext_type.to_be_bytes());
            exts.extend_from_slice(&(ext.body.len().min(u16::MAX as usize) as u16).to_be_bytes());
            exts.extend_from_slice(&ext.body);
        }
        body.extend_from_slice(&(exts.len().min(u16::MAX as usize) as u16).to_be_bytes());
        body.extend_from_slice(&exts);

        let mut msg = Vec::with_capacity(4 + body.len());
        msg.push(HANDSHAKE_CLIENT_HELLO);
        let len = body.len().min(0xff_ffff) as u32;
        msg.extend_from_slice(&len.to_be_bytes()[1..]);
        msg.extend_from_slice(&body);
        msg
    }

    /// Encode as a complete TLS record ready for a TCP payload.
    pub fn encode_record(&self) -> Vec<u8> {
        TlsRecord::handshake(self.encode_handshake()).encode()
    }

    /// Decode a handshake message body (as produced by `encode_handshake`).
    pub fn decode_handshake(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        let msg_type = r.u8("TLS handshake type")?;
        if msg_type != HANDSHAKE_CLIENT_HELLO {
            return Err(DecodeError::Unsupported {
                what: "TLS handshake type",
                value: u32::from(msg_type),
            });
        }
        let len_bytes = r.bytes("TLS handshake length", 3)?;
        let declared = (usize::from(len_bytes[0]) << 16)
            | (usize::from(len_bytes[1]) << 8)
            | usize::from(len_bytes[2]);
        if declared != r.remaining() {
            return Err(DecodeError::malformed(
                "TLS handshake length",
                format!("declared {declared}, have {}", r.remaining()),
            ));
        }
        let version = r.u16("ClientHello version")?;
        let mut random = [0u8; 32];
        random.copy_from_slice(r.bytes("ClientHello random", 32)?);
        let sid_len = usize::from(r.u8("session id length")?);
        if sid_len > 32 {
            return Err(DecodeError::malformed(
                "session id",
                format!("length {sid_len} > 32"),
            ));
        }
        let session_id = r.bytes("session id", sid_len)?.to_vec();
        let cs_len = r.u16("cipher suites length")? as usize;
        if !cs_len.is_multiple_of(2) {
            return Err(DecodeError::malformed("cipher suites", "odd length"));
        }
        let mut cipher_suites = Vec::with_capacity(cs_len / 2);
        for _ in 0..cs_len / 2 {
            cipher_suites.push(r.u16("cipher suite")?);
        }
        let comp_len = usize::from(r.u8("compression methods length")?);
        r.skip("compression methods", comp_len)?;
        let mut extensions = Vec::new();
        if r.remaining() > 0 {
            let ext_total = r.u16("extensions length")? as usize;
            if ext_total != r.remaining() {
                return Err(DecodeError::malformed(
                    "extensions length",
                    format!("declared {ext_total}, have {}", r.remaining()),
                ));
            }
            while r.remaining() > 0 {
                let ext_type = r.u16("extension type")?;
                let ext_len = r.u16("extension length")? as usize;
                let body = r.bytes("extension body", ext_len)?.to_vec();
                extensions.push(TlsExtension { ext_type, body });
            }
        }
        Ok(Self {
            version,
            random,
            session_id,
            cipher_suites,
            extensions,
        })
    }

    /// Decode from a full TLS record.
    pub fn decode_record(buf: &[u8]) -> Result<Self, DecodeError> {
        let record = TlsRecord::decode(buf)?;
        if record.content_type != CONTENT_TYPE_HANDSHAKE {
            return Err(DecodeError::Unsupported {
                what: "TLS content type",
                value: u32::from(record.content_type),
            });
        }
        Self::decode_handshake(&record.payload)
    }
}

/// Extract the SNI from raw bytes if they are a ClientHello record — the
/// operation an on-path DPI observer performs on every TCP/443 payload.
pub fn sniff_sni(buf: &[u8]) -> Option<String> {
    ClientHello::decode_record(buf).ok()?.sni()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hello() -> ClientHello {
        ClientHello::with_sni("decoy1234.www.experiment.example", [7u8; 32])
    }

    #[test]
    fn record_round_trips() {
        let rec = TlsRecord::handshake(vec![1, 2, 3]);
        assert_eq!(TlsRecord::decode(&rec.encode()).unwrap(), rec);
    }

    #[test]
    fn client_hello_round_trips() {
        let ch = hello();
        let back = ClientHello::decode_record(&ch.encode_record()).unwrap();
        assert_eq!(back, ch);
    }

    #[test]
    fn sni_extraction() {
        let ch = hello();
        assert_eq!(
            ch.sni().as_deref(),
            Some("decoy1234.www.experiment.example")
        );
        assert_eq!(
            sniff_sni(&ch.encode_record()).as_deref(),
            Some("decoy1234.www.experiment.example")
        );
    }

    #[test]
    fn sniff_rejects_non_tls() {
        assert_eq!(sniff_sni(b"GET / HTTP/1.1\r\n\r\n"), None);
        assert_eq!(sniff_sni(&[]), None);
    }

    #[test]
    fn no_sni_yields_none() {
        let mut ch = hello();
        ch.extensions.retain(|e| e.ext_type != EXT_SERVER_NAME);
        assert_eq!(ch.sni(), None);
    }

    #[test]
    fn alert_record_shape() {
        let alert = TlsRecord::fatal_alert(40); // handshake_failure
        let back = TlsRecord::decode(&alert.encode()).unwrap();
        assert_eq!(back.content_type, CONTENT_TYPE_ALERT);
        assert_eq!(back.payload, vec![2, 40]);
    }

    #[test]
    fn handshake_length_mismatch_rejected() {
        let ch = hello();
        let mut msg = ch.encode_handshake();
        msg[3] = msg[3].wrapping_add(1); // corrupt the 24-bit length
        assert!(ClientHello::decode_handshake(&msg).is_err());
    }

    #[test]
    fn session_id_preserved() {
        let mut ch = hello();
        ch.session_id = vec![9; 16];
        let back = ClientHello::decode_record(&ch.encode_record()).unwrap();
        assert_eq!(back.session_id, vec![9; 16]);
    }

    #[test]
    fn malformed_sni_body_tolerated() {
        let ext = TlsExtension {
            ext_type: EXT_SERVER_NAME,
            body: vec![0xff, 0xff, 0x00],
        };
        assert_eq!(ext.sni_host(), None);
    }
}
