//! A model of encrypted DNS transport ("DoQ" here, after DNS-over-QUIC).
//!
//! The paper's discussion (§6) argues that encryption "prevents data from
//! being observed on the wire" but "does not mitigate data collection by
//! the destination server (especially for DNS), which decodes the message
//! and sees everything". To reproduce that ablation the workspace needs an
//! encrypted DNS channel: queries opaque to on-path DPI, transparent to the
//! terminating resolver.
//!
//! Real QUIC/TLS is out of scope (and beside the point — the simulator's
//! observers parse wire formats, so any framing they cannot parse models
//! encryption faithfully). The model: UDP on port [`DOQ_PORT`] carrying
//! `magic || keystream-XOR(dns-message)`. The keystream is derived from a
//! session nonce carried in the header — enough to make every encryption of
//! the same query byte-distinct, while both endpoints can decode.

use crate::dns::DnsMessage;
use crate::error::DecodeError;

/// The well-known encrypted-DNS port (DoQ's IANA allocation).
pub const DOQ_PORT: u16 = 853;

/// Frame magic ("encrypted DNS v1").
const MAGIC: [u8; 4] = *b"eDN1";

/// Derive the keystream byte at position `i` for nonce `n`.
fn keystream(nonce: u32, i: usize) -> u8 {
    let mut x = u64::from(nonce) ^ 0x9e37_79b9_7f4a_7c15 ^ (i as u64).wrapping_mul(0x517c_c1b7);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 29;
    x as u8
}

/// Encrypt a DNS message into a DoQ frame.
pub fn seal(msg: &DnsMessage, nonce: u32) -> Vec<u8> {
    let plain = msg.encode();
    let mut out = Vec::with_capacity(8 + plain.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&nonce.to_be_bytes());
    out.extend(
        plain
            .iter()
            .enumerate()
            .map(|(i, &b)| b ^ keystream(nonce, i)),
    );
    out
}

/// Decrypt a DoQ frame back into a DNS message.
pub fn open(frame: &[u8]) -> Result<DnsMessage, DecodeError> {
    if frame.len() < 8 {
        return Err(DecodeError::Truncated {
            what: "DoQ frame",
            needed: 8 - frame.len(),
        });
    }
    if frame[0..4] != MAGIC {
        return Err(DecodeError::malformed("DoQ frame", "bad magic"));
    }
    let nonce = u32::from_be_bytes([frame[4], frame[5], frame[6], frame[7]]);
    let plain: Vec<u8> = frame[8..]
        .iter()
        .enumerate()
        .map(|(i, &b)| b ^ keystream(nonce, i))
        .collect();
    DnsMessage::decode(&plain)
}

/// Quick check whether bytes look like a DoQ frame (what a DPI box could
/// tell — and all it can tell).
pub fn looks_encrypted(frame: &[u8]) -> bool {
    frame.len() >= 8 && frame[0..4] == MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dns::DnsName;

    fn query() -> DnsMessage {
        DnsMessage::query(7, DnsName::parse("secret.www.experiment.example").unwrap())
    }

    #[test]
    fn seals_and_opens() {
        let msg = query();
        let frame = seal(&msg, 0xdead_beef);
        assert!(looks_encrypted(&frame));
        assert_eq!(open(&frame).unwrap(), msg);
    }

    #[test]
    fn ciphertext_hides_the_query_name() {
        let msg = query();
        let frame = seal(&msg, 1);
        // The qname's label must not appear in the ciphertext.
        let needle = b"secret";
        let found = frame
            .windows(needle.len())
            .any(|w| w.eq_ignore_ascii_case(needle));
        assert!(!found, "plaintext label leaked into the frame");
        // And a DPI box trying to parse it as plain DNS fails.
        assert!(DnsMessage::decode(&frame[8..]).is_err());
    }

    #[test]
    fn distinct_nonces_distinct_ciphertexts() {
        let msg = query();
        assert_ne!(seal(&msg, 1), seal(&msg, 2));
        assert_eq!(open(&seal(&msg, 1)).unwrap(), open(&seal(&msg, 2)).unwrap());
    }

    #[test]
    fn rejects_garbage() {
        assert!(open(b"short").is_err());
        assert!(open(b"xxxxxxxxxxxx").is_err());
        let msg = query();
        let mut frame = seal(&msg, 9);
        // Corrupt a byte inside the encoded qname: decode must not return
        // the original message (it either errors or yields a different one).
        frame[20] ^= 0xff;
        assert_ne!(open(&frame).ok(), Some(msg));
        assert!(!looks_encrypted(b"eDN"));
    }
}
