//! HTTP/1.1 request/response codec.
//!
//! Decoys are `GET` requests whose `Host` header carries the experiment
//! domain; unsolicited probes captured by the honeypot are parsed with the
//! same codec, including the path-enumeration scans Section 5 analyzes.

use crate::error::DecodeError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Request methods the honeypot distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HttpMethod {
    Get,
    Head,
    Post,
    Options,
    Put,
    Delete,
}

impl HttpMethod {
    pub fn as_str(self) -> &'static str {
        match self {
            HttpMethod::Get => "GET",
            HttpMethod::Head => "HEAD",
            HttpMethod::Post => "POST",
            HttpMethod::Options => "OPTIONS",
            HttpMethod::Put => "PUT",
            HttpMethod::Delete => "DELETE",
        }
    }

    pub fn parse(s: &str) -> Result<Self, DecodeError> {
        Ok(match s {
            "GET" => HttpMethod::Get,
            "HEAD" => HttpMethod::Head,
            "POST" => HttpMethod::Post,
            "OPTIONS" => HttpMethod::Options,
            "PUT" => HttpMethod::Put,
            "DELETE" => HttpMethod::Delete,
            other => {
                return Err(DecodeError::malformed(
                    "HTTP method",
                    format!("unknown method {other:?}"),
                ))
            }
        })
    }
}

impl fmt::Display for HttpMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpRequest {
    pub method: HttpMethod,
    pub path: String,
    /// Header name/value pairs in order; names are stored lower-cased.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// The decoy shape: `GET / HTTP/1.1` with a `Host` header.
    pub fn get(host: &str, path: &str) -> Self {
        Self {
            method: HttpMethod::Get,
            path: path.to_string(),
            headers: vec![
                ("host".to_string(), host.to_string()),
                (
                    "user-agent".to_string(),
                    "shadow-measurement/1.0".to_string(),
                ),
                ("accept".to_string(), "*/*".to_string()),
                ("connection".to_string(), "close".to_string()),
            ],
            body: Vec::new(),
        }
    }

    /// First value of a header (name compared case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let lname = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lname)
            .map(|(_, v)| v.as_str())
    }

    /// The `Host` header — the field on-path observers sniff.
    pub fn host(&self) -> Option<&str> {
        self.header("host")
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(self.method.as_str().as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.path.as_bytes());
        out.extend_from_slice(b" HTTP/1.1\r\n");
        let mut has_len = false;
        for (name, value) in &self.headers {
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(value.as_bytes());
            out.extend_from_slice(b"\r\n");
            has_len |= name == "content-length";
        }
        if !self.body.is_empty() && !has_len {
            out.extend_from_slice(format!("content-length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        let (head, body) = split_head(buf)?;
        let mut lines = head.split("\r\n");
        let request_line = lines
            .next()
            .ok_or_else(|| DecodeError::malformed("HTTP request", "missing request line"))?;
        let mut parts = request_line.split(' ');
        let method = HttpMethod::parse(
            parts
                .next()
                .ok_or_else(|| DecodeError::malformed("HTTP request line", "missing method"))?,
        )?;
        let path = parts
            .next()
            .ok_or_else(|| DecodeError::malformed("HTTP request line", "missing path"))?
            .to_string();
        let version = parts
            .next()
            .ok_or_else(|| DecodeError::malformed("HTTP request line", "missing version"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(DecodeError::malformed(
                "HTTP version",
                format!("unsupported {version:?}"),
            ));
        }
        let headers = parse_headers(lines)?;
        let body = read_body(&headers, body)?;
        Ok(Self {
            method,
            path,
            headers,
            body,
        })
    }
}

/// An HTTP/1.1 response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpResponse {
    pub status: u16,
    pub reason: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl HttpResponse {
    pub fn new(status: u16, reason: &str, body: Vec<u8>) -> Self {
        Self {
            status,
            reason: reason.to_string(),
            headers: vec![
                ("content-type".to_string(), "text/html".to_string()),
                ("content-length".to_string(), body.len().to_string()),
                ("connection".to_string(), "close".to_string()),
            ],
            body,
        }
    }

    pub fn ok(body: Vec<u8>) -> Self {
        Self::new(200, "OK", body)
    }

    pub fn not_found() -> Self {
        Self::new(404, "Not Found", b"<html><body>404</body></html>".to_vec())
    }

    pub fn header(&self, name: &str) -> Option<&str> {
        let lname = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lname)
            .map(|(_, v)| v.as_str())
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", self.status, self.reason).as_bytes());
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        let (head, body) = split_head(buf)?;
        let mut lines = head.split("\r\n");
        let status_line = lines
            .next()
            .ok_or_else(|| DecodeError::malformed("HTTP response", "missing status line"))?;
        let mut parts = status_line.splitn(3, ' ');
        let version = parts
            .next()
            .ok_or_else(|| DecodeError::malformed("HTTP status line", "missing version"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(DecodeError::malformed(
                "HTTP version",
                format!("unsupported {version:?}"),
            ));
        }
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| DecodeError::malformed("HTTP status line", "bad status code"))?;
        let reason = parts.next().unwrap_or("").to_string();
        let headers = parse_headers(lines)?;
        let body = read_body(&headers, body)?;
        Ok(Self {
            status,
            reason,
            headers,
            body,
        })
    }
}

fn split_head(buf: &[u8]) -> Result<(&str, &[u8]), DecodeError> {
    let sep = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or(DecodeError::Truncated {
            what: "HTTP head",
            needed: 4,
        })?;
    let head = std::str::from_utf8(&buf[..sep])
        .map_err(|_| DecodeError::malformed("HTTP head", "not UTF-8"))?;
    Ok((head, &buf[sep + 4..]))
}

fn parse_headers<'a>(
    lines: impl Iterator<Item = &'a str>,
) -> Result<Vec<(String, String)>, DecodeError> {
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| {
            DecodeError::malformed("HTTP header", format!("no colon in {line:?}"))
        })?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(headers)
}

fn read_body(headers: &[(String, String)], body: &[u8]) -> Result<Vec<u8>, DecodeError> {
    let declared = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    match declared {
        Some(len) if body.len() < len => Err(DecodeError::Truncated {
            what: "HTTP body",
            needed: len - body.len(),
        }),
        Some(len) => Ok(body[..len].to_vec()),
        None => Ok(body.to_vec()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoy_request_round_trips() {
        let req = HttpRequest::get("abc.www.experiment.example", "/");
        let back = HttpRequest::decode(&req.encode()).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.host(), Some("abc.www.experiment.example"));
        assert_eq!(back.method, HttpMethod::Get);
    }

    #[test]
    fn header_lookup_case_insensitive() {
        let req = HttpRequest::get("h.example", "/x");
        assert_eq!(req.header("HOST"), Some("h.example"));
        assert_eq!(req.header("User-Agent"), Some("shadow-measurement/1.0"));
        assert_eq!(req.header("missing"), None);
    }

    #[test]
    fn request_with_body_round_trips() {
        let mut req = HttpRequest::get("h.example", "/submit");
        req.method = HttpMethod::Post;
        req.body = b"a=1&b=2".to_vec();
        let back = HttpRequest::decode(&req.encode()).unwrap();
        assert_eq!(back.body, b"a=1&b=2");
    }

    #[test]
    fn response_round_trips() {
        let resp = HttpResponse::ok(b"<html>honey</html>".to_vec());
        let back = HttpResponse::decode(&resp.encode()).unwrap();
        assert_eq!(back, resp);
        assert_eq!(back.status, 200);
    }

    #[test]
    fn not_found_has_status_404() {
        let resp = HttpResponse::not_found();
        assert_eq!(HttpResponse::decode(&resp.encode()).unwrap().status, 404);
    }

    #[test]
    fn rejects_garbage() {
        assert!(HttpRequest::decode(b"not http at all").is_err());
        assert!(HttpRequest::decode(b"FROB / HTTP/1.1\r\n\r\n").is_err());
        assert!(HttpRequest::decode(b"GET / HTTP/2\r\n\r\n").is_err());
        assert!(HttpRequest::decode(b"GET / HTTP/1.1\r\nbadheader\r\n\r\n").is_err());
    }

    #[test]
    fn truncated_body_detected() {
        let bytes = b"GET / HTTP/1.1\r\nhost: h\r\ncontent-length: 10\r\n\r\nabc";
        assert!(matches!(
            HttpRequest::decode(bytes),
            Err(DecodeError::Truncated {
                what: "HTTP body",
                ..
            })
        ));
    }

    #[test]
    fn path_enumeration_probe_parses() {
        // The shape of unsolicited scanner traffic the honeypots log.
        let bytes = b"GET /.git/config HTTP/1.1\r\nHost: abc.www.experiment.example\r\nUser-Agent: Mozilla/5.0 zgrab/0.x\r\n\r\n";
        let req = HttpRequest::decode(bytes).unwrap();
        assert_eq!(req.path, "/.git/config");
        assert!(req.header("user-agent").unwrap().contains("zgrab"));
    }
}
