//! [`SharedBytes`]: the zero-copy payload buffer behind the packet fast
//! path.
//!
//! Every in-flight payload in the simulator used to be an owned `Vec<u8>`,
//! cloned on event duplication, tap inspection, harvest and capture. At the
//! paper's scale (thousands of vantage points × 5–15 router hops × a 1..64
//! TTL sweep) those copies dominate the hot path. `SharedBytes` is a
//! `Bytes`-style view — an `Arc<[u8]>` plus a window — so cloning is a
//! reference-count bump and sub-slicing (a UDP payload inside an IPv4
//! payload, a DNS message inside a UDP payload) shares the same allocation.
//!
//! The buffer is immutable once constructed; that immutability is what
//! makes the sharing sound and what the parse-once [`crate::view`] memo
//! relies on. Code that needs to edit bytes (e.g. truncating an ICMP
//! quotation) copies out explicitly via [`SharedBytes::to_vec`].

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable, sliceable, immutable byte buffer.
#[derive(Clone)]
pub struct SharedBytes {
    data: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl SharedBytes {
    /// An empty buffer (no allocation beyond a shared static-like Arc).
    pub fn empty() -> Self {
        Self {
            data: Arc::from(&[][..]),
            start: 0,
            len: 0,
        }
    }

    /// The viewed bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-window of this buffer sharing the same allocation.
    ///
    /// # Panics
    /// If the range exceeds `self.len()`, mirroring slice indexing.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "SharedBytes::slice range {range:?} out of bounds for length {}",
            self.len
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            len: range.end - range.start,
        }
    }

    /// Copy the viewed bytes into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for SharedBytes {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for SharedBytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for SharedBytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Self {
            data: Arc::from(v),
            start: 0,
            len,
        }
    }
}

impl From<&[u8]> for SharedBytes {
    fn from(s: &[u8]) -> Self {
        Self {
            data: Arc::from(s),
            start: 0,
            len: s.len(),
        }
    }
}

impl<const N: usize> From<&[u8; N]> for SharedBytes {
    fn from(s: &[u8; N]) -> Self {
        Self::from(&s[..])
    }
}

impl From<Arc<[u8]>> for SharedBytes {
    fn from(data: Arc<[u8]>) -> Self {
        let len = data.len();
        Self {
            data,
            start: 0,
            len,
        }
    }
}

impl Default for SharedBytes {
    fn default() -> Self {
        Self::empty()
    }
}

impl PartialEq for SharedBytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SharedBytes {}

impl PartialEq<[u8]> for SharedBytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for SharedBytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for SharedBytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharedBytes({} bytes)", self.len)
    }
}

// Wire-compatible with `Vec<u8>` so existing journal/fixture encodings are
// unchanged by the zero-copy migration.
impl Serialize for SharedBytes {
    fn serialize_content(&self) -> Content {
        self.as_slice().serialize_content()
    }
}

impl Deserialize for SharedBytes {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        Vec::<u8>::deserialize_content(content).map(Self::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let a = SharedBytes::from(vec![1u8, 2, 3, 4]);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.data, &b.data));
        assert_eq!(a, b);
    }

    #[test]
    fn slice_is_zero_copy_and_windows_correctly() {
        let a = SharedBytes::from(&b"hello world"[..]);
        let w = a.slice(6..11);
        assert!(Arc::ptr_eq(&a.data, &w.data));
        assert_eq!(&*w, b"world");
        let inner = w.slice(1..3);
        assert_eq!(&*inner, b"or");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        SharedBytes::from(&b"abc"[..]).slice(1..5);
    }

    #[test]
    fn empty_and_default() {
        assert!(SharedBytes::empty().is_empty());
        assert_eq!(SharedBytes::default().len(), 0);
        assert_eq!(&*SharedBytes::empty(), b"");
    }

    #[test]
    fn deref_and_eq_with_plain_bytes() {
        let a = SharedBytes::from(vec![9u8, 8, 7]);
        assert_eq!(a[0], 9);
        assert_eq!(a, vec![9u8, 8, 7]);
        assert_eq!(a.to_vec(), vec![9u8, 8, 7]);
    }

    #[test]
    fn serde_matches_vec_u8_wire_format() {
        let v = vec![0u8, 255, 3];
        let sb = SharedBytes::from(v.clone());
        assert_eq!(sb.serialize_content(), v.serialize_content());
        let back = SharedBytes::deserialize_content(&v.serialize_content()).expect("round-trips");
        assert_eq!(back, sb);
        // A sliced view serializes its window, not the whole backing buffer.
        let w = SharedBytes::from(vec![1u8, 2, 3, 4]).slice(1..3);
        assert_eq!(w.serialize_content(), vec![2u8, 3].serialize_content());
    }
}
