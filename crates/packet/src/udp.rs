//! UDP datagram codec (RFC 768). DNS decoys travel over UDP/53.

use crate::bytes::SharedBytes;
use crate::cursor::Reader;
use crate::error::DecodeError;
use serde::{Deserialize, Serialize};

pub const UDP_HEADER_LEN: usize = 8;

/// A UDP datagram. The checksum is carried but, as permitted for IPv4,
/// encoded as zero ("no checksum") — the simulator's links are loss-free and
/// integrity is enforced at the IPv4 layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpDatagram {
    pub src_port: u16,
    pub dst_port: u16,
    pub payload: SharedBytes,
}

impl UdpDatagram {
    pub fn new(src_port: u16, dst_port: u16, payload: impl Into<SharedBytes>) -> Self {
        Self {
            src_port,
            dst_port,
            payload: payload.into(),
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let len = (UDP_HEADER_LEN + self.payload.len()).min(u16::MAX as usize) as u16;
        let mut out = Vec::with_capacity(len as usize);
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&len.to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes()); // checksum: none
        out.extend_from_slice(&self.payload);
        out
    }

    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        Self::decode_shared(&SharedBytes::from(buf))
    }

    /// Decode from an already-shared buffer (e.g. an [`crate::Ipv4Packet`]
    /// payload); the datagram payload is a zero-copy window into `buf`.
    pub fn decode_shared(buf: &SharedBytes) -> Result<Self, DecodeError> {
        let mut r = Reader::new(buf);
        let src_port = r.u16("UDP source port")?;
        let dst_port = r.u16("UDP destination port")?;
        let length = r.u16("UDP length")? as usize;
        let _checksum = r.u16("UDP checksum")?;
        if length < UDP_HEADER_LEN {
            return Err(DecodeError::malformed(
                "UDP length",
                format!("{length} < {UDP_HEADER_LEN}"),
            ));
        }
        let want = length - UDP_HEADER_LEN;
        let start = r.position();
        r.bytes("UDP payload", want)?;
        Ok(Self {
            src_port,
            dst_port,
            payload: buf.slice(start..start + want),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let d = UdpDatagram::new(5353, 53, b"query bytes".to_vec());
        assert_eq!(UdpDatagram::decode(&d.encode()).unwrap(), d);
    }

    #[test]
    fn empty_payload_ok() {
        let d = UdpDatagram::new(1, 2, Vec::<u8>::new());
        let bytes = d.encode();
        assert_eq!(bytes.len(), UDP_HEADER_LEN);
        assert_eq!(UdpDatagram::decode(&bytes).unwrap(), d);
    }

    #[test]
    fn bad_length_field_rejected() {
        let d = UdpDatagram::new(1, 2, b"abc".to_vec());
        let mut bytes = d.encode();
        bytes[4..6].copy_from_slice(&3u16.to_be_bytes()); // < header size
        assert!(matches!(
            UdpDatagram::decode(&bytes),
            Err(DecodeError::Malformed { .. })
        ));
    }

    #[test]
    fn truncated_rejected() {
        let d = UdpDatagram::new(1, 2, b"abcdef".to_vec());
        let bytes = d.encode();
        assert!(matches!(
            UdpDatagram::decode(&bytes[..bytes.len() - 2]),
            Err(DecodeError::Truncated { .. })
        ));
    }
}
