//! Autonomous-system registry.
//!
//! Mixes a catalog of the real ASes named in the paper (so that reproduced
//! tables read like the originals) with per-country synthetic ASes generated
//! deterministically from a seed.

use crate::country::{cc, CountryCode, Region, COUNTRIES};
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha20Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Autonomous system number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Broad AS role; drives topology degree, observer placement, and the
/// "hosting" label the paper checks via IPinfo (Appendix C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AsKind {
    /// National backbone carrier (e.g. Chinanet). High degree, transits
    /// large volumes; the paper finds most on-wire observers here.
    IspBackbone,
    /// Regional/provincial ISP network (e.g. Chinanet Hubei).
    IspRegional,
    /// Cloud / hosting platform (e.g. HostRoyale, Zenlayer). Labeled
    /// "hosting" by IP-intel databases; datacenter VPN egress lives here.
    Cloud,
    /// Operator of a public DNS service (e.g. Yandex, Google).
    ResolverOperator,
    /// Eyeball/enterprise stub network.
    Enterprise,
}

impl AsKind {
    /// Whether IP-intel databases label addresses in this AS as "hosting"
    /// (the vetting signal used in Appendix C: 71/74 global VP ASes were
    /// labeled hosting).
    pub fn hosting_label(self) -> bool {
        matches!(self, AsKind::Cloud | AsKind::ResolverOperator)
    }
}

/// Registry entry for one AS.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsInfo {
    pub asn: Asn,
    pub name: String,
    pub country: CountryCode,
    pub kind: AsKind,
    /// Topology degree hint: backbone ASes peer widely, stubs do not.
    pub degree_hint: u8,
}

/// A real-world AS that appears in the paper's tables and figures.
pub struct WellKnownAs {
    pub asn: u32,
    pub name: &'static str,
    pub country: &'static str,
    pub kind: AsKind,
}

/// The ASes the paper names explicitly (Tables 3, Figure 6, Section 5.2),
/// plus the resolver operators behind Table 4.
pub const WELL_KNOWN_ASES: &[WellKnownAs] = &[
    // Table 3 — on-path observers.
    WellKnownAs {
        asn: 4134,
        name: "CHINANET-BACKBONE",
        country: "CN",
        kind: AsKind::IspBackbone,
    },
    WellKnownAs {
        asn: 58563,
        name: "CHINANET Hubei province network",
        country: "CN",
        kind: AsKind::IspRegional,
    },
    WellKnownAs {
        asn: 137697,
        name: "CHINATELECOM JiangSu",
        country: "CN",
        kind: AsKind::IspRegional,
    },
    WellKnownAs {
        asn: 4812,
        name: "China Telecom (Group)",
        country: "CN",
        kind: AsKind::IspBackbone,
    },
    WellKnownAs {
        asn: 23650,
        name: "CHINANET jiangsu backbone",
        country: "CN",
        kind: AsKind::IspBackbone,
    },
    WellKnownAs {
        asn: 4808,
        name: "China Unicom Beijing Province Network",
        country: "CN",
        kind: AsKind::IspRegional,
    },
    WellKnownAs {
        asn: 203020,
        name: "HostRoyale Technologies Pvt Ltd",
        country: "IN",
        kind: AsKind::Cloud,
    },
    WellKnownAs {
        asn: 21859,
        name: "Zenlayer Inc",
        country: "US",
        kind: AsKind::Cloud,
    },
    WellKnownAs {
        asn: 140292,
        name: "CHINATELECOM Jiangsu",
        country: "CN",
        kind: AsKind::IspRegional,
    },
    // Section 5.2 — HTTP/TLS observer ASes outside CN.
    WellKnownAs {
        asn: 40444,
        name: "Constant Contact",
        country: "US",
        kind: AsKind::Cloud,
    },
    WellKnownAs {
        asn: 29988,
        name: "Rogers Communications",
        country: "CA",
        kind: AsKind::IspBackbone,
    },
    // Figure 6 — origins of unsolicited DNS re-queries.
    WellKnownAs {
        asn: 15169,
        name: "Google LLC",
        country: "US",
        kind: AsKind::ResolverOperator,
    },
    // Resolver operators behind Table 4 destinations.
    WellKnownAs {
        asn: 13335,
        name: "Cloudflare, Inc.",
        country: "US",
        kind: AsKind::ResolverOperator,
    },
    WellKnownAs {
        asn: 36692,
        name: "Cisco OpenDNS, LLC",
        country: "US",
        kind: AsKind::ResolverOperator,
    },
    WellKnownAs {
        asn: 19281,
        name: "Quad9",
        country: "US",
        kind: AsKind::ResolverOperator,
    },
    WellKnownAs {
        asn: 13238,
        name: "YANDEX LLC",
        country: "RU",
        kind: AsKind::ResolverOperator,
    },
    WellKnownAs {
        asn: 23724,
        name: "IDC, China Telecommunications (114DNS)",
        country: "CN",
        kind: AsKind::ResolverOperator,
    },
    WellKnownAs {
        asn: 4837,
        name: "CHINA UNICOM China169 Backbone",
        country: "CN",
        kind: AsKind::IspBackbone,
    },
    WellKnownAs {
        asn: 9808,
        name: "China Mobile Communications Group",
        country: "CN",
        kind: AsKind::IspBackbone,
    },
    WellKnownAs {
        asn: 3356,
        name: "Level 3 Parent, LLC",
        country: "US",
        kind: AsKind::IspBackbone,
    },
    WellKnownAs {
        asn: 6939,
        name: "Hurricane Electric LLC",
        country: "US",
        kind: AsKind::IspBackbone,
    },
    WellKnownAs {
        asn: 12222,
        name: "VERCARA (UltraDNS)",
        country: "US",
        kind: AsKind::ResolverOperator,
    },
    WellKnownAs {
        asn: 24151,
        name: "CNNIC",
        country: "CN",
        kind: AsKind::ResolverOperator,
    },
    WellKnownAs {
        asn: 45090,
        name: "Tencent (DNSPod)",
        country: "CN",
        kind: AsKind::ResolverOperator,
    },
    WellKnownAs {
        asn: 38365,
        name: "Baidu, Inc.",
        country: "CN",
        kind: AsKind::ResolverOperator,
    },
    WellKnownAs {
        asn: 51559,
        name: "Netinternet (OpenNIC host)",
        country: "TR",
        kind: AsKind::Cloud,
    },
    WellKnownAs {
        asn: 197988,
        name: "SafeDNS, Inc.",
        country: "RU",
        kind: AsKind::ResolverOperator,
    },
    WellKnownAs {
        asn: 8972,
        name: "DNS.Watch (Host Europe)",
        country: "DE",
        kind: AsKind::ResolverOperator,
    },
    WellKnownAs {
        asn: 33517,
        name: "Oracle Dyn",
        country: "US",
        kind: AsKind::ResolverOperator,
    },
    WellKnownAs {
        asn: 4788,
        name: "ONE DNS operator network",
        country: "CN",
        kind: AsKind::ResolverOperator,
    },
    WellKnownAs {
        asn: 17964,
        name: "DXTNET (DNS PAI)",
        country: "CN",
        kind: AsKind::ResolverOperator,
    },
    WellKnownAs {
        asn: 131657,
        name: "Quad101 / TWNIC",
        country: "TW",
        kind: AsKind::ResolverOperator,
    },
    WellKnownAs {
        asn: 42473,
        name: "Freenom World",
        country: "NL",
        kind: AsKind::ResolverOperator,
    },
];

/// First ASN handed to synthesized ASes; far above any real assignment we
/// include, so collisions are impossible.
const SYNTHETIC_ASN_BASE: u32 = 400_000;

/// The complete AS registry for one simulated world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsCatalog {
    entries: Vec<AsInfo>,
    by_asn: HashMap<Asn, usize>,
}

impl AsCatalog {
    /// Build a registry: every well-known AS plus `synthetic_per_weight`
    /// synthetic ASes per unit of country weight (so CN/US get many, Andorra
    /// few). Deterministic in `seed`.
    pub fn generate(seed: u64, synthetic_density: f64) -> Self {
        let mut rng = ChaCha20Rng::seed_from_u64(seed ^ 0x5e0a_5ca7_a106);
        let mut entries: Vec<AsInfo> = WELL_KNOWN_ASES
            .iter()
            .map(|w| AsInfo {
                asn: Asn(w.asn),
                name: w.name.to_string(),
                country: cc(w.country),
                kind: w.kind,
                degree_hint: match w.kind {
                    AsKind::IspBackbone => 12,
                    AsKind::IspRegional => 4,
                    AsKind::Cloud => 6,
                    AsKind::ResolverOperator => 6,
                    AsKind::Enterprise => 2,
                },
            })
            .collect();

        let mut next_asn = SYNTHETIC_ASN_BASE;
        for country in COUNTRIES {
            let n = ((country.weight as f64 * synthetic_density).ceil() as u32).max(2);
            for i in 0..n {
                let kind = if i == 0 {
                    // Every country gets at least one backbone so routes
                    // exist...
                    AsKind::IspBackbone
                } else if i % 3 == 1 || (country.weight >= 60 && i % 3 == 2) {
                    // ...and clouds proportional to size (at least one), so
                    // datacenter VPN egress can be recruited anywhere
                    // (Appendix C) and is spread across several hosters —
                    // large markets (CN, US, IN) host disproportionately
                    // many datacenter providers.
                    AsKind::Cloud
                } else {
                    *[
                        AsKind::IspRegional,
                        AsKind::IspRegional,
                        AsKind::Cloud,
                        AsKind::Enterprise,
                        AsKind::Enterprise,
                    ]
                    .choose(&mut rng)
                    .expect("non-empty kind palette")
                };
                let degree_hint = match kind {
                    AsKind::IspBackbone => rng.gen_range(8..=14),
                    AsKind::IspRegional => rng.gen_range(3..=6),
                    AsKind::Cloud => rng.gen_range(4..=8),
                    AsKind::ResolverOperator => 6,
                    AsKind::Enterprise => rng.gen_range(1..=2),
                };
                entries.push(AsInfo {
                    asn: Asn(next_asn),
                    name: synth_as_name(country.code, kind, i),
                    country: country.code,
                    kind,
                    degree_hint,
                });
                next_asn += 1;
            }
        }

        let by_asn = entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.asn, i))
            .collect();
        Self { entries, by_asn }
    }

    pub fn get(&self, asn: Asn) -> Option<&AsInfo> {
        self.by_asn.get(&asn).map(|&i| &self.entries[i])
    }

    /// Register an AS after generation (e.g. a root-server operator that is
    /// not in the well-known list). Idempotent for an existing ASN.
    pub fn register(&mut self, info: AsInfo) {
        if self.by_asn.contains_key(&info.asn) {
            return;
        }
        self.by_asn.insert(info.asn, self.entries.len());
        self.entries.push(info);
    }

    pub fn iter(&self) -> impl Iterator<Item = &AsInfo> {
        self.entries.iter()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All ASes registered in `country`.
    pub fn in_country(&self, country: CountryCode) -> impl Iterator<Item = &AsInfo> {
        self.entries.iter().filter(move |e| e.country == country)
    }

    /// All ASes of a given kind.
    pub fn of_kind(&self, kind: AsKind) -> impl Iterator<Item = &AsInfo> {
        self.entries.iter().filter(move |e| e.kind == kind)
    }

    /// The region an AS sits in (via its country).
    pub fn region_of(&self, asn: Asn) -> Option<Region> {
        let info = self.get(asn)?;
        crate::country::country_info(info.country).map(|ci| ci.region)
    }
}

fn synth_as_name(country: CountryCode, kind: AsKind, idx: u32) -> String {
    let role = match kind {
        AsKind::IspBackbone => "Backbone",
        AsKind::IspRegional => "Regional Net",
        AsKind::Cloud => "Cloud Hosting",
        AsKind::ResolverOperator => "DNS Operator",
        AsKind::Enterprise => "Enterprise",
    };
    format!("{country} {role} {idx}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_known_ases_present() {
        let cat = AsCatalog::generate(7, 0.2);
        let chinanet = cat.get(Asn(4134)).expect("AS4134 must exist");
        assert_eq!(chinanet.name, "CHINANET-BACKBONE");
        assert_eq!(chinanet.country, cc("CN"));
        assert_eq!(chinanet.kind, AsKind::IspBackbone);
        assert!(cat.get(Asn(15169)).is_some(), "Google");
        assert!(cat.get(Asn(203020)).is_some(), "HostRoyale");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = AsCatalog::generate(42, 0.3);
        let b = AsCatalog::generate(42, 0.3);
        assert_eq!(a.entries, b.entries);
    }

    #[test]
    fn different_seed_differs() {
        let a = AsCatalog::generate(1, 0.3);
        let b = AsCatalog::generate(2, 0.3);
        // Same well-known prefix, but synthetic tails should differ in kinds.
        assert_eq!(a.len(), b.len());
        let differing = a
            .iter()
            .zip(b.iter())
            .filter(|(x, y)| x.kind != y.kind)
            .count();
        assert!(differing > 0, "seeds should shuffle synthetic AS kinds");
    }

    #[test]
    fn every_country_has_a_backbone_and_a_cloud() {
        let cat = AsCatalog::generate(3, 0.1);
        for country in COUNTRIES {
            let has_backbone = cat
                .in_country(country.code)
                .any(|a| a.kind == AsKind::IspBackbone);
            assert!(has_backbone, "{} lacks a backbone AS", country.code);
            let has_cloud = cat
                .in_country(country.code)
                .any(|a| a.kind == AsKind::Cloud);
            assert!(has_cloud, "{} lacks a cloud AS", country.code);
        }
    }

    #[test]
    fn asns_are_unique() {
        let cat = AsCatalog::generate(11, 0.4);
        let mut asns: Vec<_> = cat.iter().map(|e| e.asn).collect();
        asns.sort();
        let before = asns.len();
        asns.dedup();
        assert_eq!(before, asns.len());
    }

    #[test]
    fn hosting_label_follows_kind() {
        assert!(AsKind::Cloud.hosting_label());
        assert!(!AsKind::IspBackbone.hosting_label());
        assert!(!AsKind::Enterprise.hosting_label());
    }

    #[test]
    fn display_formats_like_paper() {
        assert_eq!(Asn(4134).to_string(), "AS4134");
    }
}
