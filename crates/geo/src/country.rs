//! Country codes and the catalog of countries covered by the measurement
//! platform (82 countries in the paper, Table 1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// ISO-3166-ish two-letter country code.
///
/// Stored as two ASCII uppercase bytes so the type is `Copy` and hashable
/// without allocation; construction validates the alphabet.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CountryCode([u8; 2]);

impl CountryCode {
    /// Parse a two-letter code. Lowercase input is accepted and uppercased.
    pub fn new(code: &str) -> Result<Self, InvalidCountryCode> {
        let bytes = code.as_bytes();
        if bytes.len() != 2 {
            return Err(InvalidCountryCode(code.to_string()));
        }
        let mut out = [0u8; 2];
        for (i, b) in bytes.iter().enumerate() {
            if !b.is_ascii_alphabetic() {
                return Err(InvalidCountryCode(code.to_string()));
            }
            out[i] = b.to_ascii_uppercase();
        }
        Ok(Self(out))
    }

    /// Infallible constructor for compile-time-known codes; panics on bad input.
    pub const fn literal(code: &str) -> Self {
        let bytes = code.as_bytes();
        assert!(bytes.len() == 2, "country code must be two letters");
        let a = bytes[0].to_ascii_uppercase();
        let b = bytes[1].to_ascii_uppercase();
        assert!(a.is_ascii_uppercase() && b.is_ascii_uppercase());
        Self([a, b])
    }

    /// The code as a `&str`.
    pub fn as_str(&self) -> &str {
        // Construction guarantees ASCII uppercase, so this cannot fail.
        std::str::from_utf8(&self.0).expect("country code is ASCII by construction")
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CountryCode({})", self.as_str())
    }
}

/// Error returned when a country code fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidCountryCode(pub String);

impl fmt::Display for InvalidCountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid country code: {:?}", self.0)
    }
}

impl std::error::Error for InvalidCountryCode {}

/// Coarse world region, used when synthesizing AS-level topology (intra-region
/// AS paths are shorter than inter-region ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    NorthAmerica,
    SouthAmerica,
    Europe,
    EastAsia,
    SouthAsia,
    SoutheastAsia,
    MiddleEast,
    Africa,
    Oceania,
}

/// Static information about a country participating in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountryInfo {
    pub code: CountryCode,
    pub name: &'static str,
    pub region: Region,
    /// Relative weight used when distributing synthetic ASes and vantage
    /// points; loosely tracks Internet population.
    pub weight: u32,
}

const fn c(code: &str, name: &'static str, region: Region, weight: u32) -> CountryInfo {
    CountryInfo {
        code: CountryCode::literal(code),
        name,
        region,
        weight,
    }
}

/// The 82 countries covered by the paper's vantage-point platform (Table 1:
/// 81 countries outside mainland China, plus China).
pub const COUNTRIES: &[CountryInfo] = &[
    c("CN", "China", Region::EastAsia, 100),
    c("US", "United States", Region::NorthAmerica, 90),
    c("DE", "Germany", Region::Europe, 40),
    c("SG", "Singapore", Region::SoutheastAsia, 30),
    c("RU", "Russia", Region::Europe, 45),
    c("GB", "United Kingdom", Region::Europe, 40),
    c("FR", "France", Region::Europe, 35),
    c("NL", "Netherlands", Region::Europe, 30),
    c("JP", "Japan", Region::EastAsia, 45),
    c("KR", "South Korea", Region::EastAsia, 30),
    c("IN", "India", Region::SouthAsia, 60),
    c("BR", "Brazil", Region::SouthAmerica, 40),
    c("CA", "Canada", Region::NorthAmerica, 30),
    c("AU", "Australia", Region::Oceania, 25),
    c("IT", "Italy", Region::Europe, 25),
    c("ES", "Spain", Region::Europe, 25),
    c("SE", "Sweden", Region::Europe, 15),
    c("CH", "Switzerland", Region::Europe, 15),
    c("PL", "Poland", Region::Europe, 20),
    c("TR", "Turkey", Region::MiddleEast, 25),
    c("MX", "Mexico", Region::NorthAmerica, 25),
    c("AR", "Argentina", Region::SouthAmerica, 20),
    c("CL", "Chile", Region::SouthAmerica, 12),
    c("CO", "Colombia", Region::SouthAmerica, 15),
    c("ZA", "South Africa", Region::Africa, 15),
    c("EG", "Egypt", Region::Africa, 15),
    c("NG", "Nigeria", Region::Africa, 18),
    c("KE", "Kenya", Region::Africa, 10),
    c("SA", "Saudi Arabia", Region::MiddleEast, 15),
    c("AE", "United Arab Emirates", Region::MiddleEast, 12),
    c("IL", "Israel", Region::MiddleEast, 12),
    c("HK", "Hong Kong", Region::EastAsia, 20),
    c("TW", "Taiwan", Region::EastAsia, 18),
    c("TH", "Thailand", Region::SoutheastAsia, 18),
    c("VN", "Vietnam", Region::SoutheastAsia, 20),
    c("ID", "Indonesia", Region::SoutheastAsia, 25),
    c("MY", "Malaysia", Region::SoutheastAsia, 15),
    c("PH", "Philippines", Region::SoutheastAsia, 15),
    c("PK", "Pakistan", Region::SouthAsia, 18),
    c("BD", "Bangladesh", Region::SouthAsia, 12),
    c("UA", "Ukraine", Region::Europe, 15),
    c("RO", "Romania", Region::Europe, 12),
    c("CZ", "Czechia", Region::Europe, 10),
    c("AT", "Austria", Region::Europe, 10),
    c("BE", "Belgium", Region::Europe, 10),
    c("DK", "Denmark", Region::Europe, 8),
    c("FI", "Finland", Region::Europe, 8),
    c("NO", "Norway", Region::Europe, 8),
    c("IE", "Ireland", Region::Europe, 8),
    c("PT", "Portugal", Region::Europe, 8),
    c("GR", "Greece", Region::Europe, 8),
    c("HU", "Hungary", Region::Europe, 8),
    c("BG", "Bulgaria", Region::Europe, 7),
    c("RS", "Serbia", Region::Europe, 6),
    c("HR", "Croatia", Region::Europe, 5),
    c("SK", "Slovakia", Region::Europe, 5),
    c("SI", "Slovenia", Region::Europe, 4),
    c("LT", "Lithuania", Region::Europe, 4),
    c("LV", "Latvia", Region::Europe, 4),
    c("EE", "Estonia", Region::Europe, 4),
    c("IS", "Iceland", Region::Europe, 3),
    c("LU", "Luxembourg", Region::Europe, 3),
    c("MD", "Moldova", Region::Europe, 4),
    c("AD", "Andorra", Region::Europe, 2),
    c("NZ", "New Zealand", Region::Oceania, 8),
    c("PE", "Peru", Region::SouthAmerica, 10),
    c("EC", "Ecuador", Region::SouthAmerica, 7),
    c("UY", "Uruguay", Region::SouthAmerica, 5),
    c("PA", "Panama", Region::NorthAmerica, 5),
    c("CR", "Costa Rica", Region::NorthAmerica, 5),
    c("GT", "Guatemala", Region::NorthAmerica, 5),
    c("DO", "Dominican Republic", Region::NorthAmerica, 5),
    c("MA", "Morocco", Region::Africa, 8),
    c("TN", "Tunisia", Region::Africa, 5),
    c("GH", "Ghana", Region::Africa, 6),
    c("TZ", "Tanzania", Region::Africa, 5),
    c("JO", "Jordan", Region::MiddleEast, 6),
    c("QA", "Qatar", Region::MiddleEast, 5),
    c("KW", "Kuwait", Region::MiddleEast, 5),
    c("KZ", "Kazakhstan", Region::EastAsia, 8),
    c("GE", "Georgia", Region::Europe, 5),
    c("AM", "Armenia", Region::Europe, 4),
];

/// Look up a country's static info by code.
pub fn country_info(code: CountryCode) -> Option<&'static CountryInfo> {
    COUNTRIES.iter().find(|ci| ci.code == code)
}

/// Convenience constructor used pervasively in tests and world building.
pub fn cc(code: &str) -> CountryCode {
    CountryCode::new(code).expect("valid country code literal")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_uppercases() {
        assert_eq!(CountryCode::new("cn").unwrap().as_str(), "CN");
        assert_eq!(CountryCode::new("US").unwrap().as_str(), "US");
    }

    #[test]
    fn rejects_bad_codes() {
        assert!(CountryCode::new("").is_err());
        assert!(CountryCode::new("USA").is_err());
        assert!(CountryCode::new("1A").is_err());
        assert!(CountryCode::new("C!").is_err());
    }

    #[test]
    fn catalog_has_82_countries_like_table1() {
        assert_eq!(COUNTRIES.len(), 82);
    }

    #[test]
    fn catalog_codes_are_unique() {
        let mut codes: Vec<_> = COUNTRIES.iter().map(|ci| ci.code).collect();
        codes.sort();
        codes.dedup();
        assert_eq!(codes.len(), COUNTRIES.len());
    }

    #[test]
    fn catalog_includes_honeypot_and_case_study_countries() {
        for code in ["CN", "US", "DE", "SG", "RU", "CA", "AD"] {
            assert!(country_info(cc(code)).is_some(), "missing {code}");
        }
    }

    #[test]
    fn display_round_trips() {
        let code = cc("JP");
        assert_eq!(code.to_string(), "JP");
        assert_eq!(CountryCode::new(&code.to_string()).unwrap(), code);
    }
}
