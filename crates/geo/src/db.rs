//! The geolocation / IP-intelligence database: the simulated stand-in for
//! ip-api and IPinfo, which the paper queries to geolocate vantage points
//! and label their networks as hosting (Appendix C).

use crate::asn::{AsCatalog, AsInfo, AsKind, Asn};
use crate::country::CountryCode;
use serde::{Content, DeError, Deserialize, Serialize};
use shadow_topo::IpLookupTable;
use std::fmt;
use std::net::Ipv4Addr;

/// An IPv4 prefix (`base/len`) with the base address canonicalized (host
/// bits zeroed is *required* at construction).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv4Prefix {
    base: u32,
    len: u8,
}

/// Error constructing a prefix whose base has host bits set or whose length
/// exceeds 32.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidPrefix {
    pub base: Ipv4Addr,
    pub len: u8,
}

impl fmt::Display for InvalidPrefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix {}/{}", self.base, self.len)
    }
}

impl std::error::Error for InvalidPrefix {}

impl Ipv4Prefix {
    pub fn new(base: Ipv4Addr, len: u8) -> Result<Self, InvalidPrefix> {
        let base_u32 = u32::from(base);
        if len > 32 || base_u32 & !Self::mask_for(len) != 0 {
            return Err(InvalidPrefix { base, len });
        }
        Ok(Self {
            base: base_u32,
            len,
        })
    }

    /// Build the covering prefix of `addr` at length `len` (host bits zeroed).
    pub fn containing(addr: Ipv4Addr, len: u8) -> Self {
        let len = len.min(32);
        Self {
            base: u32::from(addr) & Self::mask_for(len),
            len,
        }
    }

    fn mask_for(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    pub fn base(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.base)
    }

    pub fn base_u32(&self) -> u32 {
        self.base
    }

    /// The prefix length in bits (not a container length; a prefix is
    /// never "empty").
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }

    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        u32::from(addr) & Self::mask_for(self.len) == self.base
    }

    pub fn overlaps(&self, other: &Ipv4Prefix) -> bool {
        let l = self.len.min(other.len);
        self.base & Self::mask_for(l) == other.base & Self::mask_for(l)
    }

    /// Number of addresses covered.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// The `i`-th host address inside the prefix (0-based, may be the base).
    pub fn host(&self, i: u32) -> Option<Ipv4Addr> {
        if u64::from(i) >= self.size() {
            return None;
        }
        Some(Ipv4Addr::from(self.base + i))
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base(), self.len)
    }
}

impl fmt::Debug for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base(), self.len)
    }
}

/// What an IP-intelligence database says about an address's network type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HostingLabel {
    /// Datacenter / hosting network (the label 96% of the paper's global VP
    /// ASes carried in IPinfo).
    Hosting,
    /// Residential / eyeball network.
    Residential,
}

/// One routed entry in the database.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeoRecord {
    pub prefix: Ipv4Prefix,
    pub asn: Asn,
    pub country: CountryCode,
    pub hosting: HostingLabel,
}

/// Longest-prefix-match lookup database over all routed prefixes in the
/// simulated world. The stand-in for ip-api / IPinfo.
///
/// A facade over [`shadow_topo::IpLookupTable`]: every `insert` updates
/// the bitmap trie immediately, so the db is correct after each insert —
/// there is no unsorted state for a missed `build()` call to leave behind
/// (the old sorted-scan implementation only `debug_assert!`ed its sort
/// flag, silently returning wrong answers in release builds).
#[derive(Debug, Clone, Default)]
pub struct GeoDb {
    /// All inserted records in insertion order (duplicates included, so
    /// `len`/`iter` report exactly what was registered).
    records: Vec<GeoRecord>,
    /// Prefix → index of the authoritative record in `records` (on
    /// duplicate (base, len) inserts the latest wins, matching the old
    /// backward-scan tie-break).
    table: IpLookupTable<u32>,
}

impl Serialize for GeoDb {
    fn serialize_content(&self) -> Content {
        // Only the records travel; the trie is derived state.
        Content::Struct(vec![("records", self.records.serialize_content())])
    }
}

impl Deserialize for GeoDb {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        let records: Vec<GeoRecord> =
            Deserialize::deserialize_content(content.get_field("records"))?;
        // Rebuilding through insert re-derives the trie, so a deserialized
        // db is as correct-by-construction as a hand-built one.
        let mut db = Self::new();
        for record in records {
            db.insert(record);
        }
        Ok(db)
    }
}

impl GeoDb {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a routed prefix. Later lookups prefer the longest match;
    /// re-registering the same prefix replaces its record.
    pub fn insert(&mut self, record: GeoRecord) {
        let idx = self.records.len() as u32;
        self.table
            .insert(record.prefix.base(), u32::from(record.prefix.len()), idx);
        self.records.push(record);
    }

    /// Register a prefix for an AS, deriving country and hosting label from
    /// the AS catalog entry.
    pub fn insert_for_as(&mut self, prefix: Ipv4Prefix, info: &AsInfo) {
        self.insert(GeoRecord {
            prefix,
            asn: info.asn,
            country: info.country,
            hosting: if info.kind.hosting_label() {
                HostingLabel::Hosting
            } else {
                HostingLabel::Residential
            },
        });
    }

    /// Historical finalize hook, kept for API compatibility. The trie is
    /// maintained on every `insert`, so there is nothing to do.
    pub fn build(&mut self) {}

    /// Longest-prefix-match lookup. Correct immediately after any insert —
    /// no `build()` required.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<&GeoRecord> {
        self.table
            .longest_match_value(addr)
            .map(|&idx| &self.records[idx as usize])
    }

    /// A sorted-scan reference index over this db's records, implementing
    /// the pre-trie lookup algorithm. Kept for the LPM equivalence tests
    /// and as the microbenchmark baseline.
    pub fn scan_index(&self) -> GeoScanIndex<'_> {
        let mut order: Vec<u32> = (0..self.records.len() as u32).collect();
        // Stable sort: equal (base, len) keeps insertion order, and the
        // backward scan prefers the later (latest-inserted) record.
        order.sort_by_key(|&i| {
            let p = &self.records[i as usize].prefix;
            (p.base_u32(), p.len())
        });
        GeoScanIndex { db: self, order }
    }

    /// The AS a routed address belongs to.
    pub fn asn_of(&self, addr: Ipv4Addr) -> Option<Asn> {
        self.lookup(addr).map(|r| r.asn)
    }

    /// The country a routed address geolocates to.
    pub fn country_of(&self, addr: Ipv4Addr) -> Option<CountryCode> {
        self.lookup(addr).map(|r| r.country)
    }

    /// The hosting/residential label (IPinfo-style) for an address.
    pub fn hosting_of(&self, addr: Ipv4Addr) -> Option<HostingLabel> {
        self.lookup(addr).map(|r| r.hosting)
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &GeoRecord> {
        self.records.iter()
    }
}

/// The pre-trie `GeoDb` lookup: a binary-search-anchored backward scan
/// over (base, len)-sorted records, bounded by the widest allocation the
/// simulated world hands out (/8). Exists only as a reference — the LPM
/// equivalence tests check the trie against it on the standard world, and
/// the `lpm_lookup` bench uses it as the baseline.
pub struct GeoScanIndex<'a> {
    db: &'a GeoDb,
    /// Record indexes sorted by (base, len), ties in insertion order.
    order: Vec<u32>,
}

impl GeoScanIndex<'_> {
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<&GeoRecord> {
        let key = u32::from(addr);
        // First record with base > addr; every candidate containing addr
        // has base <= addr, so scan backwards keeping the longest match,
        // stopping once even a /8 starting at base could not reach addr.
        let idx = self
            .order
            .partition_point(|&i| self.db.records[i as usize].prefix.base_u32() <= key);
        let mut best: Option<&GeoRecord> = None;
        for &i in self.order[..idx].iter().rev() {
            let r = &self.db.records[i as usize];
            if r.prefix.contains(addr) {
                match best {
                    Some(b) if b.prefix.len() >= r.prefix.len() => {}
                    _ => best = Some(r),
                }
            }
            if r.prefix.base_u32().saturating_add(0x0100_0000) <= key {
                break;
            }
        }
        best
    }
}

/// Convenience: full AS info for an address, resolving through a catalog.
pub fn as_info_of<'a>(db: &GeoDb, catalog: &'a AsCatalog, addr: Ipv4Addr) -> Option<&'a AsInfo> {
    db.asn_of(addr).and_then(|asn| catalog.get(asn))
}

/// Convenience for building a record without a catalog entry at hand.
pub fn record(prefix: Ipv4Prefix, asn: Asn, country: CountryCode, kind: AsKind) -> GeoRecord {
    GeoRecord {
        prefix,
        asn,
        country,
        hosting: if kind.hosting_label() {
            HostingLabel::Hosting
        } else {
            HostingLabel::Residential
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::country::cc;

    fn p(s: &str, len: u8) -> Ipv4Prefix {
        Ipv4Prefix::new(s.parse().unwrap(), len).unwrap()
    }

    #[test]
    fn prefix_rejects_host_bits() {
        assert!(Ipv4Prefix::new(Ipv4Addr::new(1, 2, 3, 4), 16).is_err());
        assert!(Ipv4Prefix::new(Ipv4Addr::new(1, 2, 0, 0), 16).is_ok());
        assert!(Ipv4Prefix::new(Ipv4Addr::new(1, 2, 0, 0), 33).is_err());
    }

    #[test]
    fn prefix_contains() {
        let pre = p("10.1.0.0", 16);
        assert!(pre.contains(Ipv4Addr::new(10, 1, 200, 3)));
        assert!(!pre.contains(Ipv4Addr::new(10, 2, 0, 0)));
    }

    #[test]
    fn containing_zeroes_host_bits() {
        let pre = Ipv4Prefix::containing(Ipv4Addr::new(8, 8, 8, 8), 24);
        assert_eq!(pre.base(), Ipv4Addr::new(8, 8, 8, 0));
        assert!(pre.contains(Ipv4Addr::new(8, 8, 8, 8)));
    }

    #[test]
    fn longest_prefix_wins() {
        let mut db = GeoDb::new();
        db.insert(record(
            p("8.0.0.0", 8),
            Asn(1),
            cc("US"),
            AsKind::IspBackbone,
        ));
        db.insert(record(
            p("8.8.8.0", 24),
            Asn(15169),
            cc("US"),
            AsKind::ResolverOperator,
        ));
        db.build();
        assert_eq!(db.asn_of(Ipv4Addr::new(8, 8, 8, 8)), Some(Asn(15169)));
        assert_eq!(db.asn_of(Ipv4Addr::new(8, 9, 0, 1)), Some(Asn(1)));
    }

    #[test]
    fn miss_returns_none() {
        let mut db = GeoDb::new();
        db.insert(record(p("9.0.0.0", 8), Asn(2), cc("DE"), AsKind::Cloud));
        db.build();
        assert_eq!(db.lookup(Ipv4Addr::new(11, 0, 0, 1)), None);
    }

    #[test]
    fn hosting_label_propagates() {
        let mut db = GeoDb::new();
        db.insert(record(p("5.0.0.0", 16), Asn(3), cc("NL"), AsKind::Cloud));
        db.insert(record(
            p("5.1.0.0", 16),
            Asn(4),
            cc("NL"),
            AsKind::IspRegional,
        ));
        db.build();
        assert_eq!(
            db.hosting_of(Ipv4Addr::new(5, 0, 3, 3)),
            Some(HostingLabel::Hosting)
        );
        assert_eq!(
            db.hosting_of(Ipv4Addr::new(5, 1, 3, 3)),
            Some(HostingLabel::Residential)
        );
    }

    #[test]
    fn host_indexing() {
        let pre = p("192.0.2.0", 30);
        assert_eq!(pre.size(), 4);
        assert_eq!(pre.host(0), Some(Ipv4Addr::new(192, 0, 2, 0)));
        assert_eq!(pre.host(3), Some(Ipv4Addr::new(192, 0, 2, 3)));
        assert_eq!(pre.host(4), None);
    }

    #[test]
    fn lookup_is_correct_without_build() {
        // The release-mode footgun: the old implementation only
        // debug_assert!ed its sort flag, so skipping build() silently
        // returned wrong answers in release. Now inserts maintain the trie.
        let mut db = GeoDb::new();
        db.insert(record(p("9.0.0.0", 8), Asn(2), cc("DE"), AsKind::Cloud));
        db.insert(record(p("8.0.0.0", 8), Asn(1), cc("US"), AsKind::Cloud));
        db.insert(record(
            p("8.8.0.0", 16),
            Asn(15169),
            cc("US"),
            AsKind::ResolverOperator,
        ));
        // No build() call on purpose.
        assert_eq!(db.asn_of(Ipv4Addr::new(8, 8, 1, 1)), Some(Asn(15169)));
        assert_eq!(db.asn_of(Ipv4Addr::new(9, 1, 1, 1)), Some(Asn(2)));
    }

    #[test]
    fn duplicate_prefix_latest_record_wins() {
        let mut db = GeoDb::new();
        db.insert(record(p("7.0.0.0", 8), Asn(1), cc("US"), AsKind::Cloud));
        db.insert(record(p("7.0.0.0", 8), Asn(2), cc("DE"), AsKind::Cloud));
        assert_eq!(db.len(), 2); // both registrations are retained
        assert_eq!(db.asn_of(Ipv4Addr::new(7, 1, 1, 1)), Some(Asn(2)));
        let scan = db.scan_index();
        assert_eq!(scan.lookup(Ipv4Addr::new(7, 1, 1, 1)).unwrap().asn, Asn(2));
    }

    #[test]
    fn serde_round_trip_rebuilds_the_trie() {
        let mut db = GeoDb::new();
        db.insert(record(p("8.0.0.0", 8), Asn(1), cc("US"), AsKind::Cloud));
        db.insert(record(
            p("8.8.0.0", 16),
            Asn(15169),
            cc("US"),
            AsKind::ResolverOperator,
        ));
        let back = GeoDb::deserialize_content(&db.serialize_content()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.asn_of(Ipv4Addr::new(8, 8, 1, 1)), Some(Asn(15169)));
        assert_eq!(back.asn_of(Ipv4Addr::new(8, 1, 1, 1)), Some(Asn(1)));
    }

    #[test]
    fn trie_lookup_agrees_with_scan_reference() {
        let mut db = GeoDb::new();
        for i in 0..64u32 {
            let base = Ipv4Addr::from(((i % 16) + 1) << 24);
            db.insert(record(
                Ipv4Prefix::new(base, 8).unwrap(),
                Asn(i + 1),
                cc("US"),
                AsKind::Enterprise,
            ));
            let sub = Ipv4Addr::from((((i % 16) + 1) << 24) | ((i / 16) << 16));
            db.insert(record(
                Ipv4Prefix::new(sub, 16).unwrap(),
                Asn(1000 + i),
                cc("DE"),
                AsKind::Cloud,
            ));
        }
        let scan = db.scan_index();
        for a in 0..18u32 {
            for b in [0u32, 1, 3, 200] {
                let addr = Ipv4Addr::from((a << 24) | (b << 16) | 0x0101);
                assert_eq!(
                    db.lookup(addr).map(|r| (r.prefix, r.asn)),
                    scan.lookup(addr).map(|r| (r.prefix, r.asn)),
                    "disagreement at {addr}"
                );
            }
        }
    }

    #[test]
    fn lookup_with_many_prefixes() {
        let mut db = GeoDb::new();
        for i in 0..255u32 {
            let base = Ipv4Addr::from((i + 1) << 24);
            db.insert(record(
                Ipv4Prefix::new(base, 8).unwrap(),
                Asn(i + 1),
                cc("US"),
                AsKind::Enterprise,
            ));
        }
        db.build();
        assert_eq!(db.asn_of(Ipv4Addr::new(42, 1, 2, 3)), Some(Asn(42)));
        assert_eq!(db.asn_of(Ipv4Addr::new(200, 0, 0, 1)), Some(Asn(200)));
    }
}
