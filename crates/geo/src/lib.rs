//! # shadow-geo
//!
//! The geographic / routing-registry substrate for the traffic-shadowing
//! reproduction. The paper geolocates vantage points and traffic observers by
//! "looking them up in IP databases" (ip-api, IPinfo); this crate is the
//! synthetic equivalent: a deterministic registry of autonomous systems,
//! per-AS IPv4 prefix allocations, and a longest-prefix-match lookup database.
//!
//! The well-known ASes named in the paper (Chinanet AS4134, HostRoyale
//! AS203020, Google AS15169, ...) are present with their real numbers and
//! names so that analysis output reads like the paper's tables; all other
//! ASes are synthesized per country.
//!
//! Nothing in this crate performs I/O; every structure is built
//! deterministically from a seed.

pub mod alloc;
pub mod asn;
pub mod country;
pub mod db;

pub use alloc::{PrefixAllocator, MIN_PUBLIC_OCTET};
pub use asn::{AsCatalog, AsInfo, AsKind, Asn, WellKnownAs, WELL_KNOWN_ASES};
pub use country::{CountryCode, CountryInfo, Region, COUNTRIES};
pub use db::{GeoDb, GeoRecord, GeoScanIndex, HostingLabel, Ipv4Prefix};
pub use shadow_topo::IpLookupTable;
