//! Deterministic IPv4 prefix allocation.
//!
//! Each AS in the simulated world receives one or more prefixes from a global
//! pool. The allocator walks the unicast space sequentially (skipping
//! reserved ranges) so that allocation is reproducible and prefix overlap is
//! impossible by construction.

use crate::db::Ipv4Prefix;
use std::net::Ipv4Addr;

/// Lowest first octet handed out; keeps us clear of 0.0.0.0/8.
pub const MIN_PUBLIC_OCTET: u8 = 1;

/// Ranges the allocator must never hand out (loopback, RFC1918, multicast,
/// and the special-purpose blocks a real RIR would withhold). The simulation
/// also withholds the prefixes of the real public resolvers in Table 4 —
/// those are registered explicitly by the world builder, not allocated.
const RESERVED: &[(u32, u8)] = &[
    (0x0000_0000, 8),  // 0.0.0.0/8
    (0x0A00_0000, 8),  // 10.0.0.0/8
    (0x7F00_0000, 8),  // 127.0.0.0/8
    (0xA9FE_0000, 16), // 169.254.0.0/16
    (0xAC10_0000, 12), // 172.16.0.0/12
    (0xC0A8_0000, 16), // 192.168.0.0/16
    (0xC612_0000, 15), // 198.18.0.0/15
    (0xE000_0000, 4),  // 224.0.0.0/4 multicast
    (0xF000_0000, 4),  // 240.0.0.0/4 reserved
];

fn in_reserved(addr: u32) -> Option<(u32, u8)> {
    RESERVED
        .iter()
        .copied()
        .find(|&(base, len)| addr & mask(len) == base)
}

fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

/// Sequential, reservation-aware prefix allocator.
#[derive(Debug, Clone)]
pub struct PrefixAllocator {
    cursor: u32,
    /// Prefixes explicitly withheld by the caller (e.g. real resolver
    /// prefixes registered by hand).
    withheld: Vec<(u32, u8)>,
}

/// Error for an exhausted or conflicting allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// No space left in the unicast pool for a prefix of the requested size.
    Exhausted,
    /// Requested prefix length is outside 8..=30.
    BadLength(u8),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::Exhausted => write!(f, "IPv4 pool exhausted"),
            AllocError::BadLength(l) => write!(f, "unsupported prefix length /{l}"),
        }
    }
}

impl std::error::Error for AllocError {}

impl Default for PrefixAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefixAllocator {
    pub fn new() -> Self {
        Self {
            cursor: (MIN_PUBLIC_OCTET as u32) << 24,
            withheld: Vec::new(),
        }
    }

    /// Withhold a prefix so it is never allocated (used for hand-registered
    /// real-world addresses such as 8.8.8.8's covering prefix).
    pub fn withhold(&mut self, prefix: Ipv4Prefix) {
        self.withheld.push((prefix.base_u32(), prefix.len()));
    }

    fn is_withheld(&self, base: u32, len: u8) -> bool {
        self.withheld.iter().any(|&(wb, wl)| {
            let l = len.min(wl);
            base & mask(l) == wb & mask(l)
        })
    }

    /// Allocate the next free prefix of length `len` (8..=30).
    pub fn alloc(&mut self, len: u8) -> Result<Ipv4Prefix, AllocError> {
        if !(8..=30).contains(&len) {
            return Err(AllocError::BadLength(len));
        }
        let step = 1u32 << (32 - len);
        loop {
            // Align cursor up to the prefix size.
            let base = self
                .cursor
                .div_ceil(step)
                .checked_mul(step)
                .ok_or(AllocError::Exhausted)?;
            if base.checked_add(step - 1).is_none() {
                return Err(AllocError::Exhausted);
            }
            if let Some((rbase, rlen)) = in_reserved(base) {
                // Jump past the reserved block.
                let rstep = 1u32 << (32 - rlen);
                self.cursor = rbase.checked_add(rstep).ok_or(AllocError::Exhausted)?;
                continue;
            }
            // A larger allocation can *straddle into* a reserved block even
            // when its base is clear; check the block's last address too.
            if in_reserved(base + step - 1).is_some() || self.is_withheld(base, len) {
                self.cursor = base + step;
                continue;
            }
            self.cursor = base + step;
            return Ok(
                Ipv4Prefix::new(Ipv4Addr::from(base), len).expect("aligned base by construction")
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_do_not_overlap() {
        let mut alloc = PrefixAllocator::new();
        let mut prefixes = Vec::new();
        for _ in 0..200 {
            prefixes.push(alloc.alloc(16).unwrap());
        }
        for (i, a) in prefixes.iter().enumerate() {
            for b in &prefixes[i + 1..] {
                assert!(!a.overlaps(b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn skips_reserved_ranges() {
        let mut alloc = PrefixAllocator::new();
        for _ in 0..4000 {
            let p = alloc.alloc(16).unwrap();
            let base = p.base_u32();
            assert!(in_reserved(base).is_none(), "allocated reserved {p}");
            assert!(
                in_reserved(base + (1 << 16) - 1).is_none(),
                "straddles reserved {p}"
            );
        }
    }

    #[test]
    fn respects_withheld() {
        let mut alloc = PrefixAllocator::new();
        let withheld = Ipv4Prefix::new(Ipv4Addr::new(1, 1, 0, 0), 16).unwrap();
        alloc.withhold(withheld);
        for _ in 0..100 {
            let p = alloc.alloc(20).unwrap();
            assert!(!p.overlaps(&withheld), "{p} overlaps withheld {withheld}");
        }
    }

    #[test]
    fn rejects_bad_lengths() {
        let mut alloc = PrefixAllocator::new();
        assert_eq!(alloc.alloc(0), Err(AllocError::BadLength(0)));
        assert_eq!(alloc.alloc(31), Err(AllocError::BadLength(31)));
    }

    #[test]
    fn mixed_sizes_stay_disjoint() {
        let mut alloc = PrefixAllocator::new();
        let mut prefixes = Vec::new();
        for len in [16u8, 20, 24, 20, 16, 24, 12, 24] {
            prefixes.push(alloc.alloc(len).unwrap());
        }
        for (i, a) in prefixes.iter().enumerate() {
            for b in &prefixes[i + 1..] {
                assert!(!a.overlaps(b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut alloc = PrefixAllocator::new();
            (0..50)
                .map(|_| alloc.alloc(18).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
