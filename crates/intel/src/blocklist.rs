//! A Spamhaus-like IP blocklist.
//!
//! In the real study the blocklist is external ground truth; here it is
//! populated from the simulated world's `GroundTruth::blocklisted_addrs`
//! (DESIGN.md documents the substitution). The lookup and rate APIs are
//! what the analysis layer consumes.

use serde::{Deserialize, Serialize};
use shadow_geo::Ipv4Prefix;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// An IP blocklist over exact addresses and covering prefixes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Blocklist {
    addrs: BTreeSet<Ipv4Addr>,
    prefixes: Vec<Ipv4Prefix>,
}

impl Blocklist {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_addrs(addrs: impl IntoIterator<Item = Ipv4Addr>) -> Self {
        Self {
            addrs: addrs.into_iter().collect(),
            prefixes: Vec::new(),
        }
    }

    pub fn insert(&mut self, addr: Ipv4Addr) {
        self.addrs.insert(addr);
    }

    pub fn insert_prefix(&mut self, prefix: Ipv4Prefix) {
        self.prefixes.push(prefix);
    }

    pub fn len(&self) -> usize {
        self.addrs.len() + self.prefixes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty() && self.prefixes.is_empty()
    }

    /// Is `addr` labeled malicious?
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        self.addrs.contains(&addr) || self.prefixes.iter().any(|p| p.contains(addr))
    }

    /// Fraction (0..=1) of *distinct* addresses in `addrs` that are listed
    /// — the paper's "X% of the origin IPs have been labeled as malicious".
    pub fn hit_rate<'a>(&self, addrs: impl IntoIterator<Item = &'a Ipv4Addr>) -> f64 {
        let distinct: BTreeSet<_> = addrs.into_iter().copied().collect();
        if distinct.is_empty() {
            return 0.0;
        }
        let hits = distinct.iter().filter(|a| self.contains(**a)).count();
        hits as f64 / distinct.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(198, 51, 100, last)
    }

    #[test]
    fn exact_addresses() {
        let bl = Blocklist::from_addrs([a(1), a(2)]);
        assert!(bl.contains(a(1)));
        assert!(!bl.contains(a(3)));
        assert_eq!(bl.len(), 2);
    }

    #[test]
    fn prefixes_cover() {
        let mut bl = Blocklist::new();
        bl.insert_prefix(Ipv4Prefix::new(Ipv4Addr::new(203, 0, 113, 0), 24).unwrap());
        assert!(bl.contains(Ipv4Addr::new(203, 0, 113, 200)));
        assert!(!bl.contains(Ipv4Addr::new(203, 0, 114, 1)));
    }

    #[test]
    fn hit_rate_over_distinct_addrs() {
        let bl = Blocklist::from_addrs([a(1)]);
        // a(1) appears twice but counts once.
        let sample = [a(1), a(1), a(2), a(3), a(4)];
        let rate = bl.hit_rate(sample.iter());
        assert!((rate - 0.25).abs() < 1e-9, "got {rate}");
    }

    #[test]
    fn empty_sample_rate_zero() {
        let bl = Blocklist::from_addrs([a(1)]);
        assert_eq!(bl.hit_rate([].iter()), 0.0);
    }
}
