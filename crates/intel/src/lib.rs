//! # shadow-intel
//!
//! The threat-intelligence side channels the paper consults:
//!
//! * [`blocklist`] — a Spamhaus stand-in ("a respected IP blocklist widely
//!   used"): the analysis checks origin addresses of unsolicited requests
//!   against it (5.2% for DNS origins; 45–72% for HTTP/HTTPS probers);
//! * [`payload`] — exploit-db stand-in + HTTP path triage: the paper finds
//!   ~95% of probe paths are directory enumeration and none carry exploit
//!   payloads;
//! * [`portscan`] — the active open-port prober of Section 5.2 (92% of
//!   observers expose nothing; BGP/179 leads among the rest).

pub mod blocklist;
pub mod payload;
pub mod portscan;

pub use blocklist::Blocklist;
pub use payload::{classify_path, ExploitSignatureDb, PayloadClass};
pub use portscan::{PortScanReport, PortScanner};
