//! The open-port prober of Section 5.2: "By actively probing for their open
//! ports and banners, we attempt to reveal what types of device traffic
//! observers are. While, unfortunately, most (92%) observers do not have
//! open ports, we find the most commonly open port among the remainder is
//! 179 (BGP), indicating they are routing devices between networks."
//!
//! The simulated world has no real listening sockets on routers, so the
//! scanner resolves against a port table supplied by the world builder
//! (DESIGN.md documents this substitution); the *analysis* code paths —
//! scanning, aggregation, reporting — are the same as a real deployment's.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// Well-known ports the prober knocks on (nmap-style top ports plus BGP).
pub const PROBED_PORTS: &[u16] = &[21, 22, 23, 25, 53, 80, 110, 143, 179, 443, 3306, 8080];

/// A scanner bound to a port table.
#[derive(Debug, Clone, Default)]
pub struct PortScanner {
    /// Ground-truth open ports per address.
    open_ports: BTreeMap<Ipv4Addr, BTreeSet<u16>>,
}

/// Aggregated scan results over a set of targets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortScanReport {
    pub targets: usize,
    pub with_open_ports: usize,
    /// port → number of targets exposing it.
    pub port_counts: BTreeMap<u16, usize>,
}

impl PortScanReport {
    /// Fraction of targets with no open ports at all.
    pub fn closed_fraction(&self) -> f64 {
        if self.targets == 0 {
            return 0.0;
        }
        (self.targets - self.with_open_ports) as f64 / self.targets as f64
    }

    /// The most commonly open port, if any.
    pub fn top_port(&self) -> Option<u16> {
        self.port_counts
            .iter()
            .max_by_key(|&(port, count)| (*count, std::cmp::Reverse(*port)))
            .map(|(&port, _)| port)
    }
}

impl PortScanner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare `port` open on `addr` (world-builder ground truth).
    pub fn set_open(&mut self, addr: Ipv4Addr, port: u16) {
        self.open_ports.entry(addr).or_default().insert(port);
    }

    /// Scan one address: the probed ports that answered.
    pub fn scan(&self, addr: Ipv4Addr) -> Vec<u16> {
        let Some(open) = self.open_ports.get(&addr) else {
            return Vec::new();
        };
        PROBED_PORTS
            .iter()
            .copied()
            .filter(|p| open.contains(p))
            .collect()
    }

    /// Scan a set of observer addresses and aggregate.
    pub fn scan_all<'a>(&self, targets: impl IntoIterator<Item = &'a Ipv4Addr>) -> PortScanReport {
        let distinct: BTreeSet<_> = targets.into_iter().copied().collect();
        let mut with_open_ports = 0;
        let mut port_counts: BTreeMap<u16, usize> = BTreeMap::new();
        for addr in &distinct {
            let open = self.scan(*addr);
            if !open.is_empty() {
                with_open_ports += 1;
            }
            for port in open {
                *port_counts.entry(port).or_insert(0) += 1;
            }
        }
        PortScanReport {
            targets: distinct.len(),
            with_open_ports,
            port_counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 9, 8, last)
    }

    #[test]
    fn scan_unknown_address_is_closed() {
        let scanner = PortScanner::new();
        assert!(scanner.scan(a(1)).is_empty());
    }

    #[test]
    fn scan_finds_declared_ports() {
        let mut scanner = PortScanner::new();
        scanner.set_open(a(1), 179);
        scanner.set_open(a(1), 22);
        scanner.set_open(a(1), 9999); // not probed ⇒ invisible
        let found = scanner.scan(a(1));
        assert_eq!(found, vec![22, 179]);
    }

    #[test]
    fn report_aggregates_like_the_paper() {
        let mut scanner = PortScanner::new();
        // 2 of 25 observers expose something; BGP leads.
        scanner.set_open(a(1), 179);
        scanner.set_open(a(2), 179);
        scanner.set_open(a(2), 22);
        let targets: Vec<Ipv4Addr> = (1..=25).map(a).collect();
        let report = scanner.scan_all(targets.iter());
        assert_eq!(report.targets, 25);
        assert_eq!(report.with_open_ports, 2);
        assert!((report.closed_fraction() - 0.92).abs() < 1e-9);
        assert_eq!(report.top_port(), Some(179));
    }

    #[test]
    fn empty_report() {
        let scanner = PortScanner::new();
        let report = scanner.scan_all([].iter());
        assert_eq!(report.targets, 0);
        assert_eq!(report.closed_fraction(), 0.0);
        assert_eq!(report.top_port(), None);
    }
}
