//! HTTP payload triage: the exploit-db stand-in.
//!
//! Section 5 examines the paths of unsolicited HTTP requests: "most
//! requests (95%) are performing path enumeration ... we do not find
//! requests with highly malicious payloads or vulnerability exploit codes".
//! This module classifies paths the same way.

use serde::{Deserialize, Serialize};

/// Classification of one HTTP request path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PayloadClass {
    /// Plain content fetch ("/" or an ordinary document).
    Benign,
    /// Directory/endpoint enumeration (the dominant class in the paper).
    Enumeration,
    /// Carries a known exploit signature (the paper found none).
    Exploit,
}

/// Signatures of exploit payloads (exploit-db-style), checked as
/// case-insensitive substrings of the raw path + query.
const EXPLOIT_SIGNATURES: &[&str] = &[
    "union select",
    "union+select",
    "' or 1=1",
    "%27%20or%201%3d1",
    "../../",
    "..%2f..%2f",
    "${jndi:",
    "<script>",
    "%3cscript%3e",
    "/bin/sh",
    ";wget ",
    "|cat /etc/passwd",
    "cmd.exe",
    "eval(",
    "base64_decode(",
];

/// Paths that indicate enumeration when probed blindly.
const ENUMERATION_MARKERS: &[&str] = &[
    "/admin",
    "/login",
    "/wp-login",
    "/wp-admin",
    "/backup",
    "/.git",
    "/.env",
    "/.svn",
    "/config",
    "/phpinfo",
    "/api",
    "/test",
    "/old",
    "/tmp",
    "/static",
    "/images",
    "/uploads",
    "/robots.txt",
    "/.well-known",
];

/// The signature database (wraps the static tables; real deployments would
/// refresh from a feed).
#[derive(Debug, Clone, Default)]
pub struct ExploitSignatureDb;

impl ExploitSignatureDb {
    pub fn new() -> Self {
        Self
    }

    pub fn signature_count(&self) -> usize {
        EXPLOIT_SIGNATURES.len()
    }

    /// Does the path carry a known exploit payload?
    pub fn matches(&self, path: &str) -> bool {
        let lower = path.to_ascii_lowercase();
        EXPLOIT_SIGNATURES.iter().any(|sig| lower.contains(sig))
    }
}

/// Classify one request path.
pub fn classify_path(path: &str) -> PayloadClass {
    let db = ExploitSignatureDb::new();
    if db.matches(path) {
        return PayloadClass::Exploit;
    }
    let lower = path.to_ascii_lowercase();
    if lower == "/" || lower == "/index.html" || lower == "/favicon.ico" {
        return PayloadClass::Benign;
    }
    if ENUMERATION_MARKERS.iter().any(|m| lower.starts_with(m)) {
        return PayloadClass::Enumeration;
    }
    // Unknown deep paths probed blind still count as enumeration.
    PayloadClass::Enumeration
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homepage_is_benign() {
        assert_eq!(classify_path("/"), PayloadClass::Benign);
        assert_eq!(classify_path("/index.html"), PayloadClass::Benign);
    }

    #[test]
    fn scanner_paths_are_enumeration() {
        for path in [
            "/admin/",
            "/.git/config",
            "/wp-login.php",
            "/backup/",
            "/robots.txt",
        ] {
            assert_eq!(classify_path(path), PayloadClass::Enumeration, "{path}");
        }
    }

    #[test]
    fn exploit_signatures_detected() {
        for path in [
            "/search?q=1' OR 1=1--",
            "/download?f=../../etc/passwd",
            "/x?p=${jndi:ldap://evil}",
            "/q?s=<script>alert(1)</script>",
            "/?cmd=UNION SELECT password FROM users",
        ] {
            assert_eq!(classify_path(path), PayloadClass::Exploit, "{path}");
        }
    }

    #[test]
    fn signature_matching_is_case_insensitive() {
        let db = ExploitSignatureDb::new();
        assert!(db.matches("/a?x=UNION SELECT 1"));
        assert!(db.matches("/a?x=union select 1"));
        assert!(!db.matches("/a?x=unionized selection"));
        assert!(db.signature_count() > 10);
    }
}
