//! Property tests over the simulator: random topologies yield well-formed,
//! deterministic routes; the TCP stack survives arbitrary segment soup.

use proptest::prelude::*;
use shadow_geo::{Asn, Region};
use shadow_netsim::tcp::TcpStack;
use shadow_netsim::topology::{LinkClass, NodeId, TopologyBuilder};
use shadow_packet::tcp::{TcpFlags, TcpSegment};
use std::net::Ipv4Addr;

/// Build a random connected topology: a chain of `n` ASes with extra chords,
/// 1-4 routers each, one host in the first and last AS.
fn build(
    seed: u64,
    n: usize,
    routers: usize,
    chords: &[(usize, usize)],
) -> (shadow_netsim::Topology, NodeId, NodeId) {
    let regions = [
        Region::Europe,
        Region::EastAsia,
        Region::NorthAmerica,
        Region::Africa,
    ];
    let mut tb = TopologyBuilder::new(seed);
    for i in 0..n {
        tb.add_as(Asn(100 + i as u32), regions[i % regions.len()]);
    }
    for i in 0..n - 1 {
        tb.link(Asn(100 + i as u32), Asn(101 + i as u32)).unwrap();
    }
    for &(a, b) in chords {
        let (a, b) = (a % n, b % n);
        if a != b && !tb.has_link(Asn(100 + a as u32), Asn(100 + b as u32)) {
            tb.link(Asn(100 + a as u32), Asn(100 + b as u32)).unwrap();
        }
    }
    for i in 0..n {
        for r in 0..routers {
            tb.add_router(
                Asn(100 + i as u32),
                Ipv4Addr::new(10, i as u8, 0, r as u8 + 1),
                true,
            )
            .unwrap();
        }
    }
    let src = tb.add_host(Asn(100), Ipv4Addr::new(10, 0, 1, 1)).unwrap();
    let dst = tb
        .add_host(
            Asn(100 + n as u32 - 1),
            Ipv4Addr::new(10, n as u8 - 1, 1, 1),
        )
        .unwrap();
    (tb.build().unwrap(), src, dst)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn routes_are_well_formed(
        seed in any::<u64>(),
        n in 2usize..8,
        routers in 1usize..4,
        chords in proptest::collection::vec((0usize..8, 0usize..8), 0..4),
    ) {
        let (topo, src, dst) = build(seed, n, routers, &chords);
        let route = topo.route(src, dst).expect("connected by construction");
        prop_assert_eq!(route[0], src);
        prop_assert_eq!(*route.last().unwrap(), dst);
        for &hop in &route[1..route.len() - 1] {
            prop_assert!(topo.node(hop).is_router());
        }
        // No immediate self-loops.
        for pair in route.windows(2) {
            prop_assert_ne!(pair[0], pair[1]);
        }
        // Deterministic.
        prop_assert_eq!(topo.route(src, dst).unwrap(), route);
    }

    #[test]
    fn latencies_respect_link_classes(
        seed in any::<u64>(),
        n in 2usize..6,
        routers in 1usize..4,
    ) {
        let (topo, src, dst) = build(seed, n, routers, &[]);
        let route = topo.route(src, dst).unwrap();
        for pair in route.windows(2) {
            let ms = topo.latency_ms(pair[0], pair[1]);
            match topo.link_class(pair[0], pair[1]) {
                LinkClass::IntraAs => prop_assert!((1..=4).contains(&ms)),
                LinkClass::InterAsSameRegion => prop_assert!((5..=24).contains(&ms)),
                LinkClass::InterRegion => prop_assert!((40..=119).contains(&ms)),
            }
            prop_assert_eq!(ms, topo.latency_ms(pair[1], pair[0]));
        }
    }

    #[test]
    fn tcp_stack_survives_segment_soup(
        seed in any::<u32>(),
        segments in proptest::collection::vec(
            (any::<u16>(), any::<u16>(), any::<u32>(), any::<u32>(), any::<u8>(),
             proptest::collection::vec(any::<u8>(), 0..32)),
            0..32,
        ),
    ) {
        let mut stack = TcpStack::new(seed);
        stack.listen(80);
        let peer = Ipv4Addr::new(192, 0, 2, 1);
        for (sp, dp, seq, ack, flags, payload) in segments {
            let seg = TcpSegment::new(sp, dp, seq, ack, TcpFlags(flags), payload);
            let mut out = Vec::new();
            let _ = stack.on_segment(peer, seg, &mut out);
            // Whatever happens, emitted segments must encode/decode cleanly.
            for seg in out {
                let bytes = seg.encode();
                prop_assert_eq!(TcpSegment::decode(&bytes).unwrap(), seg);
            }
        }
    }

    #[test]
    fn tcp_handshake_works_for_any_seeds(client_seed in any::<u32>(), server_seed in any::<u32>()) {
        let mut client = TcpStack::new(client_seed);
        let mut server = TcpStack::new(server_seed);
        server.listen(443);
        let client_addr = Ipv4Addr::new(10, 0, 0, 1);
        let server_addr = Ipv4Addr::new(10, 0, 0, 2);
        let mut c_out = Vec::new();
        let key = client.connect(server_addr, 443, &mut c_out);
        let mut established = false;
        for _ in 0..8 {
            let mut s_out = Vec::new();
            for seg in c_out.drain(..) {
                server.on_segment(client_addr, seg, &mut s_out);
            }
            let mut next_c = Vec::new();
            for seg in s_out {
                for ev in client.on_segment(server_addr, seg, &mut next_c) {
                    if matches!(ev, shadow_netsim::tcp::TcpEvent::Established(k) if k == key) {
                        established = true;
                    }
                }
            }
            c_out = next_c;
            if established && c_out.is_empty() {
                break;
            }
        }
        prop_assert!(established, "handshake must complete for any ISN pair");
    }
}
