//! Transport-layer demultiplexing helper shared by every host
//! implementation: an IPv4 payload becomes a typed UDP/TCP/ICMP message.

use shadow_packet::icmp::IcmpMessage;
use shadow_packet::ipv4::{IpProtocol, Ipv4Packet};
use shadow_packet::tcp::TcpSegment;
use shadow_packet::udp::UdpDatagram;
use shadow_packet::DecodeError;

/// A decoded transport payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    Udp(UdpDatagram),
    Tcp(TcpSegment),
    Icmp(IcmpMessage),
}

impl Transport {
    /// Decode the transport message inside `pkt`.
    pub fn parse(pkt: &Ipv4Packet) -> Result<Self, DecodeError> {
        match pkt.header.protocol {
            IpProtocol::Udp => UdpDatagram::decode_shared(&pkt.payload).map(Transport::Udp),
            IpProtocol::Tcp => TcpSegment::decode_shared(&pkt.payload).map(Transport::Tcp),
            IpProtocol::Icmp => IcmpMessage::decode(&pkt.payload).map(Transport::Icmp),
            IpProtocol::Other(n) => Err(DecodeError::Unsupported {
                what: "IP protocol",
                value: u32::from(n),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_packet::ipv4::DEFAULT_TTL;
    use std::net::Ipv4Addr;

    fn wrap(proto: IpProtocol, payload: Vec<u8>) -> Ipv4Packet {
        Ipv4Packet::new(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            proto,
            DEFAULT_TTL,
            1,
            payload,
        )
    }

    #[test]
    fn demuxes_udp() {
        let dg = UdpDatagram::new(53, 53, b"q".to_vec());
        let pkt = wrap(IpProtocol::Udp, dg.encode());
        assert_eq!(Transport::parse(&pkt).unwrap(), Transport::Udp(dg));
    }

    #[test]
    fn demuxes_tcp() {
        let seg = TcpSegment::syn(1, 80, 0);
        let pkt = wrap(IpProtocol::Tcp, seg.encode());
        assert_eq!(Transport::parse(&pkt).unwrap(), Transport::Tcp(seg));
    }

    #[test]
    fn demuxes_icmp() {
        let msg = IcmpMessage::EchoRequest {
            identifier: 5,
            sequence: 1,
            payload: vec![],
        };
        let pkt = wrap(IpProtocol::Icmp, msg.encode());
        assert_eq!(Transport::parse(&pkt).unwrap(), Transport::Icmp(msg));
    }

    #[test]
    fn rejects_unknown_protocol() {
        let pkt = wrap(IpProtocol::Other(47), vec![1, 2, 3]);
        assert!(Transport::parse(&pkt).is_err());
    }
}
