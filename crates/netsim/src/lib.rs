//! # shadow-netsim
//!
//! A deterministic, discrete-event, packet-level Internet simulator — the
//! substitute for the real Internet the paper measures (see DESIGN.md §2).
//!
//! The pieces:
//!
//! * [`time`] — simulated clock ([`SimTime`], millisecond resolution over the
//!   campaign's simulated two months);
//! * [`topology`] — countries → ASes → routers/hosts, AS-level shortest-path
//!   routing expanded into router-level hop sequences, per-hop latencies,
//!   anycast (one address served by several instances, nearest wins);
//! * [`engine`] — the event loop: per-hop forwarding with TTL decrement,
//!   ICMP Time Exceeded generation (the Phase-II traceroute signal),
//!   pluggable endpoint [`Host`]s and on-path [`WireTap`]s (where DPI-style
//!   traffic observers attach);
//! * [`tcp`] — a segment-level TCP endpoint state machine (handshakes,
//!   data, teardown) shared by every host that speaks HTTP or TLS;
//! * [`fault`] — deterministic fault injection: value-derived per-packet
//!   loss/duplication/jitter, node and link outage windows, ICMP rate
//!   limiting, consulted by the engine only when a profile is installed.
//!
//! Everything is deterministic: same topology + same injected events ⇒
//! byte-identical packet streams.

pub mod engine;
pub mod fault;
pub mod slab;
pub mod tcp;
pub mod time;
pub mod topology;
pub mod trace;
pub mod transport;
pub mod wheel;

pub use engine::{Ctx, Engine, EngineStats, Host, TapVerdict, WireTap};
pub use fault::{LinkConditioner, LinkVerdict, OutageWindow};
pub use slab::{Slab, SlabKey};
pub use tcp::{ConnKey, TcpEvent, TcpStack};
pub use time::{SimDuration, SimTime};
pub use topology::{LinkClass, NodeId, NodeKind, Topology, TopologyBuilder, TopologyError};
pub use trace::{PacketTrace, TraceEntry};
pub use transport::Transport;
pub use wheel::TimeWheel;
