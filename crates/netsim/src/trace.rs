//! A pcap-style packet trace: a bounded ring buffer of forwarding events,
//! attachable to any router as a wire tap. Used for debugging simulated
//! campaigns ("what actually crossed this hop?") and by tests that need to
//! assert on raw traffic without writing a bespoke tap.

use crate::engine::{Ctx, TapVerdict, WireTap};
use crate::time::SimTime;
use crate::topology::NodeId;
use crate::transport::Transport;
use shadow_packet::ipv4::{IpProtocol, Ipv4Packet};
use shadow_packet::DecodedView;
use std::any::Any;
use std::collections::VecDeque;
use std::net::Ipv4Addr;

/// One traced packet, summarized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    pub at: SimTime,
    pub node: NodeId,
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub protocol: IpProtocol,
    pub ttl: u8,
    /// Transport summary: ports for UDP/TCP, type for ICMP.
    pub summary: String,
}

/// The ring-buffer tap.
pub struct PacketTrace {
    capacity: usize,
    entries: VecDeque<TraceEntry>,
    pub total_seen: u64,
}

impl PacketTrace {
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            entries: VecDeque::new(),
            total_seen: 0,
        }
    }

    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn summarize(pkt: &Ipv4Packet) -> String {
        match Transport::parse(pkt) {
            Ok(Transport::Udp(dg)) => format!("udp {} -> {}", dg.src_port, dg.dst_port),
            Ok(Transport::Tcp(seg)) => format!(
                "tcp {} -> {} [{}{}{}{}] len {}",
                seg.src_port,
                seg.dst_port,
                if seg.flags.contains(shadow_packet::tcp::TcpFlags::SYN) {
                    "S"
                } else {
                    ""
                },
                if seg.flags.contains(shadow_packet::tcp::TcpFlags::ACK) {
                    "A"
                } else {
                    ""
                },
                if seg.flags.contains(shadow_packet::tcp::TcpFlags::FIN) {
                    "F"
                } else {
                    ""
                },
                if seg.flags.contains(shadow_packet::tcp::TcpFlags::RST) {
                    "R"
                } else {
                    ""
                },
                seg.payload.len(),
            ),
            Ok(Transport::Icmp(msg)) => match msg {
                shadow_packet::icmp::IcmpMessage::TimeExceeded { .. } => {
                    "icmp time-exceeded".into()
                }
                shadow_packet::icmp::IcmpMessage::EchoRequest { .. } => "icmp echo-request".into(),
                shadow_packet::icmp::IcmpMessage::EchoReply { .. } => "icmp echo-reply".into(),
                shadow_packet::icmp::IcmpMessage::DestinationUnreachable { .. } => {
                    "icmp dest-unreachable".into()
                }
            },
            Err(_) => "opaque".into(),
        }
    }
}

impl WireTap for PacketTrace {
    fn on_packet(
        &mut self,
        pkt: &Ipv4Packet,
        _view: &DecodedView,
        at: NodeId,
        ctx: &mut Ctx<'_>,
    ) -> TapVerdict {
        self.total_seen += 1;
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(TraceEntry {
            at: ctx.now(),
            node: at,
            src: pkt.header.src,
            dst: pkt.header.dst,
            protocol: pkt.header.protocol,
            ttl: pkt.header.ttl,
            summary: Self::summarize(pkt),
        });
        TapVerdict::Continue
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::topology::TopologyBuilder;
    use shadow_geo::{Asn, Region};
    use shadow_packet::ipv4::DEFAULT_TTL;
    use shadow_packet::udp::UdpDatagram;

    fn world() -> (Engine, NodeId, NodeId, Ipv4Addr, Ipv4Addr) {
        let mut tb = TopologyBuilder::new(3);
        tb.add_as(Asn(1), Region::Europe);
        let router = tb
            .add_router(Asn(1), Ipv4Addr::new(1, 0, 0, 1), true)
            .unwrap();
        let client_addr = Ipv4Addr::new(1, 1, 0, 1);
        let server_addr = Ipv4Addr::new(1, 1, 0, 2);
        let client = tb.add_host(Asn(1), client_addr).unwrap();
        let _server = tb.add_host(Asn(1), server_addr).unwrap();
        (
            Engine::new(tb.build().unwrap()),
            client,
            router,
            client_addr,
            server_addr,
        )
    }

    fn packet(src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) -> Ipv4Packet {
        Ipv4Packet::new(
            src,
            dst,
            IpProtocol::Udp,
            DEFAULT_TTL,
            1,
            UdpDatagram::new(1111, 2222, payload.to_vec()).encode(),
        )
    }

    #[test]
    fn records_forwarded_packets() {
        let (mut engine, client, router, client_addr, server_addr) = world();
        engine.add_tap(router, Box::new(PacketTrace::new(16)));
        for i in 0..3u64 {
            engine.inject(SimTime(i), client, packet(client_addr, server_addr, b"x"));
        }
        engine.run_to_completion();
        let trace = engine.tap_as::<PacketTrace>(router, 0).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.total_seen, 3);
        let entry = trace.entries().next().unwrap();
        assert_eq!(entry.src, client_addr);
        assert_eq!(entry.dst, server_addr);
        assert_eq!(entry.summary, "udp 1111 -> 2222");
        assert_eq!(entry.node, router);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let (mut engine, client, router, client_addr, server_addr) = world();
        engine.add_tap(router, Box::new(PacketTrace::new(2)));
        for i in 0..5u64 {
            engine.inject(
                SimTime(i * 10),
                client,
                packet(client_addr, server_addr, &[i as u8]),
            );
        }
        engine.run_to_completion();
        let trace = engine.tap_as::<PacketTrace>(router, 0).unwrap();
        assert_eq!(trace.len(), 2, "bounded by capacity");
        assert_eq!(trace.total_seen, 5);
        let first = trace.entries().next().unwrap();
        assert!(first.at >= SimTime(30), "oldest entries evicted");
    }
}
