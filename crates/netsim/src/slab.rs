//! [`Slab`]: a generational arena for in-flight event state.
//!
//! The engine's hot loop used to carry each queued event's payload (packet,
//! decode memo, route, indices — ~100 bytes) *inside* the time-wheel
//! buckets, so every stage of the queue (slot → due buffer → batch buffer)
//! moved the full payload and every bucket resize round-tripped the global
//! allocator with large blocks. The slab inverts that: event payloads live
//! in one flat, engine-owned arena that grows to the campaign's peak
//! in-flight population **once** and then recycles freed slots through a
//! free list; the wheel carries 8-byte [`SlabKey`]s.
//!
//! Keys are *generational*: each slot carries a generation counter bumped
//! on every removal, and a key only resolves while its generation matches.
//! A stale key (double-remove, use-after-free) returns `None` instead of
//! silently aliasing a recycled slot — turning the classic arena bug class
//! into a loud, testable failure.

/// Handle to an occupied (or once-occupied) slab slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlabKey {
    index: u32,
    generation: u32,
}

impl SlabKey {
    /// The raw slot index (diagnostics only — resolving a value must go
    /// through [`Slab::get`]/[`Slab::remove`] so the generation is checked).
    pub fn index(&self) -> u32 {
        self.index
    }
}

enum Slot<T> {
    Vacant { generation: u32 },
    Occupied { generation: u32, value: T },
}

/// A growable arena with free-list slot reuse and generational keys.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Live values.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocated slots (the high-water mark of the in-flight population).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Store `value`, reusing a freed slot when one exists.
    pub fn insert(&mut self, value: T) -> SlabKey {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            let generation = match slot {
                Slot::Vacant { generation } => *generation,
                Slot::Occupied { .. } => unreachable!("free list points at occupied slot"),
            };
            *slot = Slot::Occupied { generation, value };
            SlabKey { index, generation }
        } else {
            let index = u32::try_from(self.slots.len()).expect("slab exceeds u32 slots");
            self.slots.push(Slot::Occupied {
                generation: 0,
                value,
            });
            SlabKey {
                index,
                generation: 0,
            }
        }
    }

    /// Take the value behind `key`; `None` if the key is stale (the slot
    /// was freed — and possibly reused — since the key was issued).
    pub fn remove(&mut self, key: SlabKey) -> Option<T> {
        let slot = self.slots.get_mut(key.index as usize)?;
        match slot {
            Slot::Occupied { generation, .. } if *generation == key.generation => {
                let next_generation = generation.wrapping_add(1);
                let old = std::mem::replace(
                    slot,
                    Slot::Vacant {
                        generation: next_generation,
                    },
                );
                self.free.push(key.index);
                self.len -= 1;
                match old {
                    Slot::Occupied { value, .. } => Some(value),
                    Slot::Vacant { .. } => unreachable!("matched occupied above"),
                }
            }
            _ => None,
        }
    }

    /// Borrow the value behind `key`, generation-checked.
    pub fn get(&self, key: SlabKey) -> Option<&T> {
        match self.slots.get(key.index as usize)? {
            Slot::Occupied { generation, value } if *generation == key.generation => Some(value),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.remove(b), Some("b"));
        assert!(slab.is_empty());
    }

    #[test]
    fn slots_are_reused_and_capacity_stays_at_peak() {
        let mut slab = Slab::new();
        let keys: Vec<_> = (0..100).map(|i| slab.insert(i)).collect();
        assert_eq!(slab.capacity(), 100);
        for key in keys {
            slab.remove(key).unwrap();
        }
        // Refill: the freed slots are recycled, no new slots allocated.
        for i in 0..100 {
            slab.insert(i);
        }
        assert_eq!(slab.capacity(), 100);
        assert_eq!(slab.len(), 100);
    }

    #[test]
    fn stale_keys_are_rejected() {
        let mut slab = Slab::new();
        let key = slab.insert(1u32);
        assert_eq!(slab.remove(key), Some(1));
        assert_eq!(slab.remove(key), None, "double remove");
        // The slot gets recycled under a new generation; the old key still
        // must not resolve.
        let newer = slab.insert(2u32);
        assert_eq!(newer.index(), key.index(), "slot recycled");
        assert_eq!(slab.get(key), None);
        assert_eq!(slab.get(newer), Some(&2));
    }

    #[test]
    fn interleaved_churn_keeps_len_consistent() {
        let mut slab = Slab::new();
        let mut live = Vec::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        for i in 0..10_000u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if state.is_multiple_of(3) && !live.is_empty() {
                let idx = (state as usize / 3) % live.len();
                let key: SlabKey = live.swap_remove(idx);
                assert!(slab.remove(key).is_some());
            } else {
                live.push(slab.insert(i));
            }
            assert_eq!(slab.len(), live.len());
        }
        // Steady-state churn must not grow the arena past its peak.
        assert!(slab.capacity() <= 10_000);
    }
}
