//! [`TimeWheel`]: the engine's indexed event queue.
//!
//! A discrete-event simulation of packet forwarding schedules almost all of
//! its events a few link latencies ahead (1–119 ms per hop), while a small
//! minority — probe timers, retention expiries — land seconds to days out.
//! A binary heap pays `O(log n)` per operation over the whole mixed
//! population; this queue splits it:
//!
//! * **Wheel**: a power-of-two ring of per-millisecond buckets covering
//!   `[cursor, cursor + SLOTS)`. Push is `O(1)`; pop scans an occupancy
//!   bitmap (one or two words for hot traffic) and drains a bucket.
//! * **Overflow heap**: events beyond the wheel horizon — or behind the
//!   cursor, which only test harnesses produce — fall back to a
//!   `BinaryHeap`. They are popped straight from the heap when due; the
//!   wheel and heap fronts are compared on every pop, so no migration step
//!   is needed and no ordering corner exists between the two.
//!
//! ## Tie-break rule
//!
//! Pop order is exactly ascending `(at, seq)` — identical to the
//! `BinaryHeap<Event>` ordering this queue replaced (earliest simulated
//! time first; same-timestamp events in push order). The property test at
//! the bottom pins the equivalence against a reference heap, and the
//! sharded-equivalence suite pins it end to end.
//!
//! Invariant that keeps buckets single-timestamped: every wheel-resident
//! event's time lies in `[cursor, cursor + SLOTS)`, and `cursor` never
//! decreases, so two distinct times in the window can never share a bucket
//! (they would differ by at least `SLOTS`).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Wheel size in 1 ms slots. 4096 ⇒ a ~4-second horizon, comfortably
/// covering per-hop latencies plus fault jitter; anything slower (probe
/// schedules, retention TTLs) belongs in the overflow heap anyway.
const SLOTS: usize = 4096;
const WORDS: usize = SLOTS / 64;

struct OverflowEntry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for OverflowEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for OverflowEntry<T> {}

impl<T> PartialOrd for OverflowEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for OverflowEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap via reversal, same rule the engine's `Event` used.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A bucketed timer wheel with a heap fallback; see the module docs.
pub struct TimeWheel<T> {
    slots: Box<[Vec<(SimTime, u64, T)>]>,
    occupied: [u64; WORDS],
    /// Lowest timestamp the wheel may currently hold.
    cursor: u64,
    /// Events resident in `slots` (excludes `due` and `overflow`).
    wheel_len: usize,
    overflow: BinaryHeap<OverflowEntry<T>>,
    /// The bucket being drained, reversed so `pop()` takes from the end in
    /// ascending-seq order.
    due: Vec<(SimTime, u64, T)>,
    /// Capacity recycling: the previous `due` vector, emptied. When a slot
    /// is drained its `Vec` moves to `due` and this spare (with whatever
    /// capacity it accumulated) moves into the slot, so bucket backing
    /// stores circulate instead of being reallocated every lap of the
    /// wheel.
    spare: Vec<(SimTime, u64, T)>,
}

impl<T> Default for TimeWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimeWheel<T> {
    pub fn new() -> Self {
        Self {
            slots: std::iter::repeat_with(Vec::new).take(SLOTS).collect(),
            occupied: [0; WORDS],
            cursor: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            due: Vec::new(),
            spare: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.wheel_len + self.due.len() + self.overflow.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert an event. `seq` values must be unique and increase across
    /// pushes — the engine's event counter provides both.
    pub fn push(&mut self, at: SimTime, seq: u64, item: T) {
        let t = at.0;
        if t >= self.cursor && t < self.cursor.saturating_add(SLOTS as u64) {
            let slot = (t % SLOTS as u64) as usize;
            self.slots[slot].push((at, seq, item));
            self.occupied[slot / 64] |= 1 << (slot % 64);
            self.wheel_len += 1;
        } else {
            self.overflow.push(OverflowEntry { at, seq, item });
        }
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_at(&mut self) -> Option<SimTime> {
        self.load_due();
        let due = self.due.last().map(|&(at, seq, _)| (at, seq));
        let over = self.overflow.peek().map(|e| (e.at, e.seq));
        match (due, over) {
            (None, None) => None,
            (Some((at, _)), None) => Some(at),
            (None, Some((at, _))) => Some(at),
            (Some(d), Some(o)) => Some(d.min(o).0),
        }
    }

    /// Remove and return the next event in ascending `(at, seq)` order.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        self.load_due();
        let due_key = self.due.last().map(|&(at, seq, _)| (at, seq));
        let over_key = self.overflow.peek().map(|e| (e.at, e.seq));
        let from_overflow = match (due_key, over_key) {
            (None, None) => return None,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some(d), Some(o)) => o < d,
        };
        if from_overflow {
            let e = self.overflow.pop().expect("peeked");
            // The cursor may advance past drained wheel ground, never
            // backwards (a past-cursor overflow event leaves it alone).
            self.cursor = self.cursor.max(e.at.0);
            Some((e.at, e.seq, e.item))
        } else {
            self.due.pop()
        }
    }

    /// Remove the maximal run of events sharing the earliest pending
    /// timestamp, appending them to `out` in ascending `(at, seq)` order.
    /// Equivalent to calling [`TimeWheel::pop`] until the timestamp
    /// changes — the engine's batched dispatch drains whole same-tick
    /// buckets through this in one reversed `memcpy` instead of one
    /// bitmap scan and two front comparisons per event. Returns the
    /// number of events appended.
    pub fn pop_batch(&mut self, out: &mut Vec<(SimTime, u64, T)>) -> usize {
        self.load_due();
        let due_at = self.due.last().map(|&(at, _, _)| at);
        let over_at = self.overflow.peek().map(|e| e.at);
        let at = match (due_at, over_at) {
            (None, None) => return 0,
            (Some(d), None) => d,
            (None, Some(o)) => o,
            (Some(d), Some(o)) => d.min(o),
        };
        let before = out.len();
        if due_at == Some(at) && over_at != Some(at) {
            // Fast path: the staged bucket is single-timestamped (see the
            // module invariant) and the overflow front is not due at this
            // tick, so the whole bucket drains at once. `due` is stored
            // reversed; `.rev()` restores ascending seq.
            out.extend(self.due.drain(..).rev());
        } else {
            // The overflow heap interleaves at this tick (far-future
            // events whose time has come, or a test harness's past-cursor
            // pushes): fall back to the per-event merge.
            while let Some(next) = self.peek_at() {
                if next != at {
                    break;
                }
                out.push(self.pop().expect("peeked"));
            }
        }
        out.len() - before
    }

    /// If no bucket is being drained, find the earliest occupied bucket,
    /// advance the cursor to its timestamp, and stage it for popping.
    fn load_due(&mut self) {
        if !self.due.is_empty() || self.wheel_len == 0 {
            return;
        }
        let start = (self.cursor % SLOTS as u64) as usize;
        let slot = self
            .next_occupied(start)
            .expect("wheel_len > 0 implies an occupied slot");
        debug_assert!(self.spare.is_empty());
        let fresh = std::mem::take(&mut self.spare);
        let mut bucket = std::mem::replace(&mut self.slots[slot], fresh);
        self.occupied[slot / 64] &= !(1 << (slot % 64));
        self.wheel_len -= bucket.len();
        debug_assert!(
            bucket
                .windows(2)
                .all(|w| w[0].0 == w[1].0 && w[0].1 < w[1].1),
            "bucket must be single-timestamped and seq-ascending"
        );
        self.cursor = bucket[0].0 .0;
        bucket.reverse(); // pop() takes from the end ⇒ ascending seq
                          // The drained `due` keeps its capacity; recycle it into the next
                          // drained slot instead of dropping it.
        self.spare = std::mem::replace(&mut self.due, bucket);
        self.spare.clear();
    }

    /// First occupied slot at or after `start`, scanning the bitmap
    /// circularly (word at a time, so a hot wheel costs one or two words).
    fn next_occupied(&self, start: usize) -> Option<usize> {
        let first_word = start / 64;
        // Mask off bits before `start` in its word.
        let head = self.occupied[first_word] & (!0u64 << (start % 64));
        if head != 0 {
            return Some(first_word * 64 + head.trailing_zeros() as usize);
        }
        for i in 1..=WORDS {
            let w = (first_word + i) % WORDS;
            let bits = if i == WORDS {
                // Wrapped fully around: the bits before `start` come last.
                self.occupied[w] & !(!0u64 << (start % 64))
            } else {
                self.occupied[w]
            };
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: the `BinaryHeap<Event>` the wheel replaced.
    struct RefHeap<T>(BinaryHeap<OverflowEntry<T>>);

    impl<T> RefHeap<T> {
        fn new() -> Self {
            Self(BinaryHeap::new())
        }

        fn push(&mut self, at: SimTime, seq: u64, item: T) {
            self.0.push(OverflowEntry { at, seq, item });
        }

        fn pop(&mut self) -> Option<(SimTime, u64, T)> {
            self.0.pop().map(|e| (e.at, e.seq, e.item))
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimeWheel::new();
        w.push(SimTime(5), 1, "a");
        w.push(SimTime(3), 2, "b");
        w.push(SimTime(5), 3, "c");
        w.push(SimTime(3), 4, "d");
        let order: Vec<_> = std::iter::from_fn(|| w.pop()).map(|(_, _, x)| x).collect();
        assert_eq!(order, vec!["b", "d", "a", "c"]);
    }

    #[test]
    fn same_timestamp_dispatch_order_matches_heap() {
        // The satellite guarantee: within a timestamp, the wheel dispatches
        // in exactly the order the old heap did (push order via seq).
        let mut wheel = TimeWheel::new();
        let mut heap = RefHeap::new();
        let mut seq = 0u64;
        // Many events on few timestamps, some in the wheel window, some far
        // beyond it, some pushed "late" (behind earlier pops).
        let times = [7u64, 3, 7, 100_000, 3, 7, 100_000, 3, 0, 50_000_000];
        for (i, &t) in times.iter().enumerate() {
            seq += 1;
            wheel.push(SimTime(t), seq, i);
            heap.push(SimTime(t), seq, i);
        }
        for _ in 0..3 {
            assert_eq!(wheel.pop(), heap.pop());
        }
        // Interleave more pushes mid-drain.
        for (i, &t) in [5u64, 5, 9_999_999, 5].iter().enumerate() {
            seq += 1;
            wheel.push(SimTime(t), seq, 100 + i);
            heap.push(SimTime(t), seq, 100 + i);
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert!(wheel.is_empty());
    }

    #[test]
    fn far_future_and_past_events_take_the_overflow_path() {
        let mut w = TimeWheel::new();
        w.push(SimTime(1), 1, "near");
        w.push(SimTime(10_000_000), 2, "far");
        assert_eq!(w.pop().unwrap().2, "near");
        // Cursor is now at 1; a push behind it still orders correctly.
        w.push(SimTime(0), 3, "past");
        assert_eq!(w.pop().unwrap().2, "past");
        assert_eq!(w.pop().unwrap().2, "far");
        assert!(w.pop().is_none());
    }

    #[test]
    fn len_tracks_all_three_regions() {
        let mut w = TimeWheel::new();
        assert!(w.is_empty());
        w.push(SimTime(2), 1, ());
        w.push(SimTime(2), 2, ());
        w.push(SimTime(999_999_999), 3, ());
        assert_eq!(w.len(), 3);
        assert_eq!(w.peek_at(), Some(SimTime(2)));
        w.pop();
        assert_eq!(w.len(), 2, "due buffer still counted");
        w.pop();
        w.pop();
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn pop_batch_drains_exactly_one_timestamp_run() {
        let mut w = TimeWheel::new();
        w.push(SimTime(3), 1, "a");
        w.push(SimTime(3), 2, "b");
        w.push(SimTime(5), 3, "c");
        w.push(SimTime(3), 4, "d");
        let mut out = Vec::new();
        assert_eq!(w.pop_batch(&mut out), 3);
        assert_eq!(
            out,
            vec![
                (SimTime(3), 1, "a"),
                (SimTime(3), 2, "b"),
                (SimTime(3), 4, "d")
            ]
        );
        out.clear();
        assert_eq!(w.pop_batch(&mut out), 1);
        assert_eq!(out, vec![(SimTime(5), 3, "c")]);
        assert_eq!(w.pop_batch(&mut out), 0);
        assert!(w.is_empty());
    }

    #[test]
    fn pop_batch_merges_overflow_events_due_at_the_same_tick() {
        let mut w = TimeWheel::new();
        // Far-future push lands in the overflow heap with a LOW seq...
        w.push(SimTime(10_000_000), 1, 100u32);
        // ...drain an event just inside the horizon so the cursor advances
        // to within one wheel lap of it.
        w.push(SimTime(9_999_000), 2, 0);
        assert_eq!(w.pop().unwrap().2, 0);
        // ...then wheel-resident pushes at the very same tick with HIGHER
        // seqs. pop_batch must interleave heap and bucket by (at, seq).
        w.push(SimTime(10_000_000), 3, 101);
        w.push(SimTime(10_000_000), 4, 102);
        let mut out = Vec::new();
        assert_eq!(w.pop_batch(&mut out), 3);
        let order: Vec<u32> = out.iter().map(|&(_, _, v)| v).collect();
        assert_eq!(order, vec![100, 101, 102]);
        assert!(w.is_empty());
    }

    #[test]
    fn pop_batch_matches_pop_sequence_on_random_workload() {
        let mut batched = TimeWheel::new();
        let mut single = TimeWheel::new();
        let mut seq = 0u64;
        let mut state = 0xdead_beef_cafe_f00du64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut clock = 0u64;
        let mut out = Vec::new();
        for _ in 0..3_000 {
            if rand() % 3 < 2 {
                let delta = match rand() % 8 {
                    0 => rand() % 60_000_000,
                    _ => (rand() % 30) * 2,
                };
                seq += 1;
                batched.push(SimTime(clock + delta), seq, seq);
                single.push(SimTime(clock + delta), seq, seq);
            } else {
                out.clear();
                let n = batched.pop_batch(&mut out);
                for expected in &out {
                    assert_eq!(single.pop().as_ref(), Some(expected));
                }
                if n > 0 {
                    clock = clock.max(out[0].0 .0);
                }
            }
        }
        loop {
            out.clear();
            if batched.pop_batch(&mut out) == 0 {
                assert!(single.pop().is_none());
                break;
            }
            for expected in &out {
                assert_eq!(single.pop().as_ref(), Some(expected));
            }
        }
    }

    #[test]
    fn randomized_equivalence_with_reference_heap() {
        // Deterministic pseudo-random workload: mixed near/far times,
        // interleaved pushes and pops, compared op for op with the heap.
        let mut wheel = TimeWheel::new();
        let mut heap = RefHeap::new();
        let mut seq = 0u64;
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut clock = 0u64;
        for _ in 0..5_000 {
            match rand() % 3 {
                0 | 1 => {
                    // Push near the clock, sometimes far out, on a coarse
                    // grid so timestamp collisions are common.
                    let delta = match rand() % 10 {
                        0 => rand() % 100_000_000, // far future
                        _ => (rand() % 50) * 3,    // hot window, collisions
                    };
                    seq += 1;
                    wheel.push(SimTime(clock + delta), seq, seq);
                    heap.push(SimTime(clock + delta), seq, seq);
                }
                _ => {
                    let (a, b) = (wheel.pop(), heap.pop());
                    assert_eq!(a, b);
                    if let Some((at, _, _)) = a {
                        clock = clock.max(at.0);
                    }
                }
            }
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
