//! Simulated time. The paper's campaign runs Mar–Apr 2024; here the clock
//! starts at zero and advances in milliseconds for (up to) 60 simulated
//! days. There is no wall clock anywhere in the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Milliseconds since campaign start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn millis(self) -> u64 {
        self.0
    }

    pub fn secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Elapsed duration since `earlier`; saturates at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn from_millis(ms: u64) -> Self {
        Self(ms)
    }

    pub fn from_secs(s: u64) -> Self {
        Self(s * 1_000)
    }

    pub fn from_mins(m: u64) -> Self {
        Self::from_secs(m * 60)
    }

    pub fn from_hours(h: u64) -> Self {
        Self::from_mins(h * 60)
    }

    pub fn from_days(d: u64) -> Self {
        Self::from_hours(d * 24)
    }

    pub fn millis(self) -> u64 {
        self.0
    }

    pub fn secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    pub fn hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    pub fn days_f64(self) -> f64 {
        self.0 as f64 / 86_400_000.0
    }

    /// Saturating multiply, for backoff schedules.
    pub fn saturating_mul(self, k: u64) -> Self {
        Self(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0;
        if ms < 1_000 {
            write!(f, "{ms}ms")
        } else if ms < 60_000 {
            write!(f, "{:.1}s", ms as f64 / 1_000.0)
        } else if ms < 3_600_000 {
            write!(f, "{:.1}min", ms as f64 / 60_000.0)
        } else if ms < 86_400_000 {
            write!(f, "{:.1}h", ms as f64 / 3_600_000.0)
        } else {
            write!(f, "{:.1}d", ms as f64 / 86_400_000.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(90);
        assert_eq!(t.millis(), 90_000);
        assert_eq!(t.secs(), 90);
        assert_eq!(t - SimTime(30_000), SimDuration::from_secs(60));
        // saturating
        assert_eq!(SimTime(5).since(SimTime(10)), SimDuration::ZERO);
    }

    #[test]
    fn constructors_compose() {
        assert_eq!(SimDuration::from_days(1).millis(), 86_400_000);
        assert_eq!(SimDuration::from_hours(2).hours_f64(), 2.0);
        assert_eq!(SimDuration::from_mins(3).millis(), 180_000);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(SimDuration::from_millis(12).to_string(), "12ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.0s");
        assert_eq!(SimDuration::from_mins(30).to_string(), "30.0min");
        assert_eq!(SimDuration::from_hours(11).to_string(), "11.0h");
        assert_eq!(SimDuration::from_days(10).to_string(), "10.0d");
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration::from_hours(1) < SimDuration::from_days(1));
    }
}
