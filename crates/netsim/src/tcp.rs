//! A segment-level TCP endpoint state machine.
//!
//! The paper's HTTP and TLS decoys are sent "after successful TCP
//! handshakes" (Phase I), while Phase II deliberately skips handshakes. This
//! module gives every simulated endpoint (vantage points, web servers,
//! honeypots, probe origins) a shared connection engine: three-way
//! handshake, in-order data exchange, FIN/RST teardown.
//!
//! Simplifications, safe because simulated links are reliable and in-order:
//! no retransmission, no congestion control, no out-of-order reassembly.
//! Sequence numbers are still tracked and verified so that tests can assert
//! real handshake semantics.

use shadow_packet::tcp::{TcpFlags, TcpSegment};
use shadow_packet::SharedBytes;
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Connection identifier from the stack owner's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnKey {
    pub peer: Ipv4Addr,
    pub peer_port: u16,
    pub local_port: u16,
}

impl fmt::Display for ConnKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}<->:{}", self.peer, self.peer_port, self.local_port)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    SynSent,
    SynReceived,
    Established,
    FinWait,
    CloseWait,
    Closed,
}

#[derive(Debug)]
struct Conn {
    state: ConnState,
    /// Next sequence number we will send.
    snd_nxt: u32,
    /// Next sequence number we expect from the peer.
    rcv_nxt: u32,
}

/// Events surfaced to the host embedding the stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpEvent {
    /// Handshake completed (either role).
    Established(ConnKey),
    /// In-order payload bytes arrived (shared with the segment — surfacing
    /// data to the application copies nothing).
    Data(ConnKey, SharedBytes),
    /// Peer closed cleanly.
    Closed(ConnKey),
    /// Connection reset (peer RST or protocol violation).
    Reset(ConnKey),
}

/// Per-host TCP machinery. The owner passes outbound segments to the
/// network itself (the stack only produces `TcpSegment`s, keeping it free of
/// engine dependencies).
#[derive(Debug)]
pub struct TcpStack {
    conns: HashMap<ConnKey, Conn>,
    listen_ports: Vec<u16>,
    next_ephemeral: u16,
    isn_counter: u32,
}

impl TcpStack {
    pub fn new(isn_seed: u32) -> Self {
        Self {
            conns: HashMap::new(),
            listen_ports: Vec::new(),
            next_ephemeral: 32_768,
            isn_counter: isn_seed,
        }
    }

    /// Accept inbound connections on `port`.
    pub fn listen(&mut self, port: u16) {
        if !self.listen_ports.contains(&port) {
            self.listen_ports.push(port);
        }
    }

    pub fn is_listening(&self, port: u16) -> bool {
        self.listen_ports.contains(&port)
    }

    /// Number of live (non-closed) connections.
    pub fn active_connections(&self) -> usize {
        self.conns
            .values()
            .filter(|c| c.state != ConnState::Closed)
            .count()
    }

    fn next_isn(&mut self) -> u32 {
        self.isn_counter = self
            .isn_counter
            .wrapping_mul(0x0019_660d)
            .wrapping_add(0x3c6e_f35f);
        self.isn_counter
    }

    fn alloc_port(&mut self) -> u16 {
        loop {
            let port = self.next_ephemeral;
            self.next_ephemeral = if self.next_ephemeral == u16::MAX {
                32_768
            } else {
                self.next_ephemeral + 1
            };
            let in_use = self.conns.keys().any(|k| k.local_port == port);
            if !in_use && !self.listen_ports.contains(&port) {
                return port;
            }
        }
    }

    /// Open a connection; returns the key and pushes the SYN to `out`.
    pub fn connect(
        &mut self,
        peer: Ipv4Addr,
        peer_port: u16,
        out: &mut Vec<TcpSegment>,
    ) -> ConnKey {
        let local_port = self.alloc_port();
        let key = ConnKey {
            peer,
            peer_port,
            local_port,
        };
        let isn = self.next_isn();
        self.conns.insert(
            key,
            Conn {
                state: ConnState::SynSent,
                snd_nxt: isn.wrapping_add(1),
                rcv_nxt: 0,
            },
        );
        out.push(TcpSegment::syn(local_port, peer_port, isn));
        key
    }

    /// Send payload on an established connection. Returns `false` (and
    /// emits nothing) if the connection cannot carry data.
    pub fn send(
        &mut self,
        key: ConnKey,
        data: impl Into<SharedBytes>,
        out: &mut Vec<TcpSegment>,
    ) -> bool {
        let Some(conn) = self.conns.get_mut(&key) else {
            return false;
        };
        if conn.state != ConnState::Established && conn.state != ConnState::CloseWait {
            return false;
        }
        let seg = TcpSegment::new(
            key.local_port,
            key.peer_port,
            conn.snd_nxt,
            conn.rcv_nxt,
            TcpFlags::PSH_ACK,
            data,
        );
        conn.snd_nxt = conn.snd_nxt.wrapping_add(seg.seq_len());
        out.push(seg);
        true
    }

    /// Close our side (FIN).
    pub fn close(&mut self, key: ConnKey, out: &mut Vec<TcpSegment>) {
        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        match conn.state {
            ConnState::Established | ConnState::CloseWait | ConnState::SynReceived => {
                let seg = TcpSegment::new(
                    key.local_port,
                    key.peer_port,
                    conn.snd_nxt,
                    conn.rcv_nxt,
                    TcpFlags::FIN_ACK,
                    SharedBytes::empty(),
                );
                conn.snd_nxt = conn.snd_nxt.wrapping_add(1);
                conn.state = if conn.state == ConnState::CloseWait {
                    ConnState::Closed
                } else {
                    ConnState::FinWait
                };
                out.push(seg);
            }
            _ => {}
        }
    }

    /// Abort with RST.
    pub fn abort(&mut self, key: ConnKey, out: &mut Vec<TcpSegment>) {
        if let Some(conn) = self.conns.get_mut(&key) {
            out.push(TcpSegment::new(
                key.local_port,
                key.peer_port,
                conn.snd_nxt,
                conn.rcv_nxt,
                TcpFlags::RST.union(TcpFlags::ACK),
                SharedBytes::empty(),
            ));
            conn.state = ConnState::Closed;
        }
    }

    /// Feed an inbound segment; emits response segments onto `out` and
    /// returns application-visible events.
    pub fn on_segment(
        &mut self,
        peer: Ipv4Addr,
        seg: TcpSegment,
        out: &mut Vec<TcpSegment>,
    ) -> Vec<TcpEvent> {
        let key = ConnKey {
            peer,
            peer_port: seg.src_port,
            local_port: seg.dst_port,
        };
        let mut events = Vec::new();

        if seg.flags.contains(TcpFlags::RST) {
            if let Some(conn) = self.conns.get_mut(&key) {
                if conn.state != ConnState::Closed {
                    conn.state = ConnState::Closed;
                    events.push(TcpEvent::Reset(key));
                }
            }
            return events;
        }

        match self.conns.get_mut(&key) {
            None => {
                if seg.flags.is_syn() && self.listen_ports.contains(&seg.dst_port) {
                    // Passive open.
                    let isn = self.next_isn();
                    self.conns.insert(
                        key,
                        Conn {
                            state: ConnState::SynReceived,
                            snd_nxt: isn.wrapping_add(1),
                            rcv_nxt: seg.seq.wrapping_add(1),
                        },
                    );
                    out.push(TcpSegment::syn_ack(&seg, isn));
                } else if !seg.flags.contains(TcpFlags::RST) {
                    // No such connection: refuse.
                    out.push(TcpSegment::rst(&seg));
                }
            }
            Some(conn) => match conn.state {
                ConnState::SynSent => {
                    if seg.flags.is_syn_ack() && seg.ack == conn.snd_nxt {
                        conn.rcv_nxt = seg.seq.wrapping_add(1);
                        conn.state = ConnState::Established;
                        out.push(TcpSegment::new(
                            key.local_port,
                            key.peer_port,
                            conn.snd_nxt,
                            conn.rcv_nxt,
                            TcpFlags::ACK,
                            SharedBytes::empty(),
                        ));
                        events.push(TcpEvent::Established(key));
                    }
                }
                ConnState::SynReceived => {
                    if seg.flags.contains(TcpFlags::ACK) && seg.ack == conn.snd_nxt {
                        conn.state = ConnState::Established;
                        events.push(TcpEvent::Established(key));
                        // The handshake ACK may already carry data.
                        Self::consume_data(conn, &key, &seg, out, &mut events);
                    }
                }
                ConnState::Established | ConnState::FinWait | ConnState::CloseWait => {
                    Self::consume_data(conn, &key, &seg, out, &mut events);
                }
                ConnState::Closed => {
                    out.push(TcpSegment::rst(&seg));
                }
            },
        }
        events
    }

    fn consume_data(
        conn: &mut Conn,
        key: &ConnKey,
        seg: &TcpSegment,
        out: &mut Vec<TcpSegment>,
        events: &mut Vec<TcpEvent>,
    ) {
        // Reliable in-order network: either the expected segment or a
        // duplicate/pure-ACK.
        if !seg.payload.is_empty() || seg.flags.contains(TcpFlags::FIN) {
            if seg.seq != conn.rcv_nxt {
                // Unexpected sequence — with reliable links this is a peer
                // bug; reset to surface it loudly in tests.
                out.push(TcpSegment::rst(seg));
                conn.state = ConnState::Closed;
                events.push(TcpEvent::Reset(*key));
                return;
            }
            conn.rcv_nxt = conn.rcv_nxt.wrapping_add(seg.seq_len());
            if !seg.payload.is_empty() {
                events.push(TcpEvent::Data(*key, seg.payload.clone()));
            }
            if seg.flags.contains(TcpFlags::FIN) {
                match conn.state {
                    ConnState::FinWait => {
                        conn.state = ConnState::Closed;
                    }
                    _ => {
                        conn.state = ConnState::CloseWait;
                    }
                }
                events.push(TcpEvent::Closed(*key));
            }
            // ACK whatever we consumed.
            out.push(TcpSegment::new(
                key.local_port,
                key.peer_port,
                conn.snd_nxt,
                conn.rcv_nxt,
                TcpFlags::ACK,
                SharedBytes::empty(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const SERVER: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    /// Shuttle segments between two stacks until both queues drain;
    /// collects events per side.
    fn pump(
        client: &mut TcpStack,
        server: &mut TcpStack,
        mut c_out: Vec<TcpSegment>,
        mut s_out: Vec<TcpSegment>,
    ) -> (Vec<TcpEvent>, Vec<TcpEvent>) {
        let mut c_events = Vec::new();
        let mut s_events = Vec::new();
        for _ in 0..64 {
            if c_out.is_empty() && s_out.is_empty() {
                break;
            }
            let mut next_s_out = Vec::new();
            for seg in c_out.drain(..) {
                s_events.extend(server.on_segment(CLIENT, seg, &mut next_s_out));
            }
            let mut next_c_out = Vec::new();
            for seg in s_out.drain(..) {
                c_events.extend(client.on_segment(SERVER, seg, &mut next_c_out));
            }
            c_out = next_c_out;
            s_out = next_s_out;
        }
        assert!(c_out.is_empty() && s_out.is_empty(), "segment storm");
        (c_events, s_events)
    }

    #[test]
    fn three_way_handshake() {
        let mut client = TcpStack::new(1);
        let mut server = TcpStack::new(2);
        server.listen(80);
        let mut c_out = Vec::new();
        let key = client.connect(SERVER, 80, &mut c_out);
        let (c_ev, s_ev) = pump(&mut client, &mut server, c_out, Vec::new());
        assert_eq!(c_ev, vec![TcpEvent::Established(key)]);
        assert!(matches!(s_ev.as_slice(), [TcpEvent::Established(_)]));
    }

    #[test]
    fn data_flows_both_ways() {
        let mut client = TcpStack::new(1);
        let mut server = TcpStack::new(2);
        server.listen(443);
        let mut c_out = Vec::new();
        let key = client.connect(SERVER, 443, &mut c_out);
        let (_, s_ev) = pump(&mut client, &mut server, c_out, Vec::new());
        let server_key = match &s_ev[0] {
            TcpEvent::Established(k) => *k,
            other => panic!("unexpected {other:?}"),
        };

        let mut c_out = Vec::new();
        assert!(client.send(key, b"request".to_vec(), &mut c_out));
        let (_, s_ev) = pump(&mut client, &mut server, c_out, Vec::new());
        assert!(s_ev.contains(&TcpEvent::Data(server_key, b"request".to_vec().into())));

        let mut s_out = Vec::new();
        assert!(server.send(server_key, b"response".to_vec(), &mut s_out));
        let (c_ev, _) = pump(&mut client, &mut server, Vec::new(), s_out);
        assert!(c_ev.contains(&TcpEvent::Data(key, b"response".to_vec().into())));
    }

    #[test]
    fn clean_close() {
        let mut client = TcpStack::new(3);
        let mut server = TcpStack::new(4);
        server.listen(80);
        let mut c_out = Vec::new();
        let key = client.connect(SERVER, 80, &mut c_out);
        pump(&mut client, &mut server, c_out, Vec::new());

        let mut c_out = Vec::new();
        client.close(key, &mut c_out);
        let (_, s_ev) = pump(&mut client, &mut server, c_out, Vec::new());
        assert!(s_ev.iter().any(|e| matches!(e, TcpEvent::Closed(_))));
    }

    #[test]
    fn syn_to_closed_port_is_reset() {
        let mut client = TcpStack::new(5);
        let mut server = TcpStack::new(6);
        // No listen().
        let mut c_out = Vec::new();
        let key = client.connect(SERVER, 8080, &mut c_out);
        let (c_ev, _) = pump(&mut client, &mut server, c_out, Vec::new());
        assert_eq!(c_ev, vec![TcpEvent::Reset(key)]);
    }

    #[test]
    fn send_before_established_fails() {
        let mut client = TcpStack::new(7);
        let mut out = Vec::new();
        let key = client.connect(SERVER, 80, &mut out);
        let mut data_out = Vec::new();
        assert!(!client.send(key, b"too early".to_vec(), &mut data_out));
        assert!(data_out.is_empty());
    }

    #[test]
    fn ephemeral_ports_unique() {
        let mut client = TcpStack::new(8);
        let mut out = Vec::new();
        let k1 = client.connect(SERVER, 80, &mut out);
        let k2 = client.connect(SERVER, 80, &mut out);
        assert_ne!(k1.local_port, k2.local_port);
    }

    #[test]
    fn handshake_then_immediate_data_like_decoy_flow() {
        // Phase I flow: handshake, then the HTTP decoy, then close.
        let mut vp = TcpStack::new(9);
        let mut site = TcpStack::new(10);
        site.listen(80);
        let mut out = Vec::new();
        let key = vp.connect(SERVER, 80, &mut out);
        pump(&mut vp, &mut site, out, Vec::new());
        let mut out = Vec::new();
        vp.send(
            key,
            b"GET / HTTP/1.1\r\nhost: decoy\r\n\r\n".to_vec(),
            &mut out,
        );
        vp.close(key, &mut out);
        let (_, s_ev) = pump(&mut vp, &mut site, out, Vec::new());
        let data: Vec<_> = s_ev
            .iter()
            .filter_map(|e| match e {
                TcpEvent::Data(_, d) => Some(d.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(data.len(), 1);
        assert!(data[0].starts_with(b"GET / HTTP/1.1"));
        assert!(s_ev.iter().any(|e| matches!(e, TcpEvent::Closed(_))));
    }

    #[test]
    fn active_connection_count() {
        let mut client = TcpStack::new(11);
        let mut server = TcpStack::new(12);
        server.listen(80);
        let mut out = Vec::new();
        let key = client.connect(SERVER, 80, &mut out);
        pump(&mut client, &mut server, out, Vec::new());
        assert_eq!(client.active_connections(), 1);
        let mut out = Vec::new();
        client.abort(key, &mut out);
        assert_eq!(client.active_connections(), 0);
        let (_, s_ev) = pump(&mut client, &mut server, out, Vec::new());
        assert!(s_ev.iter().any(|e| matches!(e, TcpEvent::Reset(_))));
    }
}
