//! Network topology: ASes, routers, hosts, routing, latency.
//!
//! Routing is computed at the AS level (BFS shortest path with deterministic
//! tie-breaking over a symmetric peering graph) and expanded into a
//! router-level hop sequence. The expansion is deterministic per
//! (AS, previous AS, next AS), so a given client–server pair always traverses
//! the identical hop sequence — the property Phase-II hop-by-hop tracerouting
//! depends on (the paper assumes stable paths during a TTL sweep).
//!
//! Anycast services (e.g. 114DNS's CN and US instances, Section 5.1 case
//! study II) register several host nodes under one address; routing delivers
//! to the instance closest in AS hops, as BGP anycast does.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use shadow_geo::{Asn, Region};
use shadow_topo::IpLookupTable;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Index of a node (router or host) in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// Forwarding device. `responds_icmp` mirrors the paper's limitation
    /// that some hops never answer traceroute probes.
    Router { responds_icmp: bool },
    /// Endpoint that terminates traffic (VP, resolver, honeypot, ...).
    Host,
}

/// One node in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    pub id: NodeId,
    pub addr: Ipv4Addr,
    pub asn: Asn,
    pub kind: NodeKind,
}

impl Node {
    pub fn is_router(&self) -> bool {
        matches!(self.kind, NodeKind::Router { .. })
    }

    pub fn responds_icmp(&self) -> bool {
        matches!(
            self.kind,
            NodeKind::Router {
                responds_icmp: true
            }
        )
    }
}

/// Coarse link classification used by the latency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkClass {
    IntraAs,
    InterAsSameRegion,
    InterRegion,
}

/// Errors surfaced while assembling a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    UnknownAs(Asn),
    /// An AS hosts endpoints but has no router to carry their traffic.
    NoRouters(Asn),
    DuplicateLink(Asn, Asn),
    SelfLink(Asn),
    UnknownNode(NodeId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownAs(a) => write!(f, "unknown AS {a}"),
            TopologyError::NoRouters(a) => write!(f, "{a} has hosts but no routers"),
            TopologyError::DuplicateLink(a, b) => write!(f, "duplicate link {a}-{b}"),
            TopologyError::SelfLink(a) => write!(f, "self link on {a}"),
            TopologyError::UnknownNode(n) => write!(f, "unknown node {n}"),
        }
    }
}

impl std::error::Error for TopologyError {}

#[derive(Debug, Clone)]
struct AsEntry {
    asn: Asn,
    region: Region,
    routers: Vec<NodeId>,
    hosts: Vec<NodeId>,
}

/// Incremental topology assembly.
#[derive(Debug)]
pub struct TopologyBuilder {
    seed: u64,
    nodes: Vec<Node>,
    ases: HashMap<Asn, AsEntry>,
    links: BTreeSet<(Asn, Asn)>,
    addr_map: HashMap<Ipv4Addr, Vec<NodeId>>,
}

impl TopologyBuilder {
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            nodes: Vec::new(),
            ases: HashMap::new(),
            links: BTreeSet::new(),
            addr_map: HashMap::new(),
        }
    }

    /// Register an AS. Idempotent for the same `asn`.
    pub fn add_as(&mut self, asn: Asn, region: Region) {
        self.ases.entry(asn).or_insert(AsEntry {
            asn,
            region,
            routers: Vec::new(),
            hosts: Vec::new(),
        });
    }

    /// Symmetric peering/transit link between two ASes.
    pub fn link(&mut self, a: Asn, b: Asn) -> Result<(), TopologyError> {
        if a == b {
            return Err(TopologyError::SelfLink(a));
        }
        if !self.ases.contains_key(&a) {
            return Err(TopologyError::UnknownAs(a));
        }
        if !self.ases.contains_key(&b) {
            return Err(TopologyError::UnknownAs(b));
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if !self.links.insert(key) {
            return Err(TopologyError::DuplicateLink(a, b));
        }
        Ok(())
    }

    /// True if the link already exists.
    pub fn has_link(&self, a: Asn, b: Asn) -> bool {
        let key = if a < b { (a, b) } else { (b, a) };
        self.links.contains(&key)
    }

    fn push_node(
        &mut self,
        addr: Ipv4Addr,
        asn: Asn,
        kind: NodeKind,
    ) -> Result<NodeId, TopologyError> {
        if !self.ases.contains_key(&asn) {
            return Err(TopologyError::UnknownAs(asn));
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            addr,
            asn,
            kind,
        });
        self.addr_map.entry(addr).or_default().push(id);
        Ok(id)
    }

    /// Add a forwarding router inside `asn`.
    pub fn add_router(
        &mut self,
        asn: Asn,
        addr: Ipv4Addr,
        responds_icmp: bool,
    ) -> Result<NodeId, TopologyError> {
        let id = self.push_node(addr, asn, NodeKind::Router { responds_icmp })?;
        self.ases
            .get_mut(&asn)
            .expect("checked by push_node")
            .routers
            .push(id);
        Ok(id)
    }

    /// Add an endpoint host inside `asn`. Registering several hosts under
    /// the same address forms an anycast group.
    pub fn add_host(&mut self, asn: Asn, addr: Ipv4Addr) -> Result<NodeId, TopologyError> {
        let id = self.push_node(addr, asn, NodeKind::Host)?;
        self.ases
            .get_mut(&asn)
            .expect("checked by push_node")
            .hosts
            .push(id);
        Ok(id)
    }

    /// Router nodes registered so far for an AS (in insertion order) —
    /// world builders need these before the topology is frozen, e.g. to
    /// attach wire taps. Borrows, matching [`Topology::routers_of`].
    pub fn routers_of(&self, asn: Asn) -> &[NodeId] {
        self.ases
            .get(&asn)
            .map(|e| e.routers.as_slice())
            .unwrap_or(&[])
    }

    /// Register an additional address for an existing node (e.g. a
    /// resolver instance's unicast egress address next to its anycast
    /// service address — upstream answers must come back to the same
    /// instance that asked).
    pub fn add_alias(&mut self, node: NodeId, addr: Ipv4Addr) -> Result<(), TopologyError> {
        if node.0 as usize >= self.nodes.len() {
            return Err(TopologyError::UnknownNode(node));
        }
        self.addr_map.entry(addr).or_default().push(node);
        Ok(())
    }

    /// Validate and freeze.
    pub fn build(self) -> Result<Topology, TopologyError> {
        for entry in self.ases.values() {
            if !entry.hosts.is_empty() && entry.routers.is_empty() {
                return Err(TopologyError::NoRouters(entry.asn));
            }
        }
        let mut adj: HashMap<Asn, Vec<Asn>> = HashMap::new();
        for &(a, b) in &self.links {
            adj.entry(a).or_default().push(b);
            adj.entry(b).or_default().push(a);
        }
        for neighbors in adj.values_mut() {
            neighbors.sort(); // deterministic BFS order
        }
        // Freeze the address map into the LPM table as /32 entries (node
        // addresses are hosts, not prefixes — exact match semantics are
        // preserved). Sorted insertion keeps the trie's internal layout
        // independent of builder call order.
        let mut by_addr: Vec<(Ipv4Addr, Vec<NodeId>)> = self.addr_map.into_iter().collect();
        by_addr.sort_by_key(|(addr, _)| u32::from(*addr));
        let addr_map = by_addr
            .into_iter()
            .map(|(addr, ids)| (addr, 32, ids))
            .collect();
        Ok(Topology {
            seed: self.seed,
            nodes: self.nodes,
            ases: self.ases,
            adj,
            addr_map,
            bfs_cache: Mutex::new(HashMap::new()),
        })
    }
}

/// BFS tree rooted at one AS: distance and parent per reachable AS.
#[derive(Debug)]
struct BfsTree {
    dist: HashMap<Asn, u32>,
    parent: HashMap<Asn, Asn>,
}

/// The frozen network graph plus routing machinery.
#[derive(Debug)]
pub struct Topology {
    seed: u64,
    nodes: Vec<Node>,
    ases: HashMap<Asn, AsEntry>,
    adj: HashMap<Asn, Vec<Asn>>,
    /// Address → anycast group, frozen into the LPM trie at build time
    /// (every entry a /32; the per-packet destination resolutions the
    /// engine's route cache misses on go through this table).
    addr_map: IpLookupTable<Vec<NodeId>>,
    bfs_cache: Mutex<HashMap<Asn, Arc<BfsTree>>>,
}

impl Clone for Topology {
    /// Clone the graph data; the BFS cache is pure memoization and restarts
    /// empty. (Full node-level routes are memoized per engine, not here —
    /// see the engine's route cache — so shards never contend on a lock.)
    fn clone(&self) -> Self {
        Self {
            seed: self.seed,
            nodes: self.nodes.clone(),
            ases: self.ases.clone(),
            adj: self.adj.clone(),
            addr_map: self.addr_map.clone(),
            bfs_cache: Mutex::new(HashMap::new()),
        }
    }
}

impl Topology {
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    pub fn as_count(&self) -> usize {
        self.ases.len()
    }

    /// All nodes registered under `addr` (several for anycast).
    pub fn nodes_at(&self, addr: Ipv4Addr) -> &[NodeId] {
        self.addr_map
            .exact_match(addr, 32)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Routers of one AS (used to attach wire taps).
    pub fn routers_of(&self, asn: Asn) -> &[NodeId] {
        self.ases
            .get(&asn)
            .map(|e| e.routers.as_slice())
            .unwrap_or(&[])
    }

    fn region_of(&self, asn: Asn) -> Option<Region> {
        self.ases.get(&asn).map(|e| e.region)
    }

    fn bfs_from(&self, root: Asn) -> Arc<BfsTree> {
        if let Some(tree) = self.bfs_cache.lock().get(&root) {
            return Arc::clone(tree);
        }
        let mut dist = HashMap::new();
        let mut parent = HashMap::new();
        let mut queue = VecDeque::new();
        dist.insert(root, 0u32);
        queue.push_back(root);
        while let Some(cur) = queue.pop_front() {
            let d = dist[&cur];
            if let Some(neighbors) = self.adj.get(&cur) {
                for &next in neighbors {
                    if let std::collections::hash_map::Entry::Vacant(slot) = dist.entry(next) {
                        slot.insert(d + 1);
                        parent.insert(next, cur);
                        queue.push_back(next);
                    }
                }
            }
        }
        let tree = Arc::new(BfsTree { dist, parent });
        self.bfs_cache.lock().insert(root, Arc::clone(&tree));
        tree
    }

    /// AS-level path from `src_as` to `dst_as` (inclusive), or `None` if
    /// disconnected.
    pub fn as_path(&self, src_as: Asn, dst_as: Asn) -> Option<Vec<Asn>> {
        if src_as == dst_as {
            return Some(vec![src_as]);
        }
        let tree = self.bfs_from(src_as);
        tree.dist.get(&dst_as)?;
        let mut path = vec![dst_as];
        let mut cur = dst_as;
        while cur != src_as {
            cur = *tree.parent.get(&cur)?;
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Pick the anycast instance of `addr` nearest (in AS hops) to
    /// `src_node`. Distance ties break towards the instance in the client's
    /// own region — BGP anycast catchments are regional — then on node id
    /// for determinism.
    pub fn select_instance(&self, src_node: NodeId, addr: Ipv4Addr) -> Option<NodeId> {
        let candidates = self.nodes_at(addr);
        if candidates.is_empty() {
            return None;
        }
        let src_as = self.node(src_node).asn;
        let src_region = self.region_of(src_as);
        let tree = self.bfs_from(src_as);
        candidates
            .iter()
            .filter_map(|&id| {
                let asn = self.node(id).asn;
                let region_penalty = u8::from(self.region_of(asn) != src_region);
                tree.dist.get(&asn).map(|&d| (region_penalty, d, id))
            })
            .min()
            .map(|(_, _, id)| id)
    }

    /// Routers an AS contributes to a path, chosen deterministically from
    /// the traversal context so the hop sequence is stable.
    fn expand_as(&self, asn: Asn, prev: Option<Asn>, next: Option<Asn>, out: &mut Vec<NodeId>) {
        let Some(entry) = self.ases.get(&asn) else {
            return;
        };
        if entry.routers.is_empty() {
            return;
        }
        let h = mix3(
            self.seed,
            asn.0 as u64,
            (prev.map(|a| a.0).unwrap_or(0) as u64) << 32 | next.map(|a| a.0).unwrap_or(0) as u64,
        );
        let n = entry.routers.len();
        // Transit ASes contribute 1–2 routers; the terminal AS contributes
        // up to 2 as well (edge + border), keeping total hop counts in the
        // 5–15 range typical of real traceroutes.
        let take = 1 + (h as usize % 2.min(n));
        let mut idx = (h >> 8) as usize % n;
        // Stride is never ≡ 0 (mod n), so consecutive picks are distinct
        // routers — a route must not visit the same hop twice in a row.
        let stride = if n > 1 {
            1 + (h >> 16) as usize % (n - 1)
        } else {
            1
        };
        for _ in 0..take.min(n) {
            out.push(entry.routers[idx]);
            idx = (idx + stride) % n;
        }
    }

    /// Full node-level route from `src` to `dst` (both inclusive). `None`
    /// if the ASes are disconnected.
    ///
    /// Pure computation (the AS-level BFS underneath is memoized); callers
    /// on the hot path memoize whole routes themselves — the engine keeps a
    /// per-shard `(src, dst addr) → route` cache so concurrent shards never
    /// serialize on a shared lock here.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<Arc<[NodeId]>> {
        if src == dst {
            return Some(Arc::from(vec![src].into_boxed_slice()));
        }
        let src_as = self.node(src).asn;
        let dst_as = self.node(dst).asn;
        let as_path = self.as_path(src_as, dst_as)?;
        let mut hops: Vec<NodeId> = vec![src];
        for (i, &asn) in as_path.iter().enumerate() {
            let prev = if i == 0 { None } else { Some(as_path[i - 1]) };
            let next = as_path.get(i + 1).copied();
            self.expand_as(asn, prev, next, &mut hops);
        }
        // Never route *through* the endpoints themselves.
        hops.retain(|&n| n == src || self.node(n).is_router());
        hops.push(dst);
        Some(Arc::from(hops.into_boxed_slice()))
    }

    /// Route to an address, resolving anycast first.
    pub fn route_to_addr(&self, src: NodeId, addr: Ipv4Addr) -> Option<Arc<[NodeId]>> {
        let dst = self.select_instance(src, addr)?;
        self.route(src, dst)
    }

    /// Classify the link between two adjacent path nodes.
    pub fn link_class(&self, a: NodeId, b: NodeId) -> LinkClass {
        let na = self.node(a);
        let nb = self.node(b);
        if na.asn == nb.asn {
            LinkClass::IntraAs
        } else if self.region_of(na.asn) == self.region_of(nb.asn) {
            LinkClass::InterAsSameRegion
        } else {
            LinkClass::InterRegion
        }
    }

    /// Deterministic one-way latency of the (a, b) link in milliseconds.
    pub fn latency_ms(&self, a: NodeId, b: NodeId) -> u64 {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let h = mix3(self.seed ^ 0x1a7e_c0de, lo.0 as u64, hi.0 as u64);
        match self.link_class(a, b) {
            LinkClass::IntraAs => 1 + h % 4,            // 1-4 ms
            LinkClass::InterAsSameRegion => 5 + h % 20, // 5-24 ms
            LinkClass::InterRegion => 40 + h % 80,      // 40-119 ms
        }
    }
}

/// SplitMix64-style deterministic mixing. Public because the fault layer
/// ([`crate::fault`]) derives per-packet fate from the same rule.
pub fn mix3(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(b)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9)
        .wrapping_add(c);
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_geo::Region;

    fn addr(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    /// Three ASes in a chain: 100 (EU) — 200 (EU) — 300 (Asia).
    fn chain() -> (Topology, NodeId, NodeId) {
        let mut tb = TopologyBuilder::new(42);
        tb.add_as(Asn(100), Region::Europe);
        tb.add_as(Asn(200), Region::Europe);
        tb.add_as(Asn(300), Region::EastAsia);
        tb.link(Asn(100), Asn(200)).unwrap();
        tb.link(Asn(200), Asn(300)).unwrap();
        for (asn, base) in [(100u32, 10u8), (200, 20), (300, 30)] {
            for r in 0..3u8 {
                tb.add_router(Asn(asn), addr(base, 0, 0, r + 1), true)
                    .unwrap();
            }
        }
        let client = tb.add_host(Asn(100), addr(10, 1, 0, 1)).unwrap();
        let server = tb.add_host(Asn(300), addr(30, 1, 0, 1)).unwrap();
        (tb.build().unwrap(), client, server)
    }

    #[test]
    fn as_path_shortest() {
        let (topo, _, _) = chain();
        assert_eq!(
            topo.as_path(Asn(100), Asn(300)).unwrap(),
            vec![Asn(100), Asn(200), Asn(300)]
        );
        assert_eq!(topo.as_path(Asn(200), Asn(200)).unwrap(), vec![Asn(200)]);
    }

    #[test]
    fn route_endpoints_and_routers_only() {
        let (topo, client, server) = chain();
        let route = topo.route(client, server).unwrap();
        assert_eq!(route[0], client);
        assert_eq!(*route.last().unwrap(), server);
        for &hop in &route[1..route.len() - 1] {
            assert!(topo.node(hop).is_router(), "{hop} must be a router");
        }
        // Chain of 3 ASes contributing 1-2 routers each: 3..=6 routers.
        let router_count = route.len() - 2;
        assert!((3..=6).contains(&router_count), "got {router_count}");
    }

    #[test]
    fn route_is_deterministic() {
        let (topo, client, server) = chain();
        let r1 = topo.route(client, server).unwrap();
        let r2 = topo.route(client, server).unwrap();
        assert_eq!(r1, r2, "recomputation yields the identical route");
    }

    #[test]
    fn route_to_self_is_loopback() {
        let (topo, client, _) = chain();
        let route = topo.route(client, client).unwrap();
        assert_eq!(route.as_ref(), &[client]);
    }

    #[test]
    fn disconnected_as_unroutable() {
        let mut tb = TopologyBuilder::new(1);
        tb.add_as(Asn(1), Region::Europe);
        tb.add_as(Asn(2), Region::Europe);
        tb.add_router(Asn(1), addr(1, 0, 0, 1), true).unwrap();
        tb.add_router(Asn(2), addr(2, 0, 0, 1), true).unwrap();
        let a = tb.add_host(Asn(1), addr(1, 1, 1, 1)).unwrap();
        let b = tb.add_host(Asn(2), addr(2, 1, 1, 1)).unwrap();
        let topo = tb.build().unwrap();
        assert!(topo.route(a, b).is_none());
    }

    #[test]
    fn anycast_picks_nearest_instance() {
        // Client in AS100; anycast addr served in AS100 and AS300.
        let mut tb = TopologyBuilder::new(9);
        tb.add_as(Asn(100), Region::Europe);
        tb.add_as(Asn(200), Region::Europe);
        tb.add_as(Asn(300), Region::EastAsia);
        tb.link(Asn(100), Asn(200)).unwrap();
        tb.link(Asn(200), Asn(300)).unwrap();
        for asn in [100u32, 200, 300] {
            tb.add_router(Asn(asn), addr((asn / 10) as u8, 0, 0, 1), true)
                .unwrap();
        }
        let client = tb.add_host(Asn(100), addr(10, 1, 0, 1)).unwrap();
        let anycast = addr(99, 9, 9, 9);
        let near = tb.add_host(Asn(100), anycast).unwrap();
        let far = tb.add_host(Asn(300), anycast).unwrap();
        let topo = tb.build().unwrap();
        assert_eq!(topo.select_instance(client, anycast), Some(near));
        let route = topo.route_to_addr(client, anycast).unwrap();
        assert_eq!(*route.last().unwrap(), near);
        assert_ne!(*route.last().unwrap(), far);
    }

    #[test]
    fn builder_rejects_bad_input() {
        let mut tb = TopologyBuilder::new(0);
        tb.add_as(Asn(1), Region::Europe);
        assert_eq!(
            tb.link(Asn(1), Asn(1)),
            Err(TopologyError::SelfLink(Asn(1)))
        );
        assert_eq!(
            tb.link(Asn(1), Asn(2)),
            Err(TopologyError::UnknownAs(Asn(2)))
        );
        tb.add_as(Asn(2), Region::Europe);
        tb.link(Asn(1), Asn(2)).unwrap();
        assert_eq!(
            tb.link(Asn(2), Asn(1)),
            Err(TopologyError::DuplicateLink(Asn(2), Asn(1)))
        );
        assert!(tb.add_router(Asn(3), addr(3, 0, 0, 1), true).is_err());
        // host without routers in its AS
        tb.add_host(Asn(1), addr(1, 1, 1, 1)).unwrap();
        assert_eq!(tb.build().unwrap_err(), TopologyError::NoRouters(Asn(1)));
    }

    #[test]
    fn latency_scales_with_link_class() {
        let (topo, client, server) = chain();
        let route = topo.route(client, server).unwrap();
        for pair in route.windows(2) {
            let ms = topo.latency_ms(pair[0], pair[1]);
            let class = topo.link_class(pair[0], pair[1]);
            match class {
                LinkClass::IntraAs => assert!((1..=4).contains(&ms)),
                LinkClass::InterAsSameRegion => assert!((5..=24).contains(&ms)),
                LinkClass::InterRegion => assert!((40..=119).contains(&ms)),
            }
            // symmetric
            assert_eq!(ms, topo.latency_ms(pair[1], pair[0]));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let build = |seed| {
            let mut tb = TopologyBuilder::new(seed);
            tb.add_as(Asn(100), Region::Europe);
            tb.add_as(Asn(200), Region::EastAsia);
            tb.link(Asn(100), Asn(200)).unwrap();
            for r in 0..4u8 {
                tb.add_router(Asn(100), addr(10, 0, 0, r + 1), true)
                    .unwrap();
                tb.add_router(Asn(200), addr(20, 0, 0, r + 1), true)
                    .unwrap();
            }
            let a = tb.add_host(Asn(100), addr(10, 1, 0, 1)).unwrap();
            let b = tb.add_host(Asn(200), addr(20, 1, 0, 1)).unwrap();
            let topo = tb.build().unwrap();
            topo.route(a, b).unwrap().to_vec()
        };
        // With 4 routers per AS there are many possible expansions; seeds
        // should eventually disagree.
        let baseline = build(1);
        let differs = (2..20).any(|s| build(s) != baseline);
        assert!(differs, "route expansion ignores the seed");
    }
}
