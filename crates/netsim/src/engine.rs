//! The discrete-event engine: forwards packets hop by hop, decrements TTL,
//! generates ICMP Time Exceeded, delivers to endpoint hosts, and runs
//! on-path wire taps (where traffic observers live).

use crate::fault::{LinkConditioner, LinkVerdict};
use crate::slab::{Slab, SlabKey};
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeId, Topology};
use crate::wheel::TimeWheel;
use shadow_packet::icmp::IcmpMessage;
use shadow_packet::ipv4::{IpProtocol, Ipv4Packet, DEFAULT_TTL};
use shadow_packet::DecodedView;
use shadow_telemetry::{EventKind as TelemetryEvent, Telemetry};
use std::any::Any;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// An endpoint application bound to one topology node (a VP, a resolver, a
/// honeypot, a web server, an exhibitor's probe origin...).
///
/// Hosts receive packets addressed to their node, fire timers they armed,
/// and receive application-level messages posted by the campaign controller
/// or by wire taps (e.g. "probe this domain in 2 days").
pub trait Host: Send + Sync {
    fn on_packet(&mut self, pkt: Ipv4Packet, ctx: &mut Ctx<'_>);

    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}

    fn on_message(&mut self, _msg: Box<dyn Any + Send + Sync>, _ctx: &mut Ctx<'_>) {}

    /// Downcasting hook so campaign code can harvest results after a run.
    fn as_any(&self) -> &dyn Any;

    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// What a wire tap tells the engine to do with an observed packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapVerdict {
    /// Forward normally (pure observation — the traffic-shadowing case:
    /// "communication between clients and servers is not tampered with").
    Continue,
    /// Swallow the packet (interception devices, Appendix E noise).
    Drop,
}

/// A passive (or not quite passive) device attached to a router, seeing
/// every packet the router forwards.
///
/// `view` is the packet's shared parse-once memo: the first tap on the
/// route that calls [`DecodedView::app_field`] pays for the application
/// decode, every later tap (and every later hop) reads the cached result.
/// Taps must read watched fields through the view rather than re-parsing
/// the payload — see the contract in [`shadow_packet::view`].
pub trait WireTap: Send + Sync {
    fn on_packet(
        &mut self,
        pkt: &Ipv4Packet,
        view: &DecodedView,
        at: NodeId,
        ctx: &mut Ctx<'_>,
    ) -> TapVerdict;

    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}

    fn as_any(&self) -> &dyn Any;

    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Deferred side effects collected during a callback and applied by the
/// engine afterwards (avoids aliasing the engine inside host calls).
enum Action {
    /// Route `pkt` from `from` towards its IP destination after `delay`.
    Send {
        from: NodeId,
        pkt: Ipv4Packet,
        delay: SimDuration,
    },
    /// Arm a timer on a host node.
    HostTimer {
        node: NodeId,
        token: u64,
        delay: SimDuration,
    },
    /// Arm a timer on a tap (index within the node's tap list).
    TapTimer {
        node: NodeId,
        tap_index: usize,
        token: u64,
        delay: SimDuration,
    },
    /// Deliver an application message to a host node.
    Post {
        node: NodeId,
        msg: Box<dyn Any + Send + Sync>,
        delay: SimDuration,
    },
}

/// Stable journal label for an IP protocol ("ICMP"/"TCP"/"UDP"/"IP(n)").
pub fn ip_protocol_label(proto: IpProtocol) -> String {
    match proto {
        IpProtocol::Icmp => "ICMP".to_string(),
        IpProtocol::Tcp => "TCP".to_string(),
        IpProtocol::Udp => "UDP".to_string(),
        IpProtocol::Other(n) => format!("IP({n})"),
    }
}

/// Callback context: simulated clock plus an action buffer.
pub struct Ctx<'a> {
    now: SimTime,
    /// The node the callback runs on.
    node: NodeId,
    /// `Some(index)` when the callback belongs to a tap at this node.
    tap: Option<usize>,
    /// The engine's telemetry handle (disabled by default — see
    /// [`Engine::set_telemetry`]), so hosts and taps can emit counters and
    /// journal events without threading handles through constructors.
    telemetry: &'a Telemetry,
    actions: &'a mut Vec<Action>,
}

impl Ctx<'_> {
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this callback is running on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The engine's telemetry handle (a disabled no-op unless enabled).
    pub fn telemetry(&self) -> &Telemetry {
        self.telemetry
    }

    /// Send `pkt` into the network from this node.
    pub fn send(&mut self, pkt: Ipv4Packet) {
        self.send_after(SimDuration::ZERO, pkt);
    }

    /// Send `pkt` after a local processing delay.
    pub fn send_after(&mut self, delay: SimDuration, pkt: Ipv4Packet) {
        self.actions.push(Action::Send {
            from: self.node,
            pkt,
            delay,
        });
    }

    /// Send from an arbitrary node — used by taps whose probe traffic must
    /// originate elsewhere (the paper: "observers may not initiate
    /// unsolicited requests by themselves").
    pub fn send_from(&mut self, from: NodeId, delay: SimDuration, pkt: Ipv4Packet) {
        self.actions.push(Action::Send { from, pkt, delay });
    }

    /// Arm a timer that re-enters this host (or tap) with `token`.
    pub fn timer(&mut self, delay: SimDuration, token: u64) {
        match self.tap {
            Some(tap_index) => self.actions.push(Action::TapTimer {
                node: self.node,
                tap_index,
                token,
                delay,
            }),
            None => self.actions.push(Action::HostTimer {
                node: self.node,
                token,
                delay,
            }),
        }
    }

    /// Post an application message to another host after `delay`.
    pub fn post(&mut self, node: NodeId, delay: SimDuration, msg: Box<dyn Any + Send + Sync>) {
        self.actions.push(Action::Post { node, msg, delay });
    }
}

/// Why a timer callback targets a tap and not a host: taps call
/// [`Ctx::timer`] too, so the engine must remember which kind armed it.
enum EventKind {
    /// Packet arriving at `path[idx]`. The view is the packet's parse-once
    /// memo, shared (Arc) with any fault-injected duplicate — duplicates
    /// carry identical bytes, so they share one decode.
    Hop {
        pkt: Ipv4Packet,
        view: Arc<DecodedView>,
        path: Arc<[NodeId]>,
        idx: usize,
    },
    HostTimer {
        node: NodeId,
        token: u64,
    },
    TapTimer {
        node: NodeId,
        tap_index: usize,
        token: u64,
    },
    Message {
        node: NodeId,
        msg: Box<dyn Any + Send + Sync>,
    },
}

/// Aggregate counters, exposed for tests and benches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    pub events_processed: u64,
    pub packets_sent: u64,
    pub packets_delivered: u64,
    pub packets_dropped_unroutable: u64,
    pub packets_dropped_by_tap: u64,
    pub ttl_expirations: u64,
    pub icmp_time_exceeded_sent: u64,
    pub icmp_suppressed: u64,
}

impl EngineStats {
    /// Sum another engine's counters into this one (a sharded campaign
    /// reports the aggregate across its per-shard engines).
    pub fn absorb(&mut self, other: &EngineStats) {
        self.events_processed += other.events_processed;
        self.packets_sent += other.packets_sent;
        self.packets_delivered += other.packets_delivered;
        self.packets_dropped_unroutable += other.packets_dropped_unroutable;
        self.packets_dropped_by_tap += other.packets_dropped_by_tap;
        self.ttl_expirations += other.ttl_expirations;
        self.icmp_time_exceeded_sent += other.icmp_time_exceeded_sent;
        self.icmp_suppressed += other.icmp_suppressed;
    }
}

/// The simulator.
pub struct Engine {
    topo: Topology,
    /// The time wheel carries 8-byte slab keys; the event payloads live in
    /// [`Engine::events`]. See `slab.rs` for why.
    queue: TimeWheel<SlabKey>,
    /// In-flight event state: grows to the peak queued population once,
    /// then recycles freed slots through the slab's free list — the hot
    /// loop stops round-tripping the global allocator per event.
    events: Slab<EventKind>,
    hosts: HashMap<NodeId, Box<dyn Host>>,
    taps: HashMap<NodeId, Vec<Box<dyn WireTap>>>,
    now: SimTime,
    seq: u64,
    ident: u16,
    stats: EngineStats,
    telemetry: Telemetry,
    /// Installed fault profile (None = perfectly reliable network; every
    /// conditioner check then reduces to one `None` branch).
    conditioner: Option<Arc<LinkConditioner>>,
    /// Per-engine route memo, consulted on every [`Engine::launch`].
    /// Lives here rather than in [`Topology`] so sharded campaigns never
    /// contend on a shared lock — each shard's engine warms its own cache
    /// with exactly the routes its traffic uses. `None` records an
    /// unroutable destination (negative caching).
    route_cache: HashMap<(NodeId, Ipv4Addr), Option<Arc<[NodeId]>>>,
    /// Reusable action buffer for [`Engine::dispatch`] (one allocation for
    /// the whole run instead of one per event).
    scratch_actions: Vec<Action>,
    /// Reusable same-tick batch buffer for the batched run loop.
    batch: Vec<(SimTime, u64, SlabKey)>,
}

impl Engine {
    pub fn new(topo: Topology) -> Self {
        Self {
            topo,
            queue: TimeWheel::new(),
            events: Slab::new(),
            hosts: HashMap::new(),
            taps: HashMap::new(),
            now: SimTime::ZERO,
            seq: 0,
            ident: 1,
            stats: EngineStats::default(),
            telemetry: Telemetry::disabled(),
            conditioner: None,
            route_cache: HashMap::new(),
            scratch_actions: Vec::new(),
            batch: Vec::new(),
        }
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Install a telemetry handle. The campaign enables telemetry *after*
    /// the Appendix-E pre-flight, so per-shard counters cover exactly the
    /// campaign traffic and sum to the sequential run's counters.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The engine's telemetry handle (disabled unless installed).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Install (or clear) a fault conditioner. Shards of one campaign share
    /// a single compiled conditioner: its decisions are value-derived, so
    /// the same packet meets the same fate in any shard.
    pub fn set_conditioner(&mut self, conditioner: Option<Arc<LinkConditioner>>) {
        self.conditioner = conditioner;
    }

    /// The installed fault conditioner, if any.
    pub fn conditioner(&self) -> Option<&Arc<LinkConditioner>> {
        self.conditioner.as_ref()
    }

    /// Bind a host application to a node. Replaces any previous binding.
    pub fn add_host(&mut self, node: NodeId, host: Box<dyn Host>) {
        self.hosts.insert(node, host);
    }

    /// Attach a wire tap to a router node. Multiple taps stack in order.
    pub fn add_tap(&mut self, node: NodeId, tap: Box<dyn WireTap>) {
        self.taps.entry(node).or_default().push(tap);
    }

    /// Borrow a host downcast to its concrete type (post-run harvesting).
    pub fn host_as<T: 'static>(&self, node: NodeId) -> Option<&T> {
        self.hosts.get(&node)?.as_any().downcast_ref::<T>()
    }

    /// Mutably borrow a host downcast to its concrete type.
    pub fn host_as_mut<T: 'static>(&mut self, node: NodeId) -> Option<&mut T> {
        self.hosts.get_mut(&node)?.as_any_mut().downcast_mut::<T>()
    }

    /// Borrow a tap downcast to its concrete type.
    pub fn tap_as<T: 'static>(&self, node: NodeId, index: usize) -> Option<&T> {
        self.taps
            .get(&node)?
            .get(index)?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Fresh IP identification value (per-engine counter).
    pub fn next_ident(&mut self) -> u16 {
        self.ident = self.ident.wrapping_add(1);
        self.ident
    }

    /// Schedule an application message delivery at absolute time `at`.
    pub fn post(&mut self, at: SimTime, node: NodeId, msg: Box<dyn Any + Send + Sync>) {
        let at = at.max(self.now);
        self.push(at, EventKind::Message { node, msg });
    }

    /// Inject a packet into the network from `from` at absolute time `at`.
    pub fn inject(&mut self, at: SimTime, from: NodeId, pkt: Ipv4Packet) {
        let at = at.max(self.now);
        self.launch(at, from, pkt);
    }

    fn push(&mut self, at: SimTime, kind: EventKind) {
        self.seq += 1;
        let key = self.events.insert(kind);
        self.queue.push(at, self.seq, key);
    }

    /// Route a packet leaving `from` and schedule its first hop.
    fn launch(&mut self, at: SimTime, from: NodeId, pkt: Ipv4Packet) {
        self.stats.packets_sent += 1;
        if let Some(cond) = &self.conditioner {
            // A downed origin (VP churn, resolver/honeypot outage) emits
            // nothing.
            if cond.node_down(from, at.0) {
                if let Some(m) = self.telemetry.metrics() {
                    m.fault_outage_drops.inc();
                }
                return;
            }
        }
        let path = match self.route_cache.entry((from, pkt.header.dst)) {
            Entry::Occupied(e) => e.get().clone(),
            Entry::Vacant(v) => {
                // Cache miss: resolve the destination through the LPM
                // address table (via route_to_addr → select_instance).
                if let Some(m) = self.telemetry.metrics() {
                    m.topo_lookups.inc();
                }
                v.insert(self.topo.route_to_addr(from, pkt.header.dst))
                    .clone()
            }
        };
        let Some(path) = path else {
            self.stats.packets_dropped_unroutable += 1;
            return;
        };
        let view = Arc::new(DecodedView::new());
        if path.len() == 1 {
            // Loopback: deliver to self immediately.
            self.push(
                at,
                EventKind::Hop {
                    pkt,
                    view,
                    path,
                    idx: 0,
                },
            );
            return;
        }
        let delay = SimDuration::from_millis(self.topo.latency_ms(path[0], path[1]));
        self.schedule_link(at, delay, pkt, view, path, 1);
    }

    /// Schedule arrival at `path[idx]` after crossing the link
    /// `path[idx-1] → path[idx]`, consulting the fault conditioner (loss,
    /// jitter, duplication, link outages) when one is installed.
    fn schedule_link(
        &mut self,
        depart: SimTime,
        base_delay: SimDuration,
        pkt: Ipv4Packet,
        view: Arc<DecodedView>,
        path: Arc<[NodeId]>,
        idx: usize,
    ) {
        let verdict = match &self.conditioner {
            None => LinkVerdict::CLEAN,
            Some(cond) => cond.link_verdict(
                depart.0,
                path[idx - 1],
                path[idx],
                &pkt.header,
                &pkt.payload,
            ),
        };
        match verdict {
            LinkVerdict::Lost => {
                if let Some(m) = self.telemetry.metrics() {
                    m.fault_packets_lost.inc();
                }
            }
            LinkVerdict::OutageDrop => {
                if let Some(m) = self.telemetry.metrics() {
                    m.fault_outage_drops.inc();
                }
            }
            LinkVerdict::Deliver {
                extra_delay_ms,
                duplicate_after_ms,
            } => {
                if extra_delay_ms > 0 {
                    if let Some(m) = self.telemetry.metrics() {
                        m.fault_packets_delayed.inc();
                    }
                }
                let arrive = depart + base_delay + SimDuration::from_millis(extra_delay_ms);
                if let Some(gap_ms) = duplicate_after_ms {
                    if let Some(m) = self.telemetry.metrics() {
                        m.fault_packets_duplicated.inc();
                    }
                    // Cheap duplicate: the clone bumps the payload and view
                    // refcounts; no bytes are copied and the decode memo is
                    // shared between original and duplicate.
                    self.push(
                        arrive + SimDuration::from_millis(gap_ms),
                        EventKind::Hop {
                            pkt: pkt.clone(),
                            view: view.clone(),
                            path: path.clone(),
                            idx,
                        },
                    );
                }
                self.push(
                    arrive,
                    EventKind::Hop {
                        pkt,
                        view,
                        path,
                        idx,
                    },
                );
            }
        }
    }

    /// Run until the queue drains or the clock passes `deadline`.
    /// Returns the number of events processed.
    ///
    /// Events are popped in whole same-tick batches ([`TimeWheel::pop_batch`])
    /// so the wheel's slot/overflow bookkeeping runs once per simulated
    /// millisecond instead of once per event. Mid-batch pushes always land
    /// at `>= now` with a higher sequence number, so they are picked up by
    /// the next `peek_at` — the dispatch order is identical to the
    /// one-pop-at-a-time loop.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut processed = 0;
        let mut batch = std::mem::take(&mut self.batch);
        while let Some(at) = self.queue.peek_at() {
            if at > deadline {
                break;
            }
            batch.clear();
            self.queue.pop_batch(&mut batch);
            self.now = at;
            for &(_, _, key) in &batch {
                let kind = self.events.remove(key).expect("queued event is live");
                self.dispatch(kind);
                processed += 1;
                self.stats.events_processed += 1;
                if processed & 0xFFF == 0 {
                    if let Some(m) = self.telemetry.metrics() {
                        m.queue_depth.record(self.events.len() as u64);
                    }
                }
            }
        }
        self.batch = batch;
        if processed > 0 {
            if let Some(m) = self.telemetry.metrics() {
                m.events_drained.add(processed);
            }
        }
        self.now = self
            .now
            .max(deadline.min(self.queue.peek_at().unwrap_or(deadline)));
        processed
    }

    /// Run until the queue is fully drained.
    pub fn run_to_completion(&mut self) -> u64 {
        self.run_until(SimTime(u64::MAX))
    }

    /// Run until the queue drains or `max_events` have been processed.
    /// Returns `(processed, drained)`; `drained == false` means the budget
    /// was exhausted — a runaway feedback loop in the configured world.
    pub fn run_with_budget(&mut self, max_events: u64) -> (u64, bool) {
        let mut processed = 0;
        while processed < max_events {
            // Single-pop on purpose: the budget must cut mid-tick exactly.
            let Some((at, _, key)) = self.queue.pop() else {
                if processed > 0 {
                    if let Some(m) = self.telemetry.metrics() {
                        m.events_drained.add(processed);
                    }
                }
                return (processed, true);
            };
            let kind = self.events.remove(key).expect("queued event is live");
            self.now = at;
            self.dispatch(kind);
            processed += 1;
            self.stats.events_processed += 1;
            if processed & 0xFFF == 0 {
                if let Some(m) = self.telemetry.metrics() {
                    m.queue_depth.record(self.events.len() as u64);
                }
            }
        }
        if processed > 0 {
            if let Some(m) = self.telemetry.metrics() {
                m.events_drained.add(processed);
            }
        }
        (processed, self.queue.is_empty())
    }

    fn dispatch(&mut self, kind: EventKind) {
        // Reuse one action buffer across the whole run; `apply` drains it.
        let mut actions = std::mem::take(&mut self.scratch_actions);
        match kind {
            EventKind::Hop {
                pkt,
                view,
                path,
                idx,
            } => {
                self.hop(pkt, view, path, idx, &mut actions);
            }
            EventKind::HostTimer { node, token } => {
                if let Some(mut host) = self.hosts.remove(&node) {
                    let mut ctx = Ctx {
                        now: self.now,
                        node,
                        tap: None,
                        telemetry: &self.telemetry,
                        actions: &mut actions,
                    };
                    host.on_timer(token, &mut ctx);
                    self.hosts.insert(node, host);
                }
            }
            EventKind::TapTimer {
                node,
                tap_index,
                token,
            } => {
                if let Some(mut taps) = self.taps.remove(&node) {
                    if let Some(tap) = taps.get_mut(tap_index) {
                        let mut ctx = Ctx {
                            now: self.now,
                            node,
                            tap: Some(tap_index),
                            telemetry: &self.telemetry,
                            actions: &mut actions,
                        };
                        tap.on_timer(token, &mut ctx);
                    }
                    self.taps.insert(node, taps);
                }
            }
            EventKind::Message { node, msg } => {
                if let Some(mut host) = self.hosts.remove(&node) {
                    let mut ctx = Ctx {
                        now: self.now,
                        node,
                        tap: None,
                        telemetry: &self.telemetry,
                        actions: &mut actions,
                    };
                    host.on_message(msg, &mut ctx);
                    self.hosts.insert(node, host);
                }
            }
        }
        self.apply(&mut actions);
        self.scratch_actions = actions;
    }

    fn hop(
        &mut self,
        mut pkt: Ipv4Packet,
        view: Arc<DecodedView>,
        path: Arc<[NodeId]>,
        idx: usize,
        actions: &mut Vec<Action>,
    ) {
        let node_id = path[idx];
        let node = *self.topo.node(node_id);
        let is_final = idx == path.len() - 1;

        if let Some(cond) = &self.conditioner {
            // A downed node neither forwards, observes, expires, nor
            // accepts delivery (router outage / honeypot downtime / VP
            // churn / resolver outage — all node-outage windows).
            if cond.node_down(node_id, self.now.0) {
                if let Some(m) = self.telemetry.metrics() {
                    m.fault_outage_drops.inc();
                }
                return;
            }
        }

        if node.is_router() {
            // Taps observe arriving packets (a DPI box sees the wire even
            // when the packet is about to expire here).
            if let Some(mut taps) = self.taps.remove(&node_id) {
                let mut dropped = false;
                for (tap_index, tap) in taps.iter_mut().enumerate() {
                    if let Some(m) = self.telemetry.metrics() {
                        m.tap_observations.inc();
                    }
                    let (src, dst, proto) = (pkt.header.src, pkt.header.dst, pkt.header.protocol);
                    self.telemetry.event(self.now.0, Some(node_id.0), || {
                        TelemetryEvent::TapObserved {
                            src,
                            dst,
                            protocol: ip_protocol_label(proto),
                        }
                    });
                    let mut ctx = Ctx {
                        now: self.now,
                        node: node_id,
                        tap: Some(tap_index),
                        telemetry: &self.telemetry,
                        actions,
                    };
                    if tap.on_packet(&pkt, &view, node_id, &mut ctx) == TapVerdict::Drop {
                        dropped = true;
                        break;
                    }
                }
                self.taps.insert(node_id, taps);
                if dropped {
                    self.stats.packets_dropped_by_tap += 1;
                    if let Some(m) = self.telemetry.metrics() {
                        m.tap_drops.inc();
                    }
                    return;
                }
            }
            // Forwarding: decrement TTL; expire ⇒ ICMP Time Exceeded.
            if pkt.header.decrement_ttl().is_none() {
                self.stats.ttl_expirations += 1;
                if let Some(m) = self.telemetry.metrics() {
                    m.ttl_expirations.inc();
                }
                // ICMP rate limiting: a value-derived probabilistic
                // suppression rather than a stateful token bucket — shard
                // engines see disjoint traffic, so shared bucket state
                // would diverge from the sequential run.
                let rate_limited = node.responds_icmp()
                    && match &self.conditioner {
                        Some(cond) => {
                            cond.suppress_icmp(self.now.0, node_id, &pkt.header, &pkt.payload)
                        }
                        None => false,
                    };
                if node.responds_icmp() && !rate_limited {
                    self.stats.icmp_time_exceeded_sent += 1;
                    if let Some(m) = self.telemetry.metrics() {
                        m.icmp_time_exceeded.inc();
                    }
                    let (expired_src, expired_dst) = (pkt.header.src, pkt.header.dst);
                    self.telemetry.event(self.now.0, Some(node_id.0), || {
                        TelemetryEvent::IcmpTimeExceeded {
                            expired_src,
                            expired_dst,
                        }
                    });
                    let icmp = IcmpMessage::time_exceeded(pkt.header, &pkt.payload);
                    let ident = self.next_ident();
                    let reply = Ipv4Packet::new(
                        node.addr,
                        pkt.header.src,
                        IpProtocol::Icmp,
                        DEFAULT_TTL,
                        ident,
                        icmp.encode(),
                    );
                    actions.push(Action::Send {
                        from: node_id,
                        pkt: reply,
                        delay: SimDuration::ZERO,
                    });
                } else {
                    self.stats.icmp_suppressed += 1;
                    if rate_limited {
                        if let Some(m) = self.telemetry.metrics() {
                            m.fault_icmp_rate_limited.inc();
                        }
                    }
                }
                return;
            }
            debug_assert!(!is_final, "routes terminate at hosts");
            if let Some(m) = self.telemetry.metrics() {
                m.packets_forwarded.inc();
            }
            let next = path[idx + 1];
            let delay = SimDuration::from_millis(self.topo.latency_ms(node_id, next));
            // TTL decrement touched only the header; the payload (and
            // therefore the cached view) is unchanged — keep sharing it.
            self.schedule_link(self.now, delay, pkt, view, path, idx + 1);
        } else {
            // Endpoint delivery.
            debug_assert!(is_final, "hosts only appear at path ends");
            self.stats.packets_delivered += 1;
            if let Some(m) = self.telemetry.metrics() {
                m.packets_delivered.inc();
            }
            if let Some(mut host) = self.hosts.remove(&node_id) {
                let mut ctx = Ctx {
                    now: self.now,
                    node: node_id,
                    tap: None,
                    telemetry: &self.telemetry,
                    actions,
                };
                host.on_packet(pkt, &mut ctx);
                self.hosts.insert(node_id, host);
            }
            // No host bound: silent blackhole (e.g. pair-resolver addresses).
        }
    }

    fn apply(&mut self, actions: &mut Vec<Action>) {
        for action in actions.drain(..) {
            match action {
                Action::Send { from, pkt, delay } => {
                    let at = self.now + delay;
                    self.launch(at, from, pkt);
                }
                Action::HostTimer { node, token, delay } => {
                    self.push(self.now + delay, EventKind::HostTimer { node, token });
                }
                Action::TapTimer {
                    node,
                    tap_index,
                    token,
                    delay,
                } => {
                    self.push(
                        self.now + delay,
                        EventKind::TapTimer {
                            node,
                            tap_index,
                            token,
                        },
                    );
                }
                Action::Post { node, msg, delay } => {
                    self.push(self.now + delay, EventKind::Message { node, msg });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyBuilder;
    use shadow_geo::{Asn, Region};
    use shadow_packet::udp::UdpDatagram;
    use std::net::Ipv4Addr;

    /// Echo host: bounces any UDP payload back to the sender.
    struct Echo {
        addr: Ipv4Addr,
        received: Vec<(SimTime, Vec<u8>)>,
    }

    impl Host for Echo {
        fn on_packet(&mut self, pkt: Ipv4Packet, ctx: &mut Ctx<'_>) {
            if pkt.header.protocol != IpProtocol::Udp {
                return;
            }
            let dg = UdpDatagram::decode(&pkt.payload).expect("well-formed in test");
            self.received.push((ctx.now(), dg.payload.to_vec()));
            let reply = UdpDatagram::new(dg.dst_port, dg.src_port, dg.payload);
            ctx.send(Ipv4Packet::new(
                self.addr,
                pkt.header.src,
                IpProtocol::Udp,
                DEFAULT_TTL,
                1,
                reply.encode(),
            ));
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Sink host: records everything.
    struct Sink {
        received: Vec<(SimTime, Ipv4Packet)>,
        timers: Vec<(SimTime, u64)>,
        messages: Vec<SimTime>,
    }

    impl Sink {
        fn new() -> Self {
            Self {
                received: Vec::new(),
                timers: Vec::new(),
                messages: Vec::new(),
            }
        }
    }

    impl Host for Sink {
        fn on_packet(&mut self, pkt: Ipv4Packet, ctx: &mut Ctx<'_>) {
            self.received.push((ctx.now(), pkt));
        }

        fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
            self.timers.push((ctx.now(), token));
            if token < 3 {
                ctx.timer(SimDuration::from_secs(1), token + 1);
            }
        }

        fn on_message(&mut self, _msg: Box<dyn Any + Send + Sync>, ctx: &mut Ctx<'_>) {
            self.messages.push(ctx.now());
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Counting tap; drops packets to `poison` destinations.
    struct CountingTap {
        seen: usize,
        poison: Option<Ipv4Addr>,
    }

    impl WireTap for CountingTap {
        fn on_packet(
            &mut self,
            pkt: &Ipv4Packet,
            _view: &DecodedView,
            _at: NodeId,
            _ctx: &mut Ctx<'_>,
        ) -> TapVerdict {
            self.seen += 1;
            if Some(pkt.header.dst) == self.poison {
                TapVerdict::Drop
            } else {
                TapVerdict::Continue
            }
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct World {
        engine: Engine,
        client: NodeId,
        server: NodeId,
        client_addr: Ipv4Addr,
        server_addr: Ipv4Addr,
        #[allow(dead_code)]
        first_router: NodeId,
    }

    fn world() -> World {
        let mut tb = TopologyBuilder::new(7);
        tb.add_as(Asn(10), Region::Europe);
        tb.add_as(Asn(20), Region::Europe);
        tb.add_as(Asn(30), Region::EastAsia);
        tb.link(Asn(10), Asn(20)).unwrap();
        tb.link(Asn(20), Asn(30)).unwrap();
        let mut first_router = None;
        for (asn, base) in [(10u32, 1u8), (20, 2), (30, 3)] {
            for r in 0..2u8 {
                let id = tb
                    .add_router(Asn(asn), Ipv4Addr::new(base, 0, 0, r + 1), true)
                    .unwrap();
                if first_router.is_none() {
                    first_router = Some(id);
                }
            }
        }
        let client_addr = Ipv4Addr::new(1, 1, 0, 1);
        let server_addr = Ipv4Addr::new(3, 1, 0, 1);
        let client = tb.add_host(Asn(10), client_addr).unwrap();
        let server = tb.add_host(Asn(30), server_addr).unwrap();
        let engine = Engine::new(tb.build().unwrap());
        World {
            engine,
            client,
            server,
            client_addr,
            server_addr,
            first_router: first_router.unwrap(),
        }
    }

    fn udp_packet(src: Ipv4Addr, dst: Ipv4Addr, ttl: u8, payload: &[u8]) -> Ipv4Packet {
        Ipv4Packet::new(
            src,
            dst,
            IpProtocol::Udp,
            ttl,
            99,
            UdpDatagram::new(1000, 2000, payload.to_vec()).encode(),
        )
    }

    #[test]
    fn packet_reaches_host_and_echoes_back() {
        let mut w = world();
        w.engine.add_host(
            w.server,
            Box::new(Echo {
                addr: w.server_addr,
                received: Vec::new(),
            }),
        );
        w.engine.add_host(w.client, Box::new(Sink::new()));
        w.engine.inject(
            SimTime::ZERO,
            w.client,
            udp_packet(w.client_addr, w.server_addr, DEFAULT_TTL, b"hello"),
        );
        w.engine.run_to_completion();
        let echo = w.engine.host_as::<Echo>(w.server).unwrap();
        assert_eq!(echo.received.len(), 1);
        assert_eq!(echo.received[0].1, b"hello");
        let sink = w.engine.host_as::<Sink>(w.client).unwrap();
        assert_eq!(sink.received.len(), 1, "client got the echo");
        assert!(sink.received[0].0 > SimTime::ZERO, "latency accrued");
        assert_eq!(w.engine.stats().packets_delivered, 2);
    }

    #[test]
    fn ttl_expiry_generates_icmp_from_router() {
        let mut w = world();
        w.engine.add_host(w.client, Box::new(Sink::new()));
        // TTL=1 expires at the first router on the path.
        w.engine.inject(
            SimTime::ZERO,
            w.client,
            udp_packet(w.client_addr, w.server_addr, 1, b"probe"),
        );
        w.engine.run_to_completion();
        assert_eq!(w.engine.stats().ttl_expirations, 1);
        assert_eq!(w.engine.stats().icmp_time_exceeded_sent, 1);
        let sink = w.engine.host_as::<Sink>(w.client).unwrap();
        assert_eq!(sink.received.len(), 1);
        let pkt = &sink.received[0].1;
        assert_eq!(pkt.header.protocol, IpProtocol::Icmp);
        let msg = IcmpMessage::decode(&pkt.payload).unwrap();
        let orig = msg.original_header().unwrap();
        assert_eq!(orig.src, w.client_addr);
        assert_eq!(orig.dst, w.server_addr);
        assert_eq!(orig.ttl, 0);
        // The ICMP source is a router on the path, not the destination.
        let src_node = w.engine.topology().nodes_at(pkt.header.src);
        assert!(!src_node.is_empty());
        assert!(w.engine.topology().node(src_node[0]).is_router());
    }

    #[test]
    fn ttl_sweep_exposes_consecutive_routers() {
        let mut w = world();
        w.engine.add_host(w.client, Box::new(Sink::new()));
        let route = w
            .engine
            .topology()
            .route(w.client, w.server)
            .unwrap()
            .to_vec();
        let router_hops = route.len() - 2;
        for ttl in 1..=router_hops as u8 {
            w.engine.inject(
                SimTime(ttl as u64 * 10_000),
                w.client,
                udp_packet(w.client_addr, w.server_addr, ttl, b"sweep"),
            );
        }
        w.engine.run_to_completion();
        let sink = w.engine.host_as::<Sink>(w.client).unwrap();
        assert_eq!(sink.received.len(), router_hops);
        // The i-th ICMP comes from the i-th router on the route.
        for (i, (_, pkt)) in sink.received.iter().enumerate() {
            let expected = w.engine.topology().node(route[i + 1]).addr;
            assert_eq!(pkt.header.src, expected, "hop {}", i + 1);
        }
    }

    #[test]
    fn silent_router_suppresses_icmp() {
        let mut tb = TopologyBuilder::new(3);
        tb.add_as(Asn(1), Region::Europe);
        tb.add_as(Asn(2), Region::Europe);
        tb.link(Asn(1), Asn(2)).unwrap();
        tb.add_router(Asn(1), Ipv4Addr::new(1, 0, 0, 1), false)
            .unwrap();
        tb.add_router(Asn(2), Ipv4Addr::new(2, 0, 0, 1), false)
            .unwrap();
        let client = tb.add_host(Asn(1), Ipv4Addr::new(1, 1, 1, 1)).unwrap();
        let _server = tb.add_host(Asn(2), Ipv4Addr::new(2, 1, 1, 1)).unwrap();
        let mut engine = Engine::new(tb.build().unwrap());
        engine.add_host(client, Box::new(Sink::new()));
        engine.inject(
            SimTime::ZERO,
            client,
            udp_packet(
                Ipv4Addr::new(1, 1, 1, 1),
                Ipv4Addr::new(2, 1, 1, 1),
                1,
                b"x",
            ),
        );
        engine.run_to_completion();
        assert_eq!(engine.stats().ttl_expirations, 1);
        assert_eq!(engine.stats().icmp_suppressed, 1);
        let sink = engine.host_as::<Sink>(client).unwrap();
        assert!(sink.received.is_empty(), "no ICMP from a silent router");
    }

    #[test]
    fn tap_sees_and_can_drop() {
        let mut w = world();
        let route = w.engine.topology().route(w.client, w.server).unwrap();
        let tap_node = route[1];
        w.engine.add_tap(
            tap_node,
            Box::new(CountingTap {
                seen: 0,
                poison: Some(w.server_addr),
            }),
        );
        w.engine.add_host(w.server, Box::new(Sink::new()));
        w.engine.inject(
            SimTime::ZERO,
            w.client,
            udp_packet(w.client_addr, w.server_addr, DEFAULT_TTL, b"to-drop"),
        );
        w.engine.run_to_completion();
        let tap = w.engine.tap_as::<CountingTap>(tap_node, 0).unwrap();
        assert_eq!(tap.seen, 1);
        assert_eq!(w.engine.stats().packets_dropped_by_tap, 1);
        let sink = w.engine.host_as::<Sink>(w.server).unwrap();
        assert!(sink.received.is_empty(), "tap dropped the packet");
    }

    #[test]
    fn timers_chain_and_messages_deliver() {
        let mut w = world();
        w.engine.add_host(w.client, Box::new(Sink::new()));
        w.engine
            .post(SimTime(500), w.client, Box::new("kick".to_string()));
        // Kick off a timer chain via a packet-free path: arm via message is
        // not exposed, so drive a timer through a self-posted message first.
        struct Kicker;
        // Simplest: run and then arm timers directly through dispatch.
        w.engine.run_to_completion();
        let _ = Kicker;
        {
            let sink = w.engine.host_as::<Sink>(w.client).unwrap();
            assert_eq!(sink.messages, vec![SimTime(500)]);
        }
        // Arm a timer chain: token increments until 3 (see Sink::on_timer).
        w.engine.push(
            SimTime(1_000),
            EventKind::HostTimer {
                node: w.client,
                token: 0,
            },
        );
        w.engine.run_to_completion();
        let sink = w.engine.host_as::<Sink>(w.client).unwrap();
        assert_eq!(
            sink.timers.iter().map(|&(_, t)| t).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(sink.timers[3].0, SimTime(4_000));
    }

    #[test]
    fn unroutable_packets_counted() {
        let mut w = world();
        w.engine.inject(
            SimTime::ZERO,
            w.client,
            udp_packet(w.client_addr, Ipv4Addr::new(203, 0, 113, 99), 64, b"void"),
        );
        w.engine.run_to_completion();
        assert_eq!(w.engine.stats().packets_dropped_unroutable, 1);
        assert_eq!(w.engine.stats().packets_delivered, 0);
    }

    #[test]
    fn deterministic_event_order() {
        let run = || {
            let mut w = world();
            w.engine.add_host(
                w.server,
                Box::new(Echo {
                    addr: w.server_addr,
                    received: Vec::new(),
                }),
            );
            w.engine.add_host(w.client, Box::new(Sink::new()));
            for i in 0..10u64 {
                w.engine.inject(
                    SimTime(i * 3),
                    w.client,
                    udp_packet(w.client_addr, w.server_addr, DEFAULT_TTL, &i.to_be_bytes()),
                );
            }
            w.engine.run_to_completion();
            w.engine
                .host_as::<Sink>(w.client)
                .unwrap()
                .received
                .iter()
                .map(|(t, p)| (*t, p.payload.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn blackhole_address_swallows_silently() {
        // A host node with no bound Host: the pair-resolver shape.
        let mut w = world();
        w.engine.inject(
            SimTime::ZERO,
            w.client,
            udp_packet(w.client_addr, w.server_addr, DEFAULT_TTL, b"unanswered"),
        );
        w.engine.run_to_completion();
        assert_eq!(w.engine.stats().packets_delivered, 1);
        // Nothing came back, no crash: the client had no host either.
    }
}

#[cfg(test)]
mod budget_tests {
    use super::*;
    use crate::topology::TopologyBuilder;
    use shadow_geo::{Asn, Region};
    use shadow_packet::udp::UdpDatagram;
    use std::net::Ipv4Addr;

    fn tiny() -> (Engine, NodeId, Ipv4Addr, Ipv4Addr) {
        let mut tb = TopologyBuilder::new(1);
        tb.add_as(Asn(1), Region::Europe);
        tb.add_router(Asn(1), Ipv4Addr::new(1, 0, 0, 1), true)
            .unwrap();
        let a = Ipv4Addr::new(1, 1, 0, 1);
        let b = Ipv4Addr::new(1, 1, 0, 2);
        let client = tb.add_host(Asn(1), a).unwrap();
        tb.add_host(Asn(1), b).unwrap();
        (Engine::new(tb.build().unwrap()), client, a, b)
    }

    fn pkt(src: Ipv4Addr, dst: Ipv4Addr) -> Ipv4Packet {
        Ipv4Packet::new(
            src,
            dst,
            IpProtocol::Udp,
            DEFAULT_TTL,
            1,
            UdpDatagram::new(1, 2, vec![0]).encode(),
        )
    }

    #[test]
    fn budget_drains_small_queues() {
        let (mut engine, client, a, b) = tiny();
        engine.inject(SimTime::ZERO, client, pkt(a, b));
        let (processed, drained) = engine.run_with_budget(1_000);
        assert!(drained);
        assert!(processed >= 2, "at least router hop + delivery");
    }

    #[test]
    fn budget_caps_runaway_queues() {
        let (mut engine, client, a, b) = tiny();
        for i in 0..100u64 {
            engine.inject(SimTime(i), client, pkt(a, b));
        }
        let (processed, drained) = engine.run_with_budget(10);
        assert_eq!(processed, 10);
        assert!(!drained, "budget exhausted before the queue");
        // A later unconstrained run finishes the rest.
        let (_, drained) = engine.run_with_budget(u64::MAX);
        assert!(drained);
        assert_eq!(engine.stats().packets_delivered, 100);
    }
}
