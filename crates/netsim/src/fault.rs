//! Deterministic link/node fault injection — the engine-side half of the
//! `shadow-chaos` subsystem.
//!
//! A [`LinkConditioner`] holds compiled fault state: per-link loss,
//! duplication and jitter probabilities, scheduled node-outage windows
//! (downed routers, resolvers, VPs, honeypots), a fractional link-outage
//! window, and ICMP Time Exceeded rate limiting. The engine consults an
//! `Option<LinkConditioner>` on its forwarding path; when none is
//! installed every check is a single `None` branch, mirroring the
//! telemetry zero-cost pattern.
//!
//! Every probabilistic decision is **value-derived**: it hashes the packet
//! identity (`splitmix64(fnv1a(packet identity) ^ fault_seed)` — the same
//! rule the sharded executor relies on) rather than drawing from a
//! sequential RNG stream. A packet therefore meets the same fate no matter
//! which shard simulates it or in what order events interleave, so a fixed
//! `(WorldConfig, FaultProfile, seed)` stays byte-identical at any shard
//! count. The identity is built from shard-invariant facts ONLY: src, dst,
//! protocol, TTL and payload *length*. It deliberately excludes
//! `header.identification` (ICMP replies take theirs from a per-engine
//! counter whose value depends on shard-local event order) and payload
//! *content* (payloads embed host-local allocation counters — a resolver's
//! upstream DNS transaction id, a probe origin's query id — that advance
//! per traffic *seen*, which in a sharded run is a subset). Two packets
//! with the same signature departing the same link in the same millisecond
//! share one fate; with millisecond times and per-flow ports in the length
//! that collision is rare and statistically harmless.

use crate::topology::{mix3, NodeId};
use shadow_packet::ipv4::Ipv4Header;
use std::collections::HashMap;

/// Probabilities are integer parts-per-million so decisions are exact
/// modular comparisons, never float-rounding-dependent.
pub const PPM_SCALE: u64 = 1_000_000;

/// Duplicated copies trail the original by 1..=DUP_SPREAD_MS extra ms, so
/// the copy never collides with the original at the same instant.
const DUP_SPREAD_MS: u64 = 5;

// Decision lanes: distinct salts so one packet's loss / duplication /
// jitter / ICMP / outage draws are independent.
const LANE_LOSS: u64 = 0x6c6f_7373_0000_0001;
const LANE_DUP: u64 = 0x6475_7065_0000_0002;
const LANE_DUP_DELAY: u64 = 0x6475_7065_0000_0003;
const LANE_JITTER: u64 = 0x6a69_7474_0000_0004;
const LANE_ICMP: u64 = 0x6963_6d70_0000_0005;
const LANE_LINK_OUTAGE: u64 = 0x6f75_7461_0000_0006;

/// FNV-1a over bytes, 64-bit variant.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Convert a probability in `[0, 1]` to integer parts-per-million.
pub fn fraction_to_ppm(fraction: f64) -> u32 {
    (fraction.clamp(0.0, 1.0) * PPM_SCALE as f64).round() as u32
}

/// A half-open simulated-time interval `[start_ms, end_ms)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    pub start_ms: u64,
    pub end_ms: u64,
}

impl OutageWindow {
    pub fn new(start_ms: u64, end_ms: u64) -> Self {
        Self { start_ms, end_ms }
    }

    #[inline]
    pub fn contains(&self, at_ms: u64) -> bool {
        at_ms >= self.start_ms && at_ms < self.end_ms
    }
}

/// What the conditioner decided for one link transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkVerdict {
    /// Deliver, `extra_delay_ms` late; optionally also deliver a duplicate
    /// a further `duplicate_after_ms` later.
    Deliver {
        extra_delay_ms: u64,
        duplicate_after_ms: Option<u64>,
    },
    /// Random loss swallowed the packet.
    Lost,
    /// The link is inside a scheduled outage window.
    OutageDrop,
}

impl LinkVerdict {
    /// The no-fault verdict.
    pub const CLEAN: LinkVerdict = LinkVerdict::Deliver {
        extra_delay_ms: 0,
        duplicate_after_ms: None,
    };
}

/// Compiled fault state the engine consults per transmission. Built by the
/// `shadow-chaos` crate from a declarative `FaultProfile`; plain data, so
/// one instance is shared read-only across every shard of a campaign.
#[derive(Debug, Clone, Default)]
pub struct LinkConditioner {
    seed: u64,
    loss_ppm: u32,
    dup_ppm: u32,
    jitter_ms: u64,
    icmp_drop_ppm: u32,
    /// `(fraction_ppm, window)`: that fraction of links (hash-selected) is
    /// down for the window — no link enumeration required.
    link_outage: Option<(u32, OutageWindow)>,
    /// Scheduled downtime per node (routers, resolvers, VPs, honeypots).
    node_outages: HashMap<NodeId, Vec<OutageWindow>>,
}

impl LinkConditioner {
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    pub fn with_loss_ppm(mut self, ppm: u32) -> Self {
        self.loss_ppm = ppm;
        self
    }

    pub fn with_duplication_ppm(mut self, ppm: u32) -> Self {
        self.dup_ppm = ppm;
        self
    }

    /// Uniform extra per-link delay in `0..=jitter_ms` milliseconds.
    pub fn with_jitter_ms(mut self, jitter_ms: u64) -> Self {
        self.jitter_ms = jitter_ms;
        self
    }

    /// Probability (ppm) that a router's ICMP Time Exceeded is rate-limited.
    pub fn with_icmp_drop_ppm(mut self, ppm: u32) -> Self {
        self.icmp_drop_ppm = ppm;
        self
    }

    /// Down `fraction_ppm` of all links (hash-selected) during `window`.
    pub fn with_link_outage(mut self, fraction_ppm: u32, window: OutageWindow) -> Self {
        self.link_outage = Some((fraction_ppm, window));
        self
    }

    /// Schedule downtime for one node. Windows accumulate.
    pub fn add_node_outage(&mut self, node: NodeId, window: OutageWindow) {
        self.node_outages.entry(node).or_default().push(window);
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when the node is inside one of its scheduled outage windows.
    #[inline]
    pub fn node_down(&self, node: NodeId, at_ms: u64) -> bool {
        match self.node_outages.get(&node) {
            Some(windows) => windows.iter().any(|w| w.contains(at_ms)),
            None => false,
        }
    }

    /// Value-derived per-packet draw on `lane`, salted with transmission
    /// context (time + endpoints) so re-sends and later hops re-roll.
    #[inline]
    fn draw(&self, key: u64, lane: u64, salt: u64) -> u64 {
        mix3(key ^ self.seed, lane, salt)
    }

    /// Decide the fate of one transmission of `(header, payload)` departing
    /// at `at_ms` over the link `from → to`.
    pub fn link_verdict(
        &self,
        at_ms: u64,
        from: NodeId,
        to: NodeId,
        header: &Ipv4Header,
        payload: &[u8],
    ) -> LinkVerdict {
        if let Some((fraction_ppm, window)) = self.link_outage {
            if window.contains(at_ms) {
                let (lo, hi) = if from.0 <= to.0 {
                    (from.0, to.0)
                } else {
                    (to.0, from.0)
                };
                let h = mix3(self.seed ^ LANE_LINK_OUTAGE, u64::from(lo), u64::from(hi));
                if h % PPM_SCALE < u64::from(fraction_ppm) {
                    return LinkVerdict::OutageDrop;
                }
            }
        }
        if self.loss_ppm == 0 && self.dup_ppm == 0 && self.jitter_ms == 0 {
            return LinkVerdict::CLEAN;
        }
        let key = packet_identity(header, payload);
        let salt = transmission_salt(at_ms, from, to);
        if self.loss_ppm > 0
            && self.draw(key, LANE_LOSS, salt) % PPM_SCALE < u64::from(self.loss_ppm)
        {
            return LinkVerdict::Lost;
        }
        let extra_delay_ms = if self.jitter_ms > 0 {
            self.draw(key, LANE_JITTER, salt) % (self.jitter_ms + 1)
        } else {
            0
        };
        let duplicate_after_ms = if self.dup_ppm > 0
            && self.draw(key, LANE_DUP, salt) % PPM_SCALE < u64::from(self.dup_ppm)
        {
            Some(1 + self.draw(key, LANE_DUP_DELAY, salt) % DUP_SPREAD_MS)
        } else {
            None
        };
        LinkVerdict::Deliver {
            extra_delay_ms,
            duplicate_after_ms,
        }
    }

    /// Whether the ICMP Time Exceeded for `(header, payload)` expiring at
    /// `node` is suppressed by rate limiting.
    pub fn suppress_icmp(
        &self,
        at_ms: u64,
        node: NodeId,
        header: &Ipv4Header,
        payload: &[u8],
    ) -> bool {
        if self.icmp_drop_ppm == 0 {
            return false;
        }
        let key = packet_identity(header, payload);
        let salt = at_ms ^ (u64::from(node.0) << 32);
        self.draw(key, LANE_ICMP, salt) % PPM_SCALE < u64::from(self.icmp_drop_ppm)
    }
}

/// The value-derived packet identity: src, dst, protocol, TTL and payload
/// length. Never the IP identification field or payload content — both
/// can depend on shard-local state (see module docs).
fn packet_identity(header: &Ipv4Header, payload: &[u8]) -> u64 {
    let mut bytes = [0u8; 18];
    bytes[..4].copy_from_slice(&header.src.octets());
    bytes[4..8].copy_from_slice(&header.dst.octets());
    bytes[8] = header.protocol.number();
    bytes[9] = header.ttl;
    bytes[10..].copy_from_slice(&(payload.len() as u64).to_be_bytes());
    fnv1a64(&bytes)
}

#[inline]
fn transmission_salt(at_ms: u64, from: NodeId, to: NodeId) -> u64 {
    at_ms ^ (u64::from(from.0) << 40) ^ (u64::from(to.0) << 20)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_packet::ipv4::{IpProtocol, Ipv4Packet};
    use std::net::Ipv4Addr;

    fn header(ident: u16, ttl: u8) -> (Ipv4Header, Vec<u8>) {
        let pkt = Ipv4Packet::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProtocol::Udp,
            ttl,
            ident,
            vec![1, 2, 3, 4],
        );
        (pkt.header, pkt.payload.to_vec())
    }

    #[test]
    fn decisions_are_deterministic() {
        let c = LinkConditioner::new(7)
            .with_loss_ppm(500_000)
            .with_jitter_ms(9);
        let (h, p) = header(42, 60);
        let a = c.link_verdict(1_000, NodeId(3), NodeId(4), &h, &p);
        let b = c.link_verdict(1_000, NodeId(3), NodeId(4), &h, &p);
        assert_eq!(a, b);
    }

    #[test]
    fn identity_ignores_ip_identification() {
        // ICMP replies carry an engine-local ident; the fate of a packet
        // must not depend on it or shards would diverge.
        let c = LinkConditioner::new(7).with_loss_ppm(500_000);
        let (h1, p) = header(1, 60);
        let (h2, _) = header(9_999, 60);
        assert_eq!(
            c.link_verdict(5, NodeId(1), NodeId(2), &h1, &p),
            c.link_verdict(5, NodeId(1), NodeId(2), &h2, &p),
        );
    }

    #[test]
    fn retransmissions_reroll() {
        // Same packet, later departure: an independent draw, so a retry can
        // survive where the first transmission was lost.
        let c = LinkConditioner::new(11).with_loss_ppm(500_000);
        let (h, p) = header(1, 60);
        let fates: Vec<_> = (0..64)
            .map(|t| c.link_verdict(t * 1_000, NodeId(1), NodeId(2), &h, &p))
            .collect();
        assert!(fates.contains(&LinkVerdict::Lost));
        assert!(fates.iter().any(|f| *f != LinkVerdict::Lost));
    }

    #[test]
    fn total_loss_drops_everything() {
        let c = LinkConditioner::new(3).with_loss_ppm(PPM_SCALE as u32);
        let (h, p) = header(1, 60);
        for t in 0..32 {
            assert_eq!(
                c.link_verdict(t, NodeId(1), NodeId(2), &h, &p),
                LinkVerdict::Lost
            );
        }
    }

    #[test]
    fn zero_profile_is_clean() {
        let c = LinkConditioner::new(99);
        let (h, p) = header(1, 60);
        assert_eq!(
            c.link_verdict(123, NodeId(1), NodeId(2), &h, &p),
            LinkVerdict::CLEAN
        );
        assert!(!c.suppress_icmp(123, NodeId(1), &h, &p));
        assert!(!c.node_down(NodeId(1), 123));
    }

    #[test]
    fn node_outage_windows_are_half_open() {
        let mut c = LinkConditioner::new(0);
        c.add_node_outage(NodeId(5), OutageWindow::new(100, 200));
        assert!(!c.node_down(NodeId(5), 99));
        assert!(c.node_down(NodeId(5), 100));
        assert!(c.node_down(NodeId(5), 199));
        assert!(!c.node_down(NodeId(5), 200));
        assert!(!c.node_down(NodeId(6), 150));
    }

    #[test]
    fn loss_rate_tracks_probability() {
        let c = LinkConditioner::new(21).with_loss_ppm(100_000); // 10%
        let (h, p) = header(1, 60);
        let mut lost = 0;
        let n: u64 = 20_000;
        for t in 0..n {
            if c.link_verdict(t, NodeId(1), NodeId(2), &h, &p) == LinkVerdict::Lost {
                lost += 1;
            }
        }
        let rate = lost as f64 / n as f64;
        assert!((0.08..0.12).contains(&rate), "got {rate}");
    }

    #[test]
    fn identity_ignores_payload_content_but_not_length() {
        // Payload bytes embed host-local counters (resolver upstream txids,
        // probe-origin query ids) that are shard-dependent; only the length
        // may influence fate.
        let c = LinkConditioner::new(7).with_loss_ppm(500_000);
        let (h, _) = header(1, 60);
        let same_len = |p: &[u8]| c.link_verdict(5, NodeId(1), NodeId(2), &h, p);
        assert_eq!(same_len(&[1, 2, 3, 4]), same_len(&[9, 9, 9, 9]));
        let lens: Vec<_> = (0..64usize)
            .map(|n| c.link_verdict(5, NodeId(1), NodeId(2), &h, &vec![0u8; n]))
            .collect();
        assert!(lens.contains(&LinkVerdict::Lost));
        assert!(lens.iter().any(|f| *f != LinkVerdict::Lost));
    }

    #[test]
    fn fractional_link_outage_downs_some_links_within_window() {
        let c = LinkConditioner::new(5).with_link_outage(500_000, OutageWindow::new(1_000, 2_000));
        let (h, p) = header(1, 60);
        let down_in_window = |a: u32, b: u32| {
            c.link_verdict(1_500, NodeId(a), NodeId(b), &h, &p) == LinkVerdict::OutageDrop
        };
        let downed: Vec<_> = (0..64u32).filter(|&i| down_in_window(i, i + 1)).collect();
        assert!(!downed.is_empty());
        assert!(downed.len() < 64);
        // Symmetric: both directions of a link share one fate.
        for &i in &downed {
            assert!(down_in_window(i + 1, i) || i + 1 > 64);
            assert_eq!(down_in_window(i, i + 1), down_in_window(i + 1, i));
        }
        // Outside the window everything flows.
        assert_eq!(
            c.link_verdict(2_000, NodeId(downed[0]), NodeId(downed[0] + 1), &h, &p),
            LinkVerdict::CLEAN
        );
    }

    #[test]
    fn fnv1a64_matches_known_vector() {
        // FNV-1a 64-bit of empty input is the offset basis.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }

    #[test]
    fn fraction_to_ppm_clamps() {
        assert_eq!(fraction_to_ppm(0.0), 0);
        assert_eq!(fraction_to_ppm(1.0), 1_000_000);
        assert_eq!(fraction_to_ppm(2.5), 1_000_000);
        assert_eq!(fraction_to_ppm(-1.0), 0);
        assert_eq!(fraction_to_ppm(0.001), 1_000);
    }
}
