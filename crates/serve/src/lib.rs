//! `shadow-serve`: the always-on measurement service.
//!
//! The paper's phenomenon is longitudinal — shadowed traffic arrives hours
//! to weeks after the decoy that provoked it — yet `full_campaign` was a
//! one-shot batch: compute, print, exit. This crate turns the campaign
//! into a long-running daemon, in three layers:
//!
//! * **[`driver`]** — a wave-based campaign driver. The daemon's run is a
//!   sequence of bounded, independent *waves*; wave *w* is a full
//!   `Study::run_sharded` over a per-wave seed drawn from dedicated
//!   SplitMix64 streams, and its streamed aggregates, telemetry counters,
//!   and journal fold commutatively into the cumulative state. Because
//!   each wave is a pure function of `(base config, wave seed)` and every
//!   fold is commutative, the cumulative state after wave *N* is
//!   byte-identical whether the process ran straight through or was
//!   interrupted and resumed — at any shard count.
//!
//! * **[`checkpoint`]** — the durable form of that cumulative state: a
//!   versioned, world-hashed JSON file of sink aggregates (in their
//!   portable entry-vector form), RNG stream positions, the simulated-time
//!   cursor, merged metrics, and the offset journal. Written atomically
//!   (tmp + rename) after every wave.
//!
//! * **[`http`]** / **[`daemon`]** — a hand-rolled HTTP/1.1 server on
//!   `std::net::TcpListener` with a fixed worker pool (no tokio/hyper; the
//!   vendored stand-ins are the only dependencies). JSON reads come from
//!   an [`state::Snapshot`] published once per wave behind a
//!   `parking_lot::RwLock<Arc<_>>` — responses are pre-rendered strings,
//!   so request handling is O(response bytes) and never contends with the
//!   campaign hot path. `/api/journal/tail` streams the journal as
//!   Server-Sent Events through the bounded
//!   [`shadow_telemetry::JournalTailHub`] rings.

pub mod checkpoint;
pub mod client;
pub mod daemon;
pub mod driver;
pub mod http;
pub mod state;

pub use checkpoint::{CampaignCheckpoint, CheckpointHeader, CHECKPOINT_VERSION};
pub use daemon::{serve, ServeHandle};
pub use driver::{CampaignDriver, ServeConfig, WaveReport};
pub use state::{ServeState, Snapshot};

use std::fmt;
use std::path::PathBuf;

/// Everything that can go wrong outside a campaign itself: checkpoint
/// I/O and validation, and daemon start-up.
#[derive(Debug)]
pub enum ServeError {
    /// Filesystem failure reading or writing `path`.
    Io {
        path: PathBuf,
        source: std::io::Error,
    },
    /// `--resume` named a checkpoint file that does not exist.
    MissingCheckpoint(PathBuf),
    /// The checkpoint file is not valid JSON / not a checkpoint.
    Parse(String),
    /// The checkpoint was written by an incompatible format version.
    Version { found: u32, supported: u32 },
    /// The checkpoint was taken from a different campaign configuration
    /// (world, phase configs, fault profile, or wave count differ).
    WorldMismatch { expected: u64, found: u64 },
    /// The checkpoint was taken at a different shard count.
    ShardMismatch { expected: usize, found: usize },
    /// Internally inconsistent checkpoint contents.
    Corrupt(String),
    /// The HTTP listener could not be started.
    Bind {
        addr: String,
        source: std::io::Error,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io { path, source } => {
                write!(f, "checkpoint I/O failed for {}: {source}", path.display())
            }
            ServeError::MissingCheckpoint(path) => {
                write!(f, "checkpoint file not found: {}", path.display())
            }
            ServeError::Parse(msg) => write!(f, "checkpoint does not parse: {msg}"),
            ServeError::Version { found, supported } => write!(
                f,
                "checkpoint format version {found} is not supported (this build reads version {supported})"
            ),
            ServeError::WorldMismatch { expected, found } => write!(
                f,
                "checkpoint world-hash {found:#018x} does not match this configuration's {expected:#018x} \
                 (different world/phase/fault configuration or wave count)"
            ),
            ServeError::ShardMismatch { expected, found } => write!(
                f,
                "checkpoint was taken with {found} shard(s) but this run uses {expected}"
            ),
            ServeError::Corrupt(msg) => write!(f, "checkpoint is corrupt: {msg}"),
            ServeError::Bind { addr, source } => {
                write!(f, "cannot bind HTTP listener on {addr}: {source}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io { source, .. } | ServeError::Bind { source, .. } => Some(source),
            _ => None,
        }
    }
}
