//! The durable campaign state: a versioned JSON file.
//!
//! Format (version 1): a single pretty-printed JSON object —
//!
//! * `header` — `version`, a `world_hash` binding the file to the exact
//!   campaign configuration (world/phase/fault config + wave count), the
//!   shard count, and the total wave count;
//! * `waves_done` / `sim_cursor_ms` — resume position on the wave and
//!   simulated-time axes;
//! * `rng_streams` — the per-shard SplitMix64 stream states (also an
//!   integrity check: they must re-derive from `(seed, waves_done)`);
//! * `aggregates` — the cumulative sink aggregates in their portable
//!   entry-vector form ([`PortableAggregates`]);
//! * `metrics` — the merged [`MetricsSnapshot`] (wall-clock timings
//!   zeroed, so the file is deterministic);
//! * `journal` — the cumulative event journal on the campaign time axis.
//!
//! Versioning: `version` is checked on parse and rejected with a clear
//! error when it differs from [`CHECKPOINT_VERSION`]; any future layout
//! change bumps the constant. Rendering is deterministic (all maps were
//! flattened in `BTreeMap` order), so "two checkpoints are byte-equal" is
//! a meaningful — and tested — statement about resume fidelity.

use crate::ServeError;
use serde::{Deserialize, Serialize};
use shadow_core::sink::PortableAggregates;
use shadow_telemetry::{JournalRecord, MetricsSnapshot};
use std::path::Path;

/// Bump on any incompatible change to [`CampaignCheckpoint`]'s layout.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Identity and position metadata, validated before any payload is used.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointHeader {
    pub version: u32,
    /// FNV-1a over the campaign-shaping configuration; see
    /// [`crate::ServeConfig::world_hash`].
    pub world_hash: u64,
    pub shards: usize,
    pub waves_total: usize,
}

/// Everything needed to continue the campaign exactly where it stopped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignCheckpoint {
    pub header: CheckpointHeader,
    pub waves_done: usize,
    pub sim_cursor_ms: u64,
    pub rng_streams: Vec<u64>,
    pub aggregates: PortableAggregates,
    pub metrics: MetricsSnapshot,
    pub journal: Vec<JournalRecord>,
}

impl CampaignCheckpoint {
    /// Deterministic rendering — the resume-fidelity tests compare these
    /// strings byte-for-byte.
    pub fn to_json(&self) -> Result<String, ServeError> {
        serde_json::to_string_pretty(self).map_err(|e| ServeError::Parse(e.to_string()))
    }

    /// Parse and version-check.
    pub fn from_json(json: &str) -> Result<Self, ServeError> {
        let checkpoint: CampaignCheckpoint =
            serde_json::from_str(json).map_err(|e| ServeError::Parse(e.to_string()))?;
        if checkpoint.header.version != CHECKPOINT_VERSION {
            return Err(ServeError::Version {
                found: checkpoint.header.version,
                supported: CHECKPOINT_VERSION,
            });
        }
        Ok(checkpoint)
    }

    /// Write atomically: render to a sibling `.tmp` file, then rename over
    /// `path`, so a crash mid-write can never leave a torn checkpoint.
    pub fn save(&self, path: &Path) -> Result<(), ServeError> {
        let json = self.to_json()?;
        let tmp = path.with_extension("tmp");
        let io_err = |source| ServeError::Io {
            path: path.to_path_buf(),
            source,
        };
        std::fs::write(&tmp, json.as_bytes()).map_err(io_err)?;
        std::fs::rename(&tmp, path).map_err(io_err)
    }

    /// Read `path`; a missing file is its own error variant so callers can
    /// say "no checkpoint at <path>" instead of a raw ENOENT.
    pub fn load(path: &Path) -> Result<Self, ServeError> {
        let json = match std::fs::read_to_string(path) {
            Ok(json) => json,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(ServeError::MissingCheckpoint(path.to_path_buf()))
            }
            Err(e) => {
                return Err(ServeError::Io {
                    path: path.to_path_buf(),
                    source: e,
                })
            }
        };
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{CampaignDriver, ServeConfig};

    #[test]
    fn fresh_driver_checkpoint_round_trips() {
        let checkpoint = CampaignDriver::new(ServeConfig::tiny(3)).checkpoint();
        let json = checkpoint.to_json().unwrap();
        let back = CampaignCheckpoint::from_json(&json).unwrap();
        assert_eq!(back, checkpoint);
        assert_eq!(back.to_json().unwrap(), json, "rendering is deterministic");
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut checkpoint = CampaignDriver::new(ServeConfig::tiny(3)).checkpoint();
        checkpoint.header.version = CHECKPOINT_VERSION + 1;
        let json = serde_json::to_string_pretty(&checkpoint).unwrap();
        match CampaignCheckpoint::from_json(&json) {
            Err(ServeError::Version { found, supported }) => {
                assert_eq!(found, CHECKPOINT_VERSION + 1);
                assert_eq!(supported, CHECKPOINT_VERSION);
            }
            other => panic!("expected a version error, got {other:?}"),
        }
    }

    #[test]
    fn missing_file_is_a_distinct_error() {
        let path = std::env::temp_dir().join("shadow-serve-no-such-checkpoint.json");
        match CampaignCheckpoint::load(&path) {
            Err(ServeError::MissingCheckpoint(p)) => assert_eq!(p, path),
            other => panic!("expected MissingCheckpoint, got {other:?}"),
        }
    }

    #[test]
    fn save_then_load_preserves_bytes() {
        let checkpoint = CampaignDriver::new(ServeConfig::tiny(5)).checkpoint();
        let path = std::env::temp_dir().join("shadow-serve-checkpoint-roundtrip.json");
        checkpoint.save(&path).unwrap();
        let loaded = CampaignCheckpoint::load(&path).unwrap();
        assert_eq!(loaded, checkpoint);
        std::fs::remove_file(&path).ok();
    }
}
