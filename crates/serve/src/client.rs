//! A minimal blocking HTTP client for the daemon's API — used by the
//! end-to-end tests, the loadgen example, and the serving benchmark, so
//! none of them hand-roll socket handling.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// `GET path` against `addr`; returns `(status code, body)`. The body is
/// read to `Content-Length` when the server framed it, to EOF otherwise.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut reader = BufReader::new(stream);

    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let code: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line: {status_line:?}"),
            )
        })?;

    let mut content_length: Option<usize> = None;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
        if let Some(value) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse().ok())
        {
            content_length = Some(value);
        }
    }

    let body = match content_length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf)?;
            String::from_utf8_lossy(&buf).into_owned()
        }
        None => {
            let mut buf = String::new();
            reader.read_to_string(&mut buf)?;
            buf
        }
    };
    Ok((code, body))
}

/// Subscribe to an SSE endpoint and collect `data:` payloads until the
/// server sends the `end` event, `max_events` arrive, or `timeout`
/// elapses. Returns the collected payloads and whether the end event was
/// seen.
pub fn sse_collect(
    addr: SocketAddr,
    path: &str,
    max_events: usize,
    timeout: Duration,
) -> std::io::Result<(Vec<String>, bool)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nAccept: text/event-stream\r\n\r\n")
            .as_bytes(),
    )?;
    let mut reader = BufReader::new(stream);

    let deadline = Instant::now() + timeout;
    let mut events = Vec::new();
    let mut ended = false;
    let mut in_headers = true;
    let mut pending_end = false;
    let mut line = String::new();
    while Instant::now() < deadline && events.len() < max_events && !ended {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            // Read timeout: loop to re-check the deadline.
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if in_headers {
            if trimmed.is_empty() {
                in_headers = false;
            }
            continue;
        }
        if trimmed == "event: end" {
            pending_end = true;
        } else if let Some(payload) = trimmed.strip_prefix("data: ") {
            if pending_end {
                ended = true;
            } else {
                events.push(payload.to_string());
            }
        }
    }
    Ok((events, ended))
}
