//! Snapshot publication: the lock-free read side of the daemon.
//!
//! After every wave the campaign thread renders the cumulative state to
//! JSON **once** — aggregates (portable form), metrics, and the latest
//! wave's robustness cell — and publishes the result as an
//! `Arc<Snapshot>` swapped in under a `parking_lot::RwLock`. HTTP workers
//! clone the `Arc` (a refcount bump under a read lock held for
//! nanoseconds) and write the pre-rendered bytes; they never serialize,
//! never touch campaign state, and never hold a lock across I/O. This is
//! what keeps "32 concurrent readers" and "the campaign hot path" from
//! ever meeting on a lock.

use crate::driver::CampaignDriver;
use serde::Serialize;
use shadow_telemetry::JournalTailHub;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One wave's published view: everything an endpoint can answer, already
/// rendered.
pub struct Snapshot {
    pub waves_done: usize,
    pub waves_total: usize,
    pub shards: usize,
    pub sim_cursor_ms: u64,
    pub arrivals_seen: u64,
    pub unsolicited_total: u64,
    /// `/api/aggregates` body (portable aggregates, pretty JSON).
    pub aggregates_json: String,
    /// `/api/metrics` body.
    pub metrics_json: String,
    /// `/api/robustness` body: the latest wave's robustness cell, or JSON
    /// `null` before the first wave (and on resumed drivers until their
    /// next wave completes).
    pub robustness_json: String,
}

impl Snapshot {
    /// Render the driver's cumulative state. `robustness_json` is the
    /// pre-rendered latest-wave cell, if one is in hand.
    pub fn from_driver(driver: &CampaignDriver, robustness_json: Option<String>) -> Self {
        let aggregates = driver.aggregates();
        Self {
            waves_done: driver.waves_done(),
            waves_total: driver.waves_total(),
            shards: driver.config().shards,
            sim_cursor_ms: driver.sim_cursor_ms(),
            arrivals_seen: aggregates.arrivals_seen,
            unsolicited_total: aggregates.unsolicited_total(),
            aggregates_json: serde_json::to_string_pretty(&aggregates.to_portable())
                .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}")),
            metrics_json: driver
                .metrics()
                .to_json()
                .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}")),
            robustness_json: robustness_json.unwrap_or_else(|| "null".to_string()),
        }
    }
}

/// The `/api/status` body.
#[derive(Serialize)]
struct StatusBody {
    done: bool,
    waves_done: u64,
    waves_total: u64,
    shards: u64,
    sim_cursor_ms: u64,
    arrivals_seen: u64,
    unsolicited_total: u64,
    tail_subscribers: u64,
    /// Journal-tail lines dropped because a subscriber ring was full —
    /// the explicit backpressure counter.
    tail_events_dropped: u64,
    checkpoint_error: Option<String>,
}

/// Shared between the campaign thread (writer) and HTTP workers (readers).
pub struct ServeState {
    snapshot: parking_lot::RwLock<Arc<Snapshot>>,
    /// The journal fan-out hub backing `/api/journal/tail`.
    pub tail: Arc<JournalTailHub>,
    done: AtomicBool,
    checkpoint_error: parking_lot::Mutex<Option<String>>,
}

impl ServeState {
    pub fn new(initial: Snapshot, tail_capacity: usize) -> Self {
        Self {
            snapshot: parking_lot::RwLock::new(Arc::new(initial)),
            tail: Arc::new(JournalTailHub::new(tail_capacity)),
            done: AtomicBool::new(false),
            checkpoint_error: parking_lot::Mutex::new(None),
        }
    }

    /// Swap in a freshly rendered wave snapshot.
    pub fn publish(&self, snapshot: Snapshot) {
        *self.snapshot.write() = Arc::new(snapshot);
    }

    /// The current snapshot — a refcount bump, no cloning, no rendering.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snapshot.read())
    }

    pub fn mark_done(&self) {
        self.done.store(true, Ordering::Release);
    }

    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Record a checkpoint-write failure so it surfaces in `/api/status`
    /// instead of vanishing into a background thread.
    pub fn record_checkpoint_error(&self, message: String) {
        *self.checkpoint_error.lock() = Some(message);
    }

    /// Render `/api/status` from the current snapshot plus live tail
    /// counters (subscribers, drops) — the only endpoint rendered
    /// per-request, and it is a few hundred bytes.
    pub fn status_json(&self) -> String {
        let snapshot = self.snapshot();
        let body = StatusBody {
            done: self.is_done(),
            waves_done: snapshot.waves_done as u64,
            waves_total: snapshot.waves_total as u64,
            shards: snapshot.shards as u64,
            sim_cursor_ms: snapshot.sim_cursor_ms,
            arrivals_seen: snapshot.arrivals_seen,
            unsolicited_total: snapshot.unsolicited_total,
            tail_subscribers: self.tail.subscriber_count() as u64,
            tail_events_dropped: self.tail.events_dropped(),
            checkpoint_error: self.checkpoint_error.lock().clone(),
        };
        serde_json::to_string_pretty(&body).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::ServeConfig;

    #[test]
    fn status_reflects_driver_and_tail_state() {
        let driver = CampaignDriver::new(ServeConfig::tiny(3));
        let state = ServeState::new(Snapshot::from_driver(&driver, None), 8);
        let status = state.status_json();
        assert!(status.contains("\"done\": false"), "{status}");
        assert!(status.contains("\"waves_total\": 2"), "{status}");
        assert!(status.contains("\"tail_events_dropped\": 0"), "{status}");
        assert_eq!(state.snapshot().robustness_json, "null");
        state.mark_done();
        assert!(state.status_json().contains("\"done\": true"));
    }

    #[test]
    fn publish_swaps_the_served_snapshot() {
        let driver = CampaignDriver::new(ServeConfig::tiny(3));
        let state = ServeState::new(Snapshot::from_driver(&driver, None), 8);
        let before = state.snapshot();
        state.publish(Snapshot::from_driver(
            &driver,
            Some("{\"cell\":1}".to_string()),
        ));
        let after = state.snapshot();
        assert!(!Arc::ptr_eq(&before, &after));
        assert_eq!(after.robustness_json, "{\"cell\":1}");
    }
}
