//! A hand-rolled HTTP/1.1 server on `std::net::TcpListener`.
//!
//! Scope: exactly what the daemon's query surface needs. `GET` only,
//! `Connection: close` on every response, bodies framed by
//! `Content-Length` — except `/api/journal/tail`, which is a Server-Sent
//! Events stream framed by connection close.
//!
//! Threading: one accept thread feeds a `Mutex<VecDeque<TcpStream>>` +
//! `Condvar` work queue drained by a **fixed** pool of worker threads.
//! JSON endpoints are answered by a worker in microseconds (pre-rendered
//! snapshot bytes; see [`crate::state`]). An SSE request would occupy its
//! worker for the rest of the campaign, so the worker instead hands the
//! connection to a dedicated per-subscriber thread and returns to the
//! pool — the fixed pool can never be starved by tail readers.
//!
//! SSE wire format: `data: <journal-record JSON>\n\n` per event, a
//! `: keep-alive\n\n` comment on idle, and a final `event: end\ndata:
//! done\n\n` when the campaign closes the hub and the subscriber's ring
//! is drained.

use crate::state::ServeState;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Accept-to-worker hand-off queue.
struct WorkQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
}

impl WorkQueue {
    fn push(&self, stream: TcpStream) {
        self.queue
            .lock()
            .expect("work queue poisoned")
            .push_back(stream);
        self.ready.notify_one();
    }

    /// Block until a connection arrives or shutdown is signalled.
    fn pop(&self, shutdown: &AtomicBool) -> Option<TcpStream> {
        let mut queue = self.queue.lock().expect("work queue poisoned");
        loop {
            if let Some(stream) = queue.pop_front() {
                return Some(stream);
            }
            if shutdown.load(Ordering::Acquire) {
                return None;
            }
            queue = self
                .ready
                .wait_timeout(queue, Duration::from_millis(200))
                .expect("work queue poisoned")
                .0;
        }
    }
}

/// The running server: accept thread + fixed worker pool.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `state` on `workers` pool threads.
    pub fn bind(addr: &str, state: Arc<ServeState>, workers: usize) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(WorkQueue {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        });

        let accept_thread = {
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        queue.push(stream);
                    }
                }
            })
        };

        let workers = (0..workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let shutdown = Arc::clone(&shutdown);
                let state = Arc::clone(&state);
                std::thread::spawn(move || {
                    while let Some(stream) = queue.pop(&shutdown) {
                        handle_connection(stream, &state);
                    }
                })
            })
            .collect();

        Ok(Self {
            addr: local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the pool, join all threads. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a throwaway connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Parse the request line, route, respond. Any parse failure gets a 400;
/// I/O failures mean the client went away and are ignored.
fn handle_connection(stream: TcpStream, state: &Arc<ServeState>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain the header block; the daemon's API has no use for headers.
    let mut header = String::new();
    while reader.read_line(&mut header).is_ok() {
        if header == "\r\n" || header == "\n" || header.is_empty() {
            break;
        }
        header.clear();
    }

    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => {
            respond(
                stream,
                400,
                "application/json",
                "{\"error\":\"bad request\"}",
            );
            return;
        }
    };
    if method != "GET" {
        respond(
            stream,
            405,
            "application/json",
            "{\"error\":\"method not allowed\"}",
        );
        return;
    }
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/api/status" => respond(stream, 200, "application/json", &state.status_json()),
        "/api/aggregates" => respond(
            stream,
            200,
            "application/json",
            &state.snapshot().aggregates_json,
        ),
        "/api/metrics" => respond(
            stream,
            200,
            "application/json",
            &state.snapshot().metrics_json,
        ),
        "/api/robustness" => respond(
            stream,
            200,
            "application/json",
            &state.snapshot().robustness_json,
        ),
        "/api/journal/tail" => serve_tail(stream, state),
        _ => respond(stream, 404, "application/json", "{\"error\":\"not found\"}"),
    }
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    }
}

fn respond(mut stream: TcpStream, code: u16, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {code} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status_text(code),
        body.len()
    );
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|_| stream.write_all(body.as_bytes()))
        .and_then(|_| stream.flush());
}

/// Upgrade the connection to an SSE stream on a dedicated thread, so the
/// fixed worker pool is never occupied by a long-lived subscriber.
fn serve_tail(mut stream: TcpStream, state: &Arc<ServeState>) {
    let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n";
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    let subscriber = state.tail.subscribe();
    std::thread::spawn(move || loop {
        match subscriber.next_line(Duration::from_millis(250)) {
            Some(line) => {
                if stream
                    .write_all(format!("data: {line}\n\n").as_bytes())
                    .and_then(|_| stream.flush())
                    .is_err()
                {
                    break;
                }
            }
            None if subscriber.is_drained() => {
                let _ = stream.write_all(b"event: end\ndata: done\n\n");
                let _ = stream.flush();
                break;
            }
            None => {
                // Idle: a keep-alive comment doubles as disconnect
                // detection, so dead subscribers get pruned.
                if stream
                    .write_all(b": keep-alive\n\n")
                    .and_then(|_| stream.flush())
                    .is_err()
                {
                    break;
                }
            }
        }
    });
}
