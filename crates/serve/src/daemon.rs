//! Wiring: campaign thread + snapshot state + HTTP server = the daemon.
//!
//! [`serve`] starts the HTTP surface immediately (serving the driver's
//! current cumulative state — which is wave 0's empty state for a fresh
//! campaign, or the restored fold for a resumed one) and runs the
//! remaining waves on a background thread. After each wave it publishes a
//! fresh snapshot, streams the wave's journal records to the tail hub,
//! and — when configured — writes a checkpoint. When the last wave
//! completes the campaign thread marks the state done and closes the tail
//! hub; the HTTP server keeps answering reads until the handle is shut
//! down, so late readers still see the final state.

use crate::driver::CampaignDriver;
use crate::http::HttpServer;
use crate::state::{ServeState, Snapshot};
use crate::ServeError;
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread::JoinHandle;
use traffic_shadowing::robustness::cell_metrics;

/// A running daemon. Dropping the handle shuts the HTTP server down but
/// does **not** interrupt the campaign thread — call
/// [`ServeHandle::join_campaign`] or [`ServeHandle::shutdown`] for an
/// orderly finish.
pub struct ServeHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    server: HttpServer,
    campaign: Option<JoinHandle<CampaignDriver>>,
}

/// Start serving `driver` on `bind` (e.g. `"127.0.0.1:0"` for a loopback
/// ephemeral port).
pub fn serve(driver: CampaignDriver, bind: &str) -> Result<ServeHandle, ServeError> {
    let config = driver.config().clone();
    let state = Arc::new(ServeState::new(
        Snapshot::from_driver(&driver, None),
        config.tail_capacity,
    ));
    let server = HttpServer::bind(bind, Arc::clone(&state), config.http_workers).map_err(|e| {
        ServeError::Bind {
            addr: bind.to_string(),
            source: e,
        }
    })?;
    let addr = server.local_addr();

    let campaign = {
        let state = Arc::clone(&state);
        std::thread::spawn(move || {
            let mut driver = driver;
            while let Some(report) = driver.run_next_wave() {
                let cell = cell_metrics(&format!("wave-{}", report.wave), &report.outcome);
                let robustness_json = serde_json::to_string_pretty(&cell).ok();
                state.publish(Snapshot::from_driver(&driver, robustness_json));
                state
                    .tail
                    .publish_records(&driver.journal()[report.journal_from..]);
                if let Some(path) = driver.config().checkpoint_path.clone() {
                    if let Err(e) = driver.save_checkpoint(&path) {
                        state.record_checkpoint_error(e.to_string());
                    }
                }
            }
            state.mark_done();
            state.tail.close();
            driver
        })
    };

    Ok(ServeHandle {
        addr,
        state,
        server,
        campaign: Some(campaign),
    })
}

impl ServeHandle {
    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Block until every wave has run; the HTTP server keeps serving the
    /// final state afterwards. Returns the finished driver (`None` on a
    /// second call, or if the campaign thread panicked).
    pub fn join_campaign(&mut self) -> Option<CampaignDriver> {
        self.campaign.take().and_then(|handle| handle.join().ok())
    }

    /// Orderly stop: finish the campaign, then stop the HTTP server.
    pub fn shutdown(mut self) -> Option<CampaignDriver> {
        let driver = self.join_campaign();
        self.server.shutdown();
        driver
    }
}
