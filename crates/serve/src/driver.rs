//! The wave-based campaign driver.
//!
//! A daemon run is `waves` bounded sub-campaigns ("waves") laid end to end
//! on a simulated-time axis. Each wave is a complete
//! [`Study::run_sharded`] over a derived per-wave seed: a fresh world, a
//! fresh Phase I/II, its own streamed classification. The driver then
//! folds the wave into cumulative state using only commutative operations
//! — [`CorrelationAggregates::absorb`], [`MetricsSnapshot::merge`], and a
//! journal append with every record's timestamp offset by the cumulative
//! sim-time cursor.
//!
//! Why waves instead of pausing one giant campaign mid-flight: Phase I
//! plans all rounds through a single shared rate-limit scheduler, so a
//! round boundary is *not* a state-free cut point — serializing an
//! interrupted engine would mean serializing the time wheel, every
//! in-flight packet, TCP state, and classifier interiors. A wave boundary,
//! by contrast, is a point where *no* simulation state exists; the entire
//! resumable state is the fold results plus the RNG stream positions, and
//! interrupt/resume is byte-identical by construction.
//!
//! **Per-wave seeding.** The driver keeps one SplitMix64 stream per shard
//! slot. Every wave advances *all* streams by exactly one draw; the wave
//! seed is stream 0's output (so the emitted traffic is invariant in the
//! shard count, like everything else in this workspace), and the wave's
//! fault seed is derived from it by a fixed xor. The streams double as a
//! resume-integrity check: a resumed driver re-derives the expected stream
//! positions from `(seed, waves_done)` and rejects a checkpoint whose
//! recorded positions disagree.

use crate::checkpoint::{CampaignCheckpoint, CheckpointHeader, CHECKPOINT_VERSION};
use crate::ServeError;
use shadow_core::sink::CorrelationAggregates;
use shadow_telemetry::{JournalRecord, MetricsSnapshot};
use std::path::{Path, PathBuf};
use traffic_shadowing::shadow_core::executor::TelemetryOptions;
use traffic_shadowing::study::{Study, StudyConfig, StudyOutcome};

/// `z ^= golden; mix(z)` — the SplitMix64 step (Steele et al.), the same
/// generator family the chaos crate uses for value-derived decisions.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over the debug rendering of the campaign-shaping configuration.
/// Good enough to catch "`--resume` pointed at a checkpoint from a
/// different campaign" with a clear error, which is all it is for.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// How the daemon runs its campaign.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The base study configuration every wave derives from (only the
    /// world seed and fault seed vary per wave).
    pub study: StudyConfig,
    /// Total waves in the campaign.
    pub waves: usize,
    /// Worker threads per wave (`Study::run_sharded`'s K).
    pub shards: usize,
    /// Write a checkpoint here after every wave (`None`: never persist).
    pub checkpoint_path: Option<PathBuf>,
    /// Per-subscriber journal-tail ring capacity (bounded backpressure).
    pub tail_capacity: usize,
    /// HTTP worker-pool size.
    pub http_workers: usize,
}

impl ServeConfig {
    /// The test/quickstart shape: tiny world, telemetry + journal on (so
    /// checkpoints carry all three artifacts), two waves, one shard.
    pub fn tiny(seed: u64) -> Self {
        Self {
            study: StudyConfig {
                telemetry: TelemetryOptions::enabled(true),
                ..StudyConfig::tiny(seed)
            },
            waves: 2,
            shards: 1,
            checkpoint_path: None,
            tail_capacity: 4096,
            http_workers: 4,
        }
    }

    /// Hash of everything that shapes campaign *output* (world, phase,
    /// fault configuration, wave count) — the checkpoint header's identity
    /// field. Shard count is deliberately excluded: output is K-invariant,
    /// and K gets its own dedicated mismatch check.
    pub fn world_hash(&self) -> u64 {
        let rendering = format!(
            "{:?}|{:?}|{:?}|{:?}|waves={}",
            self.study.world, self.study.phase1, self.study.phase2, self.study.faults, self.waves
        );
        fnv1a(rendering.as_bytes())
    }

    /// The study configuration wave `wave_seed` runs: the base config with
    /// the world re-seeded and, when faults are active, the fault profile
    /// re-keyed (so impairment patterns vary across waves too, while the
    /// profile's rates and windows stay fixed).
    pub fn wave_study_config(&self, wave_seed: u64) -> StudyConfig {
        let mut config = self.study.clone();
        config.world.seed = wave_seed;
        if let Some(faults) = &mut config.faults {
            faults.fault_seed = wave_seed ^ 0x9e37_79b9_7f4a_7c15;
        }
        config
    }

    /// The wave seeds this configuration will draw, in order — what a
    /// straight-through run and any interrupt/resume partition of it both
    /// execute.
    pub fn wave_seeds(&self) -> Vec<u64> {
        let mut streams = initial_streams(self.study.world.seed, self.shards);
        (0..self.waves)
            .map(|_| advance_streams(&mut streams))
            .collect()
    }
}

/// One independent SplitMix64 state per shard slot, all derived from the
/// base seed.
fn initial_streams(seed: u64, shards: usize) -> Vec<u64> {
    let mut chain = seed ^ 0x5851_f42d_4c95_7f2d;
    (0..shards.max(1)).map(|_| splitmix64(&mut chain)).collect()
}

/// Advance every stream one draw; the wave seed is stream 0's output.
fn advance_streams(streams: &mut [u64]) -> u64 {
    let mut wave_seed = 0;
    for (i, stream) in streams.iter_mut().enumerate() {
        let draw = splitmix64(stream);
        if i == 0 {
            wave_seed = draw;
        }
    }
    wave_seed
}

/// What [`CampaignDriver::run_next_wave`] hands back: which wave ran, its
/// seed, where its journal records start in the cumulative journal, and
/// the full study outcome (for per-wave reporting, e.g. the robustness
/// cell served at `/api/robustness`).
pub struct WaveReport {
    /// 0-based index of the wave that just completed.
    pub wave: usize,
    pub wave_seed: u64,
    /// Start of this wave's records in [`CampaignDriver::journal`].
    pub journal_from: usize,
    pub outcome: StudyOutcome,
}

/// The resumable campaign: cumulative folds plus RNG stream positions.
pub struct CampaignDriver {
    config: ServeConfig,
    waves_done: usize,
    sim_cursor_ms: u64,
    rng_streams: Vec<u64>,
    aggregates: CorrelationAggregates,
    metrics: MetricsSnapshot,
    journal: Vec<JournalRecord>,
}

impl CampaignDriver {
    /// A fresh campaign at wave 0.
    pub fn new(config: ServeConfig) -> Self {
        let rng_streams = initial_streams(config.study.world.seed, config.shards);
        Self {
            config,
            waves_done: 0,
            sim_cursor_ms: 0,
            rng_streams,
            aggregates: CorrelationAggregates::default(),
            metrics: MetricsSnapshot::default(),
            journal: Vec::new(),
        }
    }

    /// Rebuild a driver from a checkpoint, validating that the checkpoint
    /// belongs to `config` (world hash), was taken at the same shard
    /// count, and is internally consistent (RNG stream positions re-derive
    /// from `(seed, waves_done)`).
    pub fn resume(config: ServeConfig, checkpoint: CampaignCheckpoint) -> Result<Self, ServeError> {
        if checkpoint.header.version != CHECKPOINT_VERSION {
            return Err(ServeError::Version {
                found: checkpoint.header.version,
                supported: CHECKPOINT_VERSION,
            });
        }
        let expected_hash = config.world_hash();
        if checkpoint.header.world_hash != expected_hash {
            return Err(ServeError::WorldMismatch {
                expected: expected_hash,
                found: checkpoint.header.world_hash,
            });
        }
        if checkpoint.header.shards != config.shards {
            return Err(ServeError::ShardMismatch {
                expected: config.shards,
                found: checkpoint.header.shards,
            });
        }
        if checkpoint.waves_done > config.waves {
            return Err(ServeError::Corrupt(format!(
                "{} waves done exceeds the campaign's {}",
                checkpoint.waves_done, config.waves
            )));
        }
        let mut rng_streams = initial_streams(config.study.world.seed, config.shards);
        for _ in 0..checkpoint.waves_done {
            advance_streams(&mut rng_streams);
        }
        if rng_streams != checkpoint.rng_streams {
            return Err(ServeError::Corrupt(
                "RNG stream positions do not re-derive from (seed, waves_done)".to_string(),
            ));
        }
        let aggregates =
            CorrelationAggregates::from_portable(&checkpoint.aggregates).ok_or_else(|| {
                ServeError::Corrupt(
                    "aggregates histogram layout does not match this build".to_string(),
                )
            })?;
        Ok(Self {
            config,
            waves_done: checkpoint.waves_done,
            sim_cursor_ms: checkpoint.sim_cursor_ms,
            rng_streams,
            aggregates,
            metrics: checkpoint.metrics,
            journal: checkpoint.journal,
        })
    }

    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    pub fn waves_done(&self) -> usize {
        self.waves_done
    }

    pub fn waves_total(&self) -> usize {
        self.config.waves
    }

    pub fn is_done(&self) -> bool {
        self.waves_done >= self.config.waves
    }

    /// Simulated milliseconds consumed by completed waves.
    pub fn sim_cursor_ms(&self) -> u64 {
        self.sim_cursor_ms
    }

    /// The cumulative streamed aggregates across all completed waves.
    pub fn aggregates(&self) -> &CorrelationAggregates {
        &self.aggregates
    }

    /// Cumulative merged metrics (wall-clock timings zeroed — see
    /// [`Self::run_next_wave`]).
    pub fn metrics(&self) -> &MetricsSnapshot {
        &self.metrics
    }

    /// The cumulative journal; timestamps are campaign-axis (each wave's
    /// records offset by the cursor at its start), so the vector is sorted.
    pub fn journal(&self) -> &[JournalRecord] {
        &self.journal
    }

    /// Run one wave and fold it in. `None` once the campaign is complete.
    ///
    /// Fold rules, each chosen so interrupt/resume cannot be observed:
    /// * aggregates absorb commutatively;
    /// * wave metrics merge with `phase_wall_ns` cleared first (wall-clock
    ///   is the one nondeterministic metric, and a checkpoint must not
    ///   remember how fast the host happened to be) and the shard count
    ///   kept at its per-wave value instead of summed across waves;
    /// * journal records shift onto the campaign time axis by the cursor,
    ///   which then advances past both the wave's send window (+ grace)
    ///   and its last journal record, so appended records stay sorted.
    pub fn run_next_wave(&mut self) -> Option<WaveReport> {
        if self.is_done() {
            return None;
        }
        let wave = self.waves_done;
        let wave_seed = advance_streams(&mut self.rng_streams);
        let wave_config = self.config.wave_study_config(wave_seed);
        let outcome = Study::run_sharded(wave_config, self.config.shards);

        self.aggregates.absorb(outcome.phase1.aggregates.clone());
        if let Some(wave_metrics) = &outcome.metrics {
            let mut wave_metrics = wave_metrics.clone();
            wave_metrics.run.phase_wall_ns.clear();
            let shards = self.metrics.run.shards.max(wave_metrics.run.shards);
            self.metrics.merge(&wave_metrics);
            self.metrics.run.shards = shards;
        }
        let journal_from = self.journal.len();
        let mut wave_journal_max_ms = 0;
        if let Some(records) = &outcome.journal {
            self.journal.reserve(records.len());
            for record in records {
                wave_journal_max_ms = wave_journal_max_ms.max(record.at_ms);
                let mut shifted = record.clone();
                shifted.at_ms += self.sim_cursor_ms;
                self.journal.push(shifted);
            }
        }
        let send_window_ms =
            outcome.phase1.last_send.millis() + self.config.study.phase1.grace.millis();
        self.sim_cursor_ms += send_window_ms.max(wave_journal_max_ms + 1);
        self.waves_done += 1;
        Some(WaveReport {
            wave,
            wave_seed,
            journal_from,
            outcome,
        })
    }

    /// Run every remaining wave; returns how many ran.
    pub fn run_to_completion(&mut self) -> usize {
        let mut ran = 0;
        while self.run_next_wave().is_some() {
            ran += 1;
        }
        ran
    }

    /// The durable form of the current cumulative state.
    pub fn checkpoint(&self) -> CampaignCheckpoint {
        CampaignCheckpoint {
            header: CheckpointHeader {
                version: CHECKPOINT_VERSION,
                world_hash: self.config.world_hash(),
                shards: self.config.shards,
                waves_total: self.config.waves,
            },
            waves_done: self.waves_done,
            sim_cursor_ms: self.sim_cursor_ms,
            rng_streams: self.rng_streams.clone(),
            aggregates: self.aggregates.to_portable(),
            metrics: self.metrics.clone(),
            journal: self.journal.clone(),
        }
    }

    /// Checkpoint to `path` (atomic: tmp file + rename).
    pub fn save_checkpoint(&self, path: &Path) -> Result<(), ServeError> {
        self.checkpoint().save(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wave_seeds_are_shard_independent() {
        let one = ServeConfig {
            shards: 1,
            ..ServeConfig::tiny(7)
        };
        let four = ServeConfig {
            shards: 4,
            ..ServeConfig::tiny(7)
        };
        assert_eq!(one.wave_seeds(), four.wave_seeds());
    }

    #[test]
    fn wave_seeds_differ_across_waves_and_base_seeds() {
        let seeds = ServeConfig::tiny(7).wave_seeds();
        assert_eq!(seeds.len(), 2);
        assert_ne!(seeds[0], seeds[1]);
        assert_ne!(seeds, ServeConfig::tiny(8).wave_seeds());
    }

    #[test]
    fn world_hash_tracks_configuration() {
        let base = ServeConfig::tiny(7);
        assert_eq!(base.world_hash(), ServeConfig::tiny(7).world_hash());
        assert_ne!(base.world_hash(), ServeConfig::tiny(8).world_hash());
        let more_waves = ServeConfig {
            waves: 3,
            ..ServeConfig::tiny(7)
        };
        assert_ne!(base.world_hash(), more_waves.world_hash());
        // Shard count is NOT part of the identity (output is K-invariant).
        let sharded = ServeConfig {
            shards: 4,
            ..ServeConfig::tiny(7)
        };
        assert_eq!(base.world_hash(), sharded.world_hash());
    }
}
