//! # shadow-honeypot
//!
//! The capture side of the methodology (Figure 1): every experiment domain
//! resolves — via wildcard records served by [`authority::ExperimentAuthorityHost`]
//! — to honey web servers ([`web::WebHost`] in honeypot mode) in three
//! regions (US, DE, SG in the paper). Whatever arrives bearing an
//! experiment domain is logged as an [`capture::Arrival`]; deciding which
//! arrivals are *unsolicited* is the correlation engine's job
//! (`shadow-core`), because it requires the decoy registry.
//!
//! [`web::WebHost`] doubles, without logging, as the generic Tranco-site
//! destination server HTTP/TLS decoys are sent to.

pub mod authority;
pub mod capture;
pub mod web;

pub use authority::ExperimentAuthorityHost;
pub use capture::{Arrival, ArrivalProtocol, CaptureLog};
pub use web::{SiteShadow, WebHost};
