//! Capture records: everything that arrives at a honeypot.

use serde::{Content, DeError, Deserialize, Serialize};
use shadow_netsim::engine::Ctx;
use shadow_netsim::time::SimTime;
use shadow_packet::dns::DnsName;
use shadow_telemetry::EventKind;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// A honeypot's name ("US", "DE", "SG", "AUTH").
///
/// `Arc`-backed: every arrival carries its capturing honeypot's label, so
/// the per-capture copy must be a reference-count bump, not a fresh heap
/// string. Serializes as a plain string — capture-log and journal
/// encodings are unchanged from the `String` representation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(Arc<str>);

impl Label {
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Label(Arc::from(s))
    }
}

impl From<String> for Label {
    fn from(s: String) -> Self {
        Label(Arc::from(s))
    }
}

impl PartialEq<&str> for Label {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl Serialize for Label {
    fn serialize_content(&self) -> Content {
        Content::Str(self.0.to_string())
    }
}

impl Deserialize for Label {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        String::deserialize_content(content).map(Label::from)
    }
}

/// The protocol an arrival came in over — the `Request` half of the paper's
/// `Decoy-Request` protocol-combination labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ArrivalProtocol {
    Dns,
    Http,
    /// TLS arrivals on 443 ("HTTPS" in the paper's labels).
    Https,
}

impl ArrivalProtocol {
    pub fn as_str(self) -> &'static str {
        match self {
            ArrivalProtocol::Dns => "DNS",
            ArrivalProtocol::Http => "HTTP",
            ArrivalProtocol::Https => "HTTPS",
        }
    }
}

/// One request that reached a honeypot bearing an experiment domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arrival {
    pub at: SimTime,
    pub src: Ipv4Addr,
    pub protocol: ArrivalProtocol,
    /// The experiment domain the request bears (QNAME / Host / SNI).
    pub domain: DnsName,
    /// For HTTP arrivals: the requested path (payload analysis, §5).
    pub http_path: Option<String>,
    /// Which honeypot captured it ("US", "DE", "SG").
    pub honeypot: Label,
}

impl Arrival {
    /// Total-order sort key. Merging must not depend on which log an
    /// arrival came from (or which shard produced it), so the key covers
    /// every field — two *distinct* arrivals never compare equal.
    pub fn sort_key(&self) -> impl Ord + '_ {
        (
            self.at,
            &self.domain,
            self.src,
            self.protocol,
            &self.http_path,
            &self.honeypot,
        )
    }
}

/// An append-only capture log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CaptureLog {
    entries: Vec<Arrival>,
}

impl CaptureLog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, arrival: Arrival) {
        self.entries.push(arrival);
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Arrival> {
        self.entries.iter()
    }

    /// Merge several logs into one stream in the total [`Arrival::sort_key`]
    /// order (the cross-honeypot view the analysis runs on). The order is
    /// independent of how arrivals were distributed across input logs.
    pub fn merged(logs: impl IntoIterator<Item = CaptureLog>) -> Vec<Arrival> {
        let mut all: Vec<Arrival> = logs.into_iter().flat_map(|l| l.entries).collect();
        all.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        all
    }
}

/// The capture-time verdict a streaming sink returns for one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkDecision {
    /// Should the host also buffer the arrival in its local
    /// [`CaptureLog`]? `false` is the streaming default — the sink's
    /// aggregates are the only record kept, and peak memory stays flat.
    pub retain: bool,
    /// Did the arrival's domain resolve to a registered decoy?
    pub classified: bool,
    /// Was it classified unsolicited?
    pub unsolicited: bool,
    /// The unsolicited rule name, when `unsolicited`. Solicited-class
    /// attribution is deliberately unnamed: which of two same-millisecond
    /// duplicates counts as the solicited resolution depends on engine
    /// event order, and journals must stay shard-invariant.
    pub rule: Option<&'static str>,
}

impl SinkDecision {
    /// The verdict for an arrival no sink wants to interpret.
    pub fn unclassified(retain: bool) -> Self {
        Self {
            retain,
            classified: false,
            unsolicited: false,
            rule: None,
        }
    }
}

/// A streaming consumer of honeypot arrivals, installed by the campaign
/// layer. Hosts call [`ArrivalSink::offer`] from the capture funnel for
/// every arrival, at capture time and in capture order; the sink decides
/// whether the host should still buffer the arrival locally.
pub trait ArrivalSink: Send {
    fn offer(&mut self, arrival: &Arrival) -> SinkDecision;

    /// Downcast hook so the installing layer can take its state back out
    /// after the run (the hosts only know the trait object).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// The shared handle hosts hold: one sink per shard engine, shared by that
/// engine's authoritative server and honey web hosts. Single-threaded
/// within a shard, so the mutex is uncontended — it exists to satisfy the
/// `Send` bound the sharded executor needs when worlds cross threads.
pub type SharedArrivalSink = Arc<parking_lot::Mutex<Box<dyn ArrivalSink>>>;

/// Record `arrival` into the engine's telemetry (the per-protocol
/// `arrivals_captured` counter plus an [`EventKind::ArrivalCaptured`]
/// journal event), offer it to the streaming `sink` if one is installed,
/// and append it to `log` only when the sink's verdict says to retain it
/// (always, when no sink is installed). Every honeypot capture path
/// funnels through here, so the counters, the journal, the sink
/// aggregates, and the capture log can never disagree.
pub fn capture_with_telemetry(
    log: &mut CaptureLog,
    sink: Option<&SharedArrivalSink>,
    arrival: Arrival,
    ctx: &Ctx<'_>,
) {
    let telemetry = ctx.telemetry();
    if telemetry.is_enabled() {
        if let Some(m) = telemetry.metrics() {
            m.arrivals_captured.inc(arrival.protocol.as_str());
        }
        // The owned copy of the label is built inside the closure, so it
        // is only paid for when a journal is actually attached.
        telemetry.event(arrival.at.millis(), Some(ctx.node().0), || {
            EventKind::ArrivalCaptured {
                honeypot: arrival.honeypot.as_str().to_owned(),
                protocol: arrival.protocol.as_str().to_string(),
                domain: arrival.domain.as_str().to_string(),
                src: arrival.src,
            }
        });
    }
    let decision = match sink {
        Some(sink) => sink.lock().offer(&arrival),
        None => SinkDecision::unclassified(true),
    };
    if decision.classified && telemetry.is_enabled() {
        if let Some(m) = telemetry.metrics() {
            m.arrivals_classified.inc();
        }
        telemetry.event(arrival.at.millis(), Some(ctx.node().0), || {
            EventKind::ArrivalClassified {
                honeypot: arrival.honeypot.as_str().to_owned(),
                protocol: arrival.protocol.as_str().to_string(),
                domain: arrival.domain.as_str().to_string(),
                src: arrival.src,
                unsolicited: decision.unsolicited,
                rule: decision.rule.map(str::to_string),
            }
        });
    }
    if decision.retain {
        log.push(arrival);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrival(at: u64, proto: ArrivalProtocol, hp: &str) -> Arrival {
        Arrival {
            at: SimTime(at),
            src: Ipv4Addr::new(192, 0, 2, 1),
            protocol: proto,
            domain: DnsName::parse("x.www.experiment.example").unwrap(),
            http_path: None,
            honeypot: hp.into(),
        }
    }

    #[test]
    fn log_accumulates() {
        let mut log = CaptureLog::new();
        assert!(log.is_empty());
        log.push(arrival(5, ArrivalProtocol::Dns, "US"));
        log.push(arrival(1, ArrivalProtocol::Http, "US"));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn merged_sorts_by_time() {
        let mut us = CaptureLog::new();
        us.push(arrival(50, ArrivalProtocol::Dns, "US"));
        let mut de = CaptureLog::new();
        de.push(arrival(10, ArrivalProtocol::Https, "DE"));
        de.push(arrival(90, ArrivalProtocol::Http, "DE"));
        let merged = CaptureLog::merged([us, de]);
        let times: Vec<u64> = merged.iter().map(|a| a.at.millis()).collect();
        assert_eq!(times, vec![10, 50, 90]);
    }

    #[test]
    fn protocol_labels() {
        assert_eq!(ArrivalProtocol::Dns.as_str(), "DNS");
        assert_eq!(ArrivalProtocol::Https.as_str(), "HTTPS");
    }
}
