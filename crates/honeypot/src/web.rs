//! Web endpoints: the honey websites (HTTP + TLS capture with logging) and,
//! with logging disabled, the generic destination servers standing in for
//! the Tranco-top-1K sites HTTP/TLS decoys are sent to.

use crate::capture::{
    capture_with_telemetry, Arrival, ArrivalProtocol, CaptureLog, Label, SharedArrivalSink,
};
use shadow_netsim::engine::{Ctx, Host};
use shadow_netsim::tcp::{ConnKey, TcpEvent, TcpStack};
use shadow_netsim::time::SimDuration;
use shadow_netsim::topology::NodeId;
use shadow_netsim::transport::Transport;
use shadow_observer::policy::{ReplayPolicy, WeightedChoice};
use shadow_observer::retention::{ObservedProtocol, RetentionStore};
use shadow_observer::scheduler::plan_probes;
use shadow_packet::dns::DnsName;
use shadow_packet::http::{HttpRequest, HttpResponse};
use shadow_packet::ipv4::{IpProtocol, Ipv4Packet, DEFAULT_TTL};
use shadow_packet::tcp::TcpSegment;
use shadow_packet::tls::{ClientHello, TlsRecord};
use std::any::Any;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Destination-side shadowing: the server's own network silently records
/// clear-text fields (SNI above all) and probes them later. This models
/// the paper's finding that 65% of TLS observers sit *at the destination*
/// (Table 2) — and the sensor parses raw segments, so even Phase II's
/// handshake-less probes are observed once they reach the host.
pub struct SiteShadow {
    pub label: String,
    pub policy: ReplayPolicy,
    pub origins: Vec<WeightedChoice<NodeId>>,
    pub zone_filter: Option<DnsName>,
    /// Watch HTTP Host headers (off for the common SNI-only sensor: the
    /// paper locates 97.7% of HTTP observers on the wire, not at the
    /// destination, while 65% of TLS observers are destination-side).
    pub watch_http: bool,
    pub watch_tls: bool,
    store: RetentionStore,
    seed: u64,
    pub probes_scheduled: u64,
}

impl SiteShadow {
    pub fn new(
        label: &str,
        policy: ReplayPolicy,
        origins: Vec<WeightedChoice<NodeId>>,
        zone_filter: Option<DnsName>,
        retention_capacity: usize,
        retention_ttl: SimDuration,
        seed: u64,
    ) -> Self {
        policy.validate().expect("site shadow policy must validate");
        assert!(!origins.is_empty(), "site shadow needs probe origins");
        Self {
            label: label.to_string(),
            policy,
            origins,
            zone_filter,
            watch_http: true,
            watch_tls: true,
            store: RetentionStore::new(retention_capacity, retention_ttl),
            seed: seed ^ 0x0517_e5d0,
            probes_scheduled: 0,
        }
    }

    /// The common destination-side sensor shape: SNI only.
    #[allow(clippy::too_many_arguments)]
    pub fn new_tls_only(
        label: &str,
        policy: ReplayPolicy,
        origins: Vec<WeightedChoice<NodeId>>,
        zone_filter: Option<DnsName>,
        retention_capacity: usize,
        retention_ttl: SimDuration,
        seed: u64,
    ) -> Self {
        Self {
            watch_http: false,
            ..Self::new(
                label,
                policy,
                origins,
                zone_filter,
                retention_capacity,
                retention_ttl,
                seed,
            )
        }
    }

    fn observe(&mut self, domain: &DnsName, via: ObservedProtocol, ctx: &mut Ctx<'_>) {
        if let Some(zone) = &self.zone_filter {
            if !domain.is_subdomain_of(zone) {
                return;
            }
        }
        let (orders, plan) = plan_probes(
            &self.policy,
            &mut self.store,
            &self.origins,
            self.seed,
            domain,
            via,
            ctx.now(),
            &self.label,
        );
        if plan.capacity_evictions > 0 {
            if let Some(m) = ctx.telemetry().metrics() {
                m.retention_capacity_evictions.add(plan.capacity_evictions);
            }
        }
        self.probes_scheduled += u64::from(plan.probes);
        record_shadow_probes(ctx, domain, u64::from(plan.probes));
        for (origin, delay, order) in orders {
            ctx.post(origin, delay, Box::new(order));
        }
    }
}

/// Count `probes` scheduled shadow probes and journal one
/// [`ShadowProbeScheduled`](shadow_telemetry::EventKind::ShadowProbeScheduled)
/// event for the triggering domain (no-op when none were scheduled).
fn record_shadow_probes(ctx: &Ctx<'_>, domain: &DnsName, probes: u64) {
    if probes == 0 {
        return;
    }
    let telemetry = ctx.telemetry();
    if let Some(m) = telemetry.metrics() {
        m.shadow_probes_scheduled.add(probes);
    }
    telemetry.event(ctx.now().millis(), Some(ctx.node().0), || {
        shadow_telemetry::EventKind::ShadowProbeScheduled {
            domain: domain.as_str().to_string(),
        }
    });
}

/// The purpose-statement homepage the paper documents on the honeypot
/// website ("we document the purpose of our experiment and contact
/// information on the homepage").
pub const HONEYPOT_HOMEPAGE: &str = "<html><head><title>Measurement experiment</title></head>\
<body><h1>Internet measurement experiment</h1>\
<p>This server is part of an academic measurement of Internet traffic \
shadowing. Requests arriving here were triggered by decoy traffic we \
generated; no user data is involved. Contact: research@experiment.example\
</p></body></html>";

/// A web endpoint on ports 80 and 443.
pub struct WebHost {
    addr: Ipv4Addr,
    tcp: TcpStack,
    /// `Some(region)` = honeypot mode with capture; `None` = plain site.
    honeypot_region: Option<Label>,
    captures: CaptureLog,
    /// Streaming correlation sink; installed by the campaign layer before
    /// Phase I traffic starts, `None` during preflight and unit tests.
    sink: Option<SharedArrivalSink>,
    /// Buffered bytes per connection until a full request parses.
    rx: HashMap<ConnKey, Vec<u8>>,
    /// Optional destination-side shadowing sensor.
    shadow: Option<SiteShadow>,
    pub http_requests_served: u64,
    pub tls_hellos_seen: u64,
}

impl WebHost {
    /// A logging honeypot in `region` ("US", "DE", "SG").
    pub fn honeypot(addr: Ipv4Addr, region: &str, seed: u32) -> Self {
        Self::build(addr, Some(region.into()), seed)
    }

    /// A plain destination website (no capture) — a Tranco-site stand-in.
    pub fn plain(addr: Ipv4Addr, seed: u32) -> Self {
        Self::build(addr, None, seed)
    }

    fn build(addr: Ipv4Addr, honeypot_region: Option<Label>, seed: u32) -> Self {
        let mut tcp = TcpStack::new(seed);
        tcp.listen(80);
        tcp.listen(443);
        Self {
            addr,
            tcp,
            honeypot_region,
            captures: CaptureLog::new(),
            sink: None,
            rx: HashMap::new(),
            shadow: None,
            http_requests_served: 0,
            tls_hellos_seen: 0,
        }
    }

    /// Attach a destination-side shadowing sensor (builder style).
    pub fn with_shadow(mut self, shadow: SiteShadow) -> Self {
        self.shadow = Some(shadow);
        self
    }

    pub fn shadow(&self) -> Option<&SiteShadow> {
        self.shadow.as_ref()
    }

    /// Raw packet-level sniffing run before TCP processing: a port-mirror
    /// sensor sees every segment, including Phase II's handshake-less
    /// probes that the TCP stack itself would RST.
    fn sniff(&mut self, seg: &TcpSegment, ctx: &mut Ctx<'_>) {
        let Some(mut shadow) = self.shadow.take() else {
            return;
        };
        if !seg.payload.is_empty() {
            match seg.dst_port {
                80 if shadow.watch_http => {
                    if let Ok(req) = HttpRequest::decode(&seg.payload) {
                        if let Some(host) = req.host() {
                            if let Ok(domain) = DnsName::parse(host) {
                                shadow.observe(&domain, ObservedProtocol::Http, ctx);
                            }
                        }
                    }
                }
                443 if shadow.watch_tls => {
                    if let Some(sni) = shadow_packet::tls::sniff_sni(&seg.payload) {
                        if let Ok(domain) = DnsName::parse(&sni) {
                            shadow.observe(&domain, ObservedProtocol::Tls, ctx);
                        }
                    }
                }
                _ => {}
            }
        }
        self.shadow = Some(shadow);
    }

    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    pub fn captures(&self) -> &CaptureLog {
        &self.captures
    }

    pub fn take_captures(&mut self) -> CaptureLog {
        std::mem::take(&mut self.captures)
    }

    /// Install (or clear) the streaming arrival sink.
    pub fn set_arrival_sink(&mut self, sink: Option<SharedArrivalSink>) {
        self.sink = sink;
    }

    fn emit(&self, peer: Ipv4Addr, segs: Vec<shadow_packet::tcp::TcpSegment>, ctx: &mut Ctx<'_>) {
        for seg in segs {
            ctx.send(Ipv4Packet::new(
                self.addr,
                peer,
                IpProtocol::Tcp,
                DEFAULT_TTL,
                0,
                seg.encode(),
            ));
        }
    }

    fn capture(&mut self, arrival: Arrival, ctx: &Ctx<'_>) {
        if self.honeypot_region.is_some() {
            capture_with_telemetry(&mut self.captures, self.sink.as_ref(), arrival, ctx);
        }
    }

    fn handle_http(&mut self, key: ConnKey, raw: &[u8], ctx: &mut Ctx<'_>) -> bool {
        let Ok(req) = HttpRequest::decode(raw) else {
            return false; // wait for more bytes
        };
        self.http_requests_served += 1;
        if let Some(region) = self.honeypot_region.clone() {
            if let Some(host) = req.host() {
                if let Ok(domain) = DnsName::parse(host) {
                    self.capture(
                        Arrival {
                            at: ctx.now(),
                            src: key.peer,
                            protocol: ArrivalProtocol::Http,
                            domain,
                            http_path: Some(req.path.clone()),
                            honeypot: region,
                        },
                        ctx,
                    );
                }
            }
        }
        let response = if req.path == "/" {
            HttpResponse::ok(HONEYPOT_HOMEPAGE.as_bytes().to_vec())
        } else {
            HttpResponse::not_found()
        };
        let mut out = Vec::new();
        self.tcp.send(key, response.encode(), &mut out);
        self.tcp.close(key, &mut out);
        self.emit(key.peer, out, ctx);
        true
    }

    fn handle_tls(&mut self, key: ConnKey, raw: &[u8], ctx: &mut Ctx<'_>) -> bool {
        let Ok(hello) = ClientHello::decode_record(raw) else {
            return false;
        };
        self.tls_hellos_seen += 1;
        if let Some(region) = self.honeypot_region.clone() {
            if let Some(sni) = hello.sni() {
                if let Ok(domain) = DnsName::parse(&sni) {
                    self.capture(
                        Arrival {
                            at: ctx.now(),
                            src: key.peer,
                            protocol: ArrivalProtocol::Https,
                            domain,
                            http_path: None,
                            honeypot: region,
                        },
                        ctx,
                    );
                }
            }
        }
        // Log-and-decline: answer with a fatal handshake_failure alert.
        let mut out = Vec::new();
        self.tcp
            .send(key, TlsRecord::fatal_alert(40).encode(), &mut out);
        self.tcp.close(key, &mut out);
        self.emit(key.peer, out, ctx);
        true
    }
}

impl Host for WebHost {
    fn on_packet(&mut self, pkt: Ipv4Packet, ctx: &mut Ctx<'_>) {
        let Ok(Transport::Tcp(seg)) = Transport::parse(&pkt) else {
            return;
        };
        self.sniff(&seg, ctx);
        let mut out = Vec::new();
        let events = self.tcp.on_segment(pkt.header.src, seg, &mut out);
        self.emit(pkt.header.src, out, ctx);
        for event in events {
            match event {
                TcpEvent::Data(key, bytes) => {
                    let buf = self.rx.entry(key).or_default();
                    buf.extend_from_slice(&bytes);
                    let raw = buf.clone();
                    let consumed = match key.local_port {
                        80 => self.handle_http(key, &raw, ctx),
                        443 => self.handle_tls(key, &raw, ctx),
                        _ => true, // unexpected port: discard
                    };
                    if consumed {
                        self.rx.remove(&key);
                    }
                }
                TcpEvent::Closed(key) | TcpEvent::Reset(key) => {
                    self.rx.remove(&key);
                }
                TcpEvent::Established(_) => {}
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_geo::{Asn, Region};
    use shadow_netsim::engine::Engine;
    use shadow_netsim::time::SimTime;
    use shadow_netsim::topology::{NodeId, TopologyBuilder};

    /// A minimal client driving one HTTP or TLS exchange.
    struct Client {
        addr: Ipv4Addr,
        tcp: TcpStack,
        payload: Vec<u8>,
        port: u16,
        server: Ipv4Addr,
        key: Option<ConnKey>,
        pub responses: Vec<Vec<u8>>,
        started: bool,
    }

    impl Client {
        fn new(addr: Ipv4Addr, server: Ipv4Addr, port: u16, payload: Vec<u8>) -> Self {
            Self {
                addr,
                tcp: TcpStack::new(99),
                payload,
                port,
                server,
                key: None,
                responses: Vec::new(),
                started: false,
            }
        }

        fn emit(&self, segs: Vec<shadow_packet::tcp::TcpSegment>, ctx: &mut Ctx<'_>) {
            for seg in segs {
                ctx.send(Ipv4Packet::new(
                    self.addr,
                    self.server,
                    IpProtocol::Tcp,
                    DEFAULT_TTL,
                    0,
                    seg.encode(),
                ));
            }
        }
    }

    impl Host for Client {
        fn on_packet(&mut self, pkt: Ipv4Packet, ctx: &mut Ctx<'_>) {
            let Ok(Transport::Tcp(seg)) = Transport::parse(&pkt) else {
                return;
            };
            let mut out = Vec::new();
            let events = self.tcp.on_segment(pkt.header.src, seg, &mut out);
            self.emit(out, ctx);
            for event in events {
                match event {
                    TcpEvent::Established(key) => {
                        let mut out = Vec::new();
                        self.tcp.send(key, self.payload.clone(), &mut out);
                        self.emit(out, ctx);
                    }
                    TcpEvent::Data(_, bytes) => self.responses.push(bytes.to_vec()),
                    _ => {}
                }
            }
        }

        fn on_message(&mut self, _msg: Box<dyn Any + Send + Sync>, ctx: &mut Ctx<'_>) {
            if !self.started {
                self.started = true;
                let mut out = Vec::new();
                self.key = Some(self.tcp.connect(self.server, self.port, &mut out));
                self.emit(out, ctx);
            }
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn world() -> (Engine, NodeId, NodeId, Ipv4Addr, Ipv4Addr) {
        let mut tb = TopologyBuilder::new(6);
        tb.add_as(Asn(1), Region::Europe);
        tb.add_router(Asn(1), Ipv4Addr::new(1, 0, 0, 1), true)
            .unwrap();
        let client_addr = Ipv4Addr::new(1, 1, 0, 1);
        let web_addr = Ipv4Addr::new(1, 1, 0, 80);
        let client = tb.add_host(Asn(1), client_addr).unwrap();
        let web = tb.add_host(Asn(1), web_addr).unwrap();
        (
            Engine::new(tb.build().unwrap()),
            client,
            web,
            client_addr,
            web_addr,
        )
    }

    #[test]
    fn honeypot_logs_http_request_with_path() {
        let (mut engine, client, web, client_addr, web_addr) = world();
        engine.add_host(web, Box::new(WebHost::honeypot(web_addr, "US", 1)));
        let req = HttpRequest::get("abc123.www.experiment.example", "/.git/config");
        engine.add_host(
            client,
            Box::new(Client::new(client_addr, web_addr, 80, req.encode())),
        );
        engine.post(SimTime::ZERO, client, Box::new(()));
        engine.run_to_completion();
        let host = engine.host_as::<WebHost>(web).unwrap();
        assert_eq!(host.captures().len(), 1);
        let arrival = host.captures().iter().next().unwrap();
        assert_eq!(arrival.protocol, ArrivalProtocol::Http);
        assert_eq!(arrival.domain.as_str(), "abc123.www.experiment.example");
        assert_eq!(arrival.http_path.as_deref(), Some("/.git/config"));
        assert_eq!(arrival.honeypot, "US");
        // Client got the 404.
        let c = engine.host_as::<Client>(client).unwrap();
        assert!(!c.responses.is_empty());
        let resp = HttpResponse::decode(&c.responses.concat()).unwrap();
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn homepage_returns_purpose_statement() {
        let (mut engine, client, web, client_addr, web_addr) = world();
        engine.add_host(web, Box::new(WebHost::honeypot(web_addr, "DE", 2)));
        let req = HttpRequest::get("x.www.experiment.example", "/");
        engine.add_host(
            client,
            Box::new(Client::new(client_addr, web_addr, 80, req.encode())),
        );
        engine.post(SimTime::ZERO, client, Box::new(()));
        engine.run_to_completion();
        let c = engine.host_as::<Client>(client).unwrap();
        let resp = HttpResponse::decode(&c.responses.concat()).unwrap();
        assert_eq!(resp.status, 200);
        assert!(String::from_utf8_lossy(&resp.body).contains("measurement"));
    }

    #[test]
    fn honeypot_logs_tls_sni_and_declines() {
        let (mut engine, client, web, client_addr, web_addr) = world();
        engine.add_host(web, Box::new(WebHost::honeypot(web_addr, "SG", 3)));
        let hello = ClientHello::with_sni("tls7.www.experiment.example", [5u8; 32]);
        engine.add_host(
            client,
            Box::new(Client::new(
                client_addr,
                web_addr,
                443,
                hello.encode_record(),
            )),
        );
        engine.post(SimTime::ZERO, client, Box::new(()));
        engine.run_to_completion();
        let host = engine.host_as::<WebHost>(web).unwrap();
        assert_eq!(host.captures().len(), 1);
        let arrival = host.captures().iter().next().unwrap();
        assert_eq!(arrival.protocol, ArrivalProtocol::Https);
        assert_eq!(arrival.domain.as_str(), "tls7.www.experiment.example");
        // The client got a fatal alert back.
        let c = engine.host_as::<Client>(client).unwrap();
        let rec = TlsRecord::decode(&c.responses.concat()).unwrap();
        assert_eq!(rec.content_type, shadow_packet::tls::CONTENT_TYPE_ALERT);
    }

    #[test]
    fn plain_site_serves_but_never_captures() {
        let (mut engine, client, web, client_addr, web_addr) = world();
        engine.add_host(web, Box::new(WebHost::plain(web_addr, 4)));
        let req = HttpRequest::get("decoy.www.experiment.example", "/");
        engine.add_host(
            client,
            Box::new(Client::new(client_addr, web_addr, 80, req.encode())),
        );
        engine.post(SimTime::ZERO, client, Box::new(()));
        engine.run_to_completion();
        let host = engine.host_as::<WebHost>(web).unwrap();
        assert_eq!(host.captures().len(), 0, "plain sites do not log");
        assert_eq!(host.http_requests_served, 1, "but they do serve");
    }
}
