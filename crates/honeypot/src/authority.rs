//! The experiment zone's authoritative server.
//!
//! Serves wildcard A records (TTL 3,600, as in the paper) resolving every
//! `<identifier>.www.<experiment-domain>` to one of the honey web servers,
//! and logs every query — the DNS capture channel. The homepage note, rate
//! limits and other ethics machinery of the real deployment have no
//! simulated equivalent and live in the honey website instead.

use crate::capture::{
    capture_with_telemetry, Arrival, ArrivalProtocol, CaptureLog, Label, SharedArrivalSink,
};
use shadow_netsim::engine::{Ctx, Host};
use shadow_netsim::transport::Transport;
use shadow_packet::dns::{DnsMessage, DnsName, DnsRecord, Rcode};
use shadow_packet::ipv4::{IpProtocol, Ipv4Packet, DEFAULT_TTL};
use shadow_packet::udp::UdpDatagram;
use std::any::Any;
use std::net::Ipv4Addr;

/// TTL of the wildcard records — the paper configures 3,600 s and uses the
/// absence of hourly re-query spikes to rule out cache-refresh explanations.
pub const WILDCARD_TTL_SECS: u32 = 3_600;

/// The authoritative host for one experiment zone.
pub struct ExperimentAuthorityHost {
    addr: Ipv4Addr,
    zone: DnsName,
    /// Honey web server addresses the wildcard resolves to (one per
    /// region); selection is a stable hash of the queried name, so repeat
    /// queries hit the same honeypot.
    web_addrs: Vec<Ipv4Addr>,
    /// Label stamped on every DNS capture ("AUTH"); built once so each
    /// query's arrival record shares it.
    label: Label,
    pub captures: CaptureLog,
    /// Streaming correlation sink; installed by the campaign layer before
    /// Phase I traffic starts, `None` during preflight and unit tests.
    sink: Option<SharedArrivalSink>,
    pub queries_answered: u64,
    pub out_of_zone_queries: u64,
}

impl ExperimentAuthorityHost {
    pub fn new(addr: Ipv4Addr, zone: DnsName, web_addrs: Vec<Ipv4Addr>) -> Self {
        assert!(!web_addrs.is_empty(), "need at least one honey web server");
        Self {
            addr,
            zone,
            web_addrs,
            label: "AUTH".into(),
            captures: CaptureLog::new(),
            sink: None,
            queries_answered: 0,
            out_of_zone_queries: 0,
        }
    }

    /// Install (or clear) the streaming arrival sink.
    pub fn set_arrival_sink(&mut self, sink: Option<SharedArrivalSink>) {
        self.sink = sink;
    }

    pub fn zone(&self) -> &DnsName {
        &self.zone
    }

    fn wildcard_target(&self, qname: &DnsName) -> Ipv4Addr {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in qname.as_str().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.web_addrs[(h % self.web_addrs.len() as u64) as usize]
    }
}

impl Host for ExperimentAuthorityHost {
    fn on_packet(&mut self, pkt: Ipv4Packet, ctx: &mut Ctx<'_>) {
        let Ok(Transport::Udp(dg)) = Transport::parse(&pkt) else {
            return;
        };
        if dg.dst_port != 53 {
            return;
        }
        let Ok(query) = DnsMessage::decode(&dg.payload) else {
            return;
        };
        if query.flags.response {
            return;
        }
        let Some(qname) = query.qname().cloned() else {
            return;
        };
        let response = if qname.is_subdomain_of(&self.zone) {
            self.queries_answered += 1;
            capture_with_telemetry(
                &mut self.captures,
                self.sink.as_ref(),
                Arrival {
                    at: ctx.now(),
                    src: pkt.header.src,
                    protocol: ArrivalProtocol::Dns,
                    domain: qname.clone(),
                    http_path: None,
                    honeypot: self.label.clone(),
                },
                ctx,
            );
            let target = self.wildcard_target(&qname);
            DnsMessage::response(
                &query,
                true,
                Rcode::NoError,
                vec![DnsRecord::a(qname.clone(), WILDCARD_TTL_SECS, target)],
            )
        } else {
            self.out_of_zone_queries += 1;
            DnsMessage::response(&query, true, Rcode::Refused, Vec::new())
        };
        ctx.send(Ipv4Packet::new(
            self.addr,
            pkt.header.src,
            IpProtocol::Udp,
            DEFAULT_TTL,
            0,
            UdpDatagram::new(53, dg.src_port, response.encode()).encode(),
        ));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_geo::{Asn, Region};
    use shadow_netsim::engine::Engine;
    use shadow_netsim::time::SimTime;
    use shadow_netsim::topology::TopologyBuilder;
    use shadow_packet::dns::RecordData;

    struct Sink {
        packets: Vec<Ipv4Packet>,
    }

    impl Host for Sink {
        fn on_packet(&mut self, pkt: Ipv4Packet, _ctx: &mut Ctx<'_>) {
            self.packets.push(pkt);
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn world() -> (
        Engine,
        shadow_netsim::NodeId,
        shadow_netsim::NodeId,
        Ipv4Addr,
        Ipv4Addr,
    ) {
        let mut tb = TopologyBuilder::new(4);
        tb.add_as(Asn(1), Region::Europe);
        tb.add_router(Asn(1), Ipv4Addr::new(1, 0, 0, 1), true)
            .unwrap();
        let client_addr = Ipv4Addr::new(1, 1, 0, 1);
        let auth_addr = Ipv4Addr::new(1, 1, 0, 53);
        let client = tb.add_host(Asn(1), client_addr).unwrap();
        let auth = tb.add_host(Asn(1), auth_addr).unwrap();
        (
            Engine::new(tb.build().unwrap()),
            client,
            auth,
            client_addr,
            auth_addr,
        )
    }

    fn zone() -> DnsName {
        DnsName::parse("www.experiment.example").unwrap()
    }

    fn web_addrs() -> Vec<Ipv4Addr> {
        vec![
            Ipv4Addr::new(198, 51, 100, 1), // US
            Ipv4Addr::new(198, 51, 100, 2), // DE
            Ipv4Addr::new(198, 51, 100, 3), // SG
        ]
    }

    fn query(src: Ipv4Addr, dst: Ipv4Addr, name: &str) -> Ipv4Packet {
        let q = DnsMessage::query(1, DnsName::parse(name).unwrap());
        Ipv4Packet::new(
            src,
            dst,
            IpProtocol::Udp,
            DEFAULT_TTL,
            0,
            UdpDatagram::new(5000, 53, q.encode()).encode(),
        )
    }

    #[test]
    fn wildcard_answers_any_label() {
        let (mut engine, client, auth, client_addr, auth_addr) = world();
        engine.add_host(
            auth,
            Box::new(ExperimentAuthorityHost::new(auth_addr, zone(), web_addrs())),
        );
        engine.add_host(
            client,
            Box::new(Sink {
                packets: Vec::new(),
            }),
        );
        engine.inject(
            SimTime::ZERO,
            client,
            query(
                client_addr,
                auth_addr,
                "g6d8jjkut5obc4-9982.www.experiment.example",
            ),
        );
        engine.run_to_completion();
        let sink = engine.host_as::<Sink>(client).unwrap();
        let dg = UdpDatagram::decode(&sink.packets[0].payload).unwrap();
        let resp = DnsMessage::decode(&dg.payload).unwrap();
        assert_eq!(resp.flags.rcode, Rcode::NoError);
        assert_eq!(resp.answers[0].ttl, WILDCARD_TTL_SECS);
        match resp.answers[0].data {
            RecordData::A(a) => assert!(web_addrs().contains(&a)),
            ref other => panic!("unexpected {other:?}"),
        }
        let auth_host = engine.host_as::<ExperimentAuthorityHost>(auth).unwrap();
        assert_eq!(auth_host.captures.len(), 1);
        assert_eq!(auth_host.queries_answered, 1);
    }

    #[test]
    fn same_name_same_target() {
        let (_, _, _, _, auth_addr) = world();
        let host = ExperimentAuthorityHost::new(auth_addr, zone(), web_addrs());
        let name = DnsName::parse("abc.www.experiment.example").unwrap();
        let t1 = host.wildcard_target(&name);
        let t2 = host.wildcard_target(&name);
        assert_eq!(t1, t2, "stable honeypot selection");
    }

    #[test]
    fn names_spread_across_honeypots() {
        let (_, _, _, _, auth_addr) = world();
        let host = ExperimentAuthorityHost::new(auth_addr, zone(), web_addrs());
        let mut seen = std::collections::HashSet::new();
        for i in 0..50 {
            let name = DnsName::parse(&format!("n{i}.www.experiment.example")).unwrap();
            seen.insert(host.wildcard_target(&name));
        }
        assert_eq!(seen.len(), 3, "all three honeypots used");
    }

    #[test]
    fn out_of_zone_refused_and_not_captured() {
        let (mut engine, client, auth, client_addr, auth_addr) = world();
        engine.add_host(
            auth,
            Box::new(ExperimentAuthorityHost::new(auth_addr, zone(), web_addrs())),
        );
        engine.add_host(
            client,
            Box::new(Sink {
                packets: Vec::new(),
            }),
        );
        engine.inject(
            SimTime::ZERO,
            client,
            query(client_addr, auth_addr, "www.google.com"),
        );
        engine.run_to_completion();
        let sink = engine.host_as::<Sink>(client).unwrap();
        let dg = UdpDatagram::decode(&sink.packets[0].payload).unwrap();
        let resp = DnsMessage::decode(&dg.payload).unwrap();
        assert_eq!(resp.flags.rcode, Rcode::Refused);
        let auth_host = engine.host_as::<ExperimentAuthorityHost>(auth).unwrap();
        assert_eq!(auth_host.captures.len(), 0);
        assert_eq!(auth_host.out_of_zone_queries, 1);
    }
}
