//! Property tests: the bitmap trie must agree with a naive
//! longest-prefix linear scan on arbitrary nested/overlapping prefix
//! sets, including the /0 and /32 extremes and the adjacent-/8 boundary
//! the old `GeoDb` backward-scan bound special-cased.

use std::net::Ipv4Addr;

use proptest::prelude::*;
use shadow_topo::IpLookupTable;

/// Reference model: keep every (base, len, value) and scan all of them,
/// longest match wins; on equal (base, len) the latest insert wins, the
/// same replace semantics as the trie.
#[derive(Default)]
struct NaiveLpm {
    entries: Vec<(u32, u32, u32)>,
}

impl NaiveLpm {
    fn insert(&mut self, ip: Ipv4Addr, len: u32, value: u32) {
        let base = u32::from(ip) & mask(len);
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|(b, l, _)| *b == base && *l == len)
        {
            e.2 = value;
        } else {
            self.entries.push((base, len, value));
        }
    }

    fn longest_match(&self, ip: Ipv4Addr) -> Option<(u32, u32, u32)> {
        let key = u32::from(ip);
        self.entries
            .iter()
            .filter(|(b, l, _)| key & mask(*l) == *b)
            .max_by_key(|(_, l, _)| *l)
            .copied()
    }
}

fn mask(len: u32) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

fn arb_prefix() -> impl Strategy<Value = (Ipv4Addr, u32)> {
    (any::<u32>(), 0u32..=32).prop_map(|(bits, len)| (Ipv4Addr::from(bits), len))
}

/// Prefixes clustered into two adjacent /8 blocks plus their boundary,
/// to pound on the transition the old scan bound special-cased.
fn arb_boundary_prefix() -> impl Strategy<Value = (Ipv4Addr, u32)> {
    (0u32..=0x01FF_FFFF, 8u32..=32).prop_map(|(low, len)| {
        let bits = (41u32 << 24) | low.min(0x01FF_FFFF);
        (Ipv4Addr::from(bits), len)
    })
}

fn check_agreement(
    prefixes: &[(Ipv4Addr, u32)],
    probes: impl Iterator<Item = Ipv4Addr>,
) -> Result<(), TestCaseError> {
    let mut trie = IpLookupTable::new();
    let mut naive = NaiveLpm::default();
    for (i, &(ip, len)) in prefixes.iter().enumerate() {
        trie.insert(ip, len, i as u32);
        naive.insert(ip, len, i as u32);
    }
    prop_assert_eq!(trie.len(), naive.entries.len());
    for probe in probes {
        let got = trie
            .longest_match(probe)
            .map(|(b, l, v)| (u32::from(b), l, *v));
        let want = naive.longest_match(probe);
        prop_assert_eq!(got, want);
    }
    Ok(())
}

proptest! {
    #[test]
    fn trie_matches_naive_on_random_prefixes(
        prefixes in proptest::collection::vec(arb_prefix(), 0..64),
        probes in proptest::collection::vec(any::<u32>(), 0..64),
    ) {
        // Probe both arbitrary addresses and each prefix's own base (the
        // base always matches its prefix, so hits are guaranteed too).
        let probe_addrs = probes
            .iter()
            .map(|&p| Ipv4Addr::from(p))
            .chain(prefixes.iter().map(|&(ip, len)| {
                Ipv4Addr::from(u32::from(ip) & mask(len))
            }))
            .collect::<Vec<_>>();
        check_agreement(&prefixes, probe_addrs.into_iter())?;
    }

    #[test]
    fn trie_matches_naive_on_nested_chains(
        base in any::<u32>(),
        lens in proptest::collection::vec(0u32..=32, 1..10),
        probes in proptest::collection::vec(any::<u32>(), 1..32),
    ) {
        // Deliberately nested: every prefix shares one base address, so
        // each longer length sits strictly inside the shorter ones.
        let prefixes: Vec<_> = lens
            .iter()
            .map(|&len| (Ipv4Addr::from(base), len))
            .collect();
        // Probe near the shared base so deep matches actually occur.
        let probe_addrs = probes
            .iter()
            .map(|&p| Ipv4Addr::from(base ^ (p % 1024)))
            .chain(std::iter::once(Ipv4Addr::from(base)))
            .collect::<Vec<_>>();
        check_agreement(&prefixes, probe_addrs.into_iter())?;
    }

    #[test]
    fn trie_matches_naive_across_adjacent_slash8_boundary(
        prefixes in proptest::collection::vec(arb_boundary_prefix(), 1..48),
        offsets in proptest::collection::vec(0u32..=0x01FF_FFFF, 1..48),
    ) {
        // Probes straddle 41.0.0.0–42.255.255.255 and one address each
        // side, where the old scan's /8-width bound cut off.
        let probe_addrs = offsets
            .iter()
            .map(|&o| Ipv4Addr::from((41u32 << 24) + o))
            .chain([
                Ipv4Addr::from((41u32 << 24) - 1),
                Ipv4Addr::new(41, 0, 0, 0),
                Ipv4Addr::new(42, 0, 0, 0),
                Ipv4Addr::from(43u32 << 24),
            ])
            .collect::<Vec<_>>();
        check_agreement(&prefixes, probe_addrs.into_iter())?;
    }

    #[test]
    fn replace_semantics_match_naive(
        prefix in arb_prefix(),
        values in proptest::collection::vec(any::<u32>(), 2..6),
        probe in any::<u32>(),
    ) {
        let (ip, len) = prefix;
        let mut trie = IpLookupTable::new();
        let mut naive = NaiveLpm::default();
        for &v in &values {
            trie.insert(ip, len, v);
            naive.insert(ip, len, v);
        }
        prop_assert_eq!(trie.len(), 1);
        let base = Ipv4Addr::from(u32::from(ip) & mask(len));
        prop_assert_eq!(
            trie.longest_match(base).map(|(_, _, v)| *v),
            Some(*values.last().unwrap())
        );
        prop_assert_eq!(
            trie.longest_match(Ipv4Addr::from(probe)).map(|(b, l, v)| (u32::from(b), l, *v)),
            naive.longest_match(Ipv4Addr::from(probe))
        );
    }
}
