//! Router-graph reconstruction from ICMP Time-Exceeded traces.
//!
//! Phase II sends TTL-limited decoy queries; on-path routers that expire
//! them answer with Time-Exceeded, each revealing one (probe path, TTL,
//! router IP) sample. [`RouterGraphBuilder`] folds those samples
//! incrementally — one `observe` per ICMP arrival, the same shape as the
//! streaming correlation sinks — and shards merge with the commutative
//! [`RouterGraphBuilder::absorb`], so the reconstruction is byte-identical
//! at any shard count. [`RouterGraphBuilder::finalize`] then projects the
//! per-path hop maps into an IP-level link graph, an AS-level adjacency
//! (via an `asn_of` lookup, in practice the LPM-backed `GeoDb`), and
//! per-AS hop-distance estimates.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

/// One TTL-limited probe path: a vantage point probing one destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProbePath {
    pub vp: u32,
    pub dst: Ipv4Addr,
}

/// Incremental fold of Time-Exceeded observations into per-path hop maps.
///
/// Per (path, TTL) slot the smallest router IP wins, so the fold is
/// order-independent: merging shard-local builders in any order yields the
/// same state as a single sequential pass.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterGraphBuilder {
    paths: BTreeMap<ProbePath, BTreeMap<u8, Ipv4Addr>>,
    observations: u64,
}

impl RouterGraphBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one Time-Exceeded observation: `router` expired the probe
    /// that `path` sent with the given `ttl`.
    pub fn observe(&mut self, path: ProbePath, ttl: u8, router: Ipv4Addr) {
        self.observations += 1;
        self.paths
            .entry(path)
            .or_default()
            .entry(ttl)
            .and_modify(|existing| {
                if router < *existing {
                    *existing = router;
                }
            })
            .or_insert(router);
    }

    /// Merge another shard's fold into this one. Commutative and
    /// associative: observation counts add, and per-(path, TTL) slots
    /// resolve by minimum router IP exactly as `observe` does.
    pub fn absorb(&mut self, other: Self) {
        self.observations += other.observations;
        for (path, hops) in other.paths {
            let mine = self.paths.entry(path).or_default();
            for (ttl, router) in hops {
                mine.entry(ttl)
                    .and_modify(|existing| {
                        if router < *existing {
                            *existing = router;
                        }
                    })
                    .or_insert(router);
            }
        }
    }

    /// Number of distinct probe paths with at least one revealed hop.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// Total Time-Exceeded observations folded (pre-dedup).
    pub fn observations(&self) -> u64 {
        self.observations
    }

    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// The deduplicated hop map for one path, if any hop was revealed.
    pub fn hops(&self, path: &ProbePath) -> Option<&BTreeMap<u8, Ipv4Addr>> {
        self.paths.get(path)
    }

    /// All paths with their TTL→router hop maps, in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&ProbePath, &BTreeMap<u8, Ipv4Addr>)> {
        self.paths.iter()
    }

    /// Project the folded hop maps into a [`RouterGraph`].
    ///
    /// `asn_of` maps a router address to its origin AS (in practice the
    /// LPM-backed `GeoDb`); routers outside every known prefix get
    /// `asn: None` and are excluded from the AS layer.
    pub fn finalize<F>(&self, asn_of: F) -> RouterGraph
    where
        F: Fn(Ipv4Addr) -> Option<u32>,
    {
        let mut routers: BTreeMap<Ipv4Addr, RouterInfo> = BTreeMap::new();
        let mut links: BTreeMap<(Ipv4Addr, Ipv4Addr), u64> = BTreeMap::new();
        let mut as_links: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        let mut as_hops: BTreeMap<u32, AsHopStats> = BTreeMap::new();

        for hops in self.paths.values() {
            let mut prev: Option<(u8, Ipv4Addr)> = None;
            for (&ttl, &addr) in hops {
                let asn = asn_of(addr);
                let info = routers.entry(addr).or_insert(RouterInfo {
                    addr,
                    asn,
                    min_ttl: ttl,
                    paths: 0,
                });
                info.min_ttl = info.min_ttl.min(ttl);
                info.paths += 1;
                if let Some(a) = asn {
                    let stats = as_hops.entry(a).or_insert(AsHopStats {
                        asn: a,
                        min_ttl: ttl,
                        max_ttl: ttl,
                        samples: 0,
                        ttl_sum: 0,
                    });
                    stats.min_ttl = stats.min_ttl.min(ttl);
                    stats.max_ttl = stats.max_ttl.max(ttl);
                    stats.samples += 1;
                    stats.ttl_sum += u64::from(ttl);
                }
                // Only consecutive TTLs witness a direct link; a gap means
                // at least one silent router sits between the two.
                if let Some((pttl, paddr)) = prev {
                    if ttl == pttl + 1 && paddr != addr {
                        *links.entry((paddr, addr)).or_insert(0) += 1;
                        if let (Some(pa), Some(a)) = (asn_of(paddr), asn) {
                            if pa != a {
                                let key = (pa.min(a), pa.max(a));
                                *as_links.entry(key).or_insert(0) += 1;
                            }
                        }
                    }
                }
                prev = Some((ttl, addr));
            }
        }

        RouterGraph {
            traced_paths: self.paths.len() as u64,
            observations: self.observations,
            routers: routers.into_values().collect(),
            links: links
                .into_iter()
                .map(|((from, to), paths)| RouterLink { from, to, paths })
                .collect(),
            as_links: as_links
                .into_iter()
                .map(|((a, b), links)| AsLink { a, b, links })
                .collect(),
            as_hops: as_hops.into_values().collect(),
        }
    }
}

/// A router revealed by at least one Time-Exceeded answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterInfo {
    pub addr: Ipv4Addr,
    /// Origin AS per the LPM table; `None` when no prefix covers `addr`.
    pub asn: Option<u32>,
    /// Smallest TTL at which any path revealed this router.
    pub min_ttl: u8,
    /// Number of path hop-slots this router appears in.
    pub paths: u64,
}

/// A directed IP-level link witnessed by consecutive-TTL hops on a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterLink {
    pub from: Ipv4Addr,
    pub to: Ipv4Addr,
    /// Number of paths that witnessed this link.
    pub paths: u64,
}

/// An undirected AS-level adjacency (`a < b`), self-loops excluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsLink {
    pub a: u32,
    pub b: u32,
    /// Number of witnessed IP-level link crossings between the two ASes.
    pub links: u64,
}

/// Hop-distance estimate for one AS: the TTL range at which its routers
/// answered, Snippet-style evidence for "how far into the path does this
/// AS sit".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsHopStats {
    pub asn: u32,
    pub min_ttl: u8,
    pub max_ttl: u8,
    pub samples: u64,
    pub ttl_sum: u64,
}

impl AsHopStats {
    /// Mean TTL at which this AS's routers were revealed.
    pub fn mean_ttl(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.ttl_sum as f64 / self.samples as f64
        }
    }
}

/// The finalized reconstruction: IP-level link graph, AS adjacency, and
/// per-AS hop estimates. All fields are sorted vectors so serialization
/// is canonical — two equal graphs serialize byte-identically.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RouterGraph {
    /// Distinct probe paths that revealed at least one hop.
    pub traced_paths: u64,
    /// Raw Time-Exceeded observations folded (pre-dedup).
    pub observations: u64,
    /// Revealed routers, sorted by address.
    pub routers: Vec<RouterInfo>,
    /// Directed IP-level links, sorted by (from, to).
    pub links: Vec<RouterLink>,
    /// Undirected AS adjacencies, sorted by (a, b).
    pub as_links: Vec<AsLink>,
    /// Per-AS hop-distance estimates, sorted by ASN.
    pub as_hops: Vec<AsHopStats>,
}

impl RouterGraph {
    /// Addresses of all revealed routers, sorted.
    pub fn router_addrs(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.routers.iter().map(|r| r.addr)
    }

    /// Total IP-level link count.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn path(vp: u32, dst: &str) -> ProbePath {
        ProbePath { vp, dst: ip(dst) }
    }

    #[test]
    fn observe_dedups_by_min_router_ip() {
        let mut b = RouterGraphBuilder::new();
        b.observe(path(1, "10.0.0.1"), 3, ip("9.9.9.9"));
        b.observe(path(1, "10.0.0.1"), 3, ip("1.1.1.1"));
        b.observe(path(1, "10.0.0.1"), 3, ip("5.5.5.5"));
        assert_eq!(b.observations(), 3);
        assert_eq!(b.hops(&path(1, "10.0.0.1")).unwrap()[&3], ip("1.1.1.1"));
    }

    #[test]
    fn absorb_is_commutative() {
        let mut left = RouterGraphBuilder::new();
        left.observe(path(1, "10.0.0.1"), 2, ip("8.8.8.8"));
        left.observe(path(2, "10.0.0.2"), 1, ip("7.7.7.7"));
        let mut right = RouterGraphBuilder::new();
        right.observe(path(1, "10.0.0.1"), 2, ip("6.6.6.6"));
        right.observe(path(1, "10.0.0.1"), 3, ip("5.5.5.5"));

        let mut ab = left.clone();
        ab.absorb(right.clone());
        let mut ba = right;
        ba.absorb(left);
        assert_eq!(ab, ba);
        assert_eq!(ab.hops(&path(1, "10.0.0.1")).unwrap()[&2], ip("6.6.6.6"));
    }

    #[test]
    fn finalize_links_require_consecutive_ttls() {
        let mut b = RouterGraphBuilder::new();
        let p = path(1, "10.0.0.1");
        b.observe(p, 1, ip("1.0.0.1"));
        b.observe(p, 2, ip("2.0.0.1"));
        b.observe(p, 4, ip("4.0.0.1")); // TTL 3 silent: no 2→4 link
        let g = b.finalize(|_| None);
        assert_eq!(g.traced_paths, 1);
        assert_eq!(g.routers.len(), 3);
        assert_eq!(g.links.len(), 1);
        assert_eq!(
            (g.links[0].from, g.links[0].to),
            (ip("1.0.0.1"), ip("2.0.0.1"))
        );
    }

    #[test]
    fn finalize_builds_as_layer_and_hop_stats() {
        let mut b = RouterGraphBuilder::new();
        let asn_of = |addr: Ipv4Addr| match addr.octets()[0] {
            1 => Some(100),
            2 => Some(200),
            _ => None,
        };
        let p1 = path(1, "10.0.0.1");
        b.observe(p1, 1, ip("1.0.0.1"));
        b.observe(p1, 2, ip("2.0.0.1"));
        let p2 = path(2, "10.0.0.2");
        b.observe(p2, 1, ip("1.0.0.2"));
        b.observe(p2, 2, ip("2.0.0.1"));
        b.observe(p2, 3, ip("3.0.0.1")); // unknown AS: dropped from AS layer

        let g = b.finalize(asn_of);
        assert_eq!(
            g.as_links,
            vec![AsLink {
                a: 100,
                b: 200,
                links: 2
            }]
        );
        let a100 = g.as_hops.iter().find(|s| s.asn == 100).unwrap();
        assert_eq!((a100.min_ttl, a100.max_ttl, a100.samples), (1, 1, 2));
        let a200 = g.as_hops.iter().find(|s| s.asn == 200).unwrap();
        assert_eq!((a200.min_ttl, a200.max_ttl, a200.samples), (2, 2, 2));
        assert!(g
            .routers
            .iter()
            .any(|r| r.addr == ip("3.0.0.1") && r.asn.is_none()));
    }

    #[test]
    fn as_links_exclude_self_loops_and_normalize() {
        let mut b = RouterGraphBuilder::new();
        let asn_of = |addr: Ipv4Addr| Some(u32::from(addr.octets()[0] / 2));
        let p = path(1, "10.0.0.1");
        b.observe(p, 1, ip("4.0.0.1")); // AS 2
        b.observe(p, 2, ip("5.0.0.1")); // AS 2: self-loop, excluded
        b.observe(p, 3, ip("2.0.0.1")); // AS 1: crossing recorded as (1, 2)
        let g = b.finalize(asn_of);
        assert_eq!(
            g.as_links,
            vec![AsLink {
                a: 1,
                b: 2,
                links: 1
            }]
        );
    }

    #[test]
    fn sequential_equals_sharded_fold() {
        let samples = [
            (1u32, "10.0.0.1", 1u8, "1.0.0.1"),
            (1, "10.0.0.1", 2, "2.0.0.1"),
            (2, "10.0.0.2", 1, "1.0.0.9"),
            (2, "10.0.0.2", 2, "2.0.0.9"),
            (3, "10.0.0.3", 1, "1.0.0.5"),
        ];
        let mut seq = RouterGraphBuilder::new();
        for &(vp, dst, ttl, router) in &samples {
            seq.observe(path(vp, dst), ttl, ip(router));
        }
        // Shard by vp % 2, merge in reverse order.
        let mut shards = [RouterGraphBuilder::new(), RouterGraphBuilder::new()];
        for &(vp, dst, ttl, router) in &samples {
            shards[(vp % 2) as usize].observe(path(vp, dst), ttl, ip(router));
        }
        let [s0, s1] = shards;
        let mut merged = s1;
        merged.absorb(s0);
        assert_eq!(seq, merged);
        assert_eq!(seq.finalize(|_| None), merged.finalize(|_| None));
    }

    #[test]
    fn graph_serde_round_trips() {
        let mut b = RouterGraphBuilder::new();
        b.observe(path(1, "10.0.0.1"), 1, ip("1.0.0.1"));
        b.observe(path(1, "10.0.0.1"), 2, ip("2.0.0.1"));
        let g = b.finalize(|_| Some(7));
        let back = RouterGraph::deserialize_content(&g.serialize_content()).unwrap();
        assert_eq!(g, back);
        let builder_back = RouterGraphBuilder::deserialize_content(&b.serialize_content()).unwrap();
        assert_eq!(b, builder_back);
    }
}
