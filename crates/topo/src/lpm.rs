//! A bitmap-indexed longest-prefix-match table for IPv4 (treebitmap idiom).
//!
//! The structure is a stride-4 multibit trie: each node covers one nibble
//! of the address. A 15-bit *internal* bitmap marks prefixes whose length
//! falls inside the node's stride (relative lengths 0–3, heap-ordered:
//! bit `(1 << r) - 1 + p` holds the relative-length-`r` prefix with path
//! bits `p`), and a 16-bit *external* bitmap marks which of the 16 child
//! branches exist. Result and child arrays are popcount-compressed — slot
//! `i` of a node's results belongs to the `i`-th set internal bit — so a
//! lookup is at most nine node visits of pure bit arithmetic, independent
//! of how many prefixes are loaded. A `/32` lands in a tenth conceptual
//! level: depth 8 with relative length 0.
//!
//! Inserts are incremental (no build step): the table is correct after
//! every insert, which is what lets `shadow-geo`'s `GeoDb` stay
//! correct-by-construction instead of assert-guarded.

use std::net::Ipv4Addr;

/// Bits covered per trie level.
const STRIDE: u32 = 4;
/// Maximum node depth: depths 0–7 consume the eight nibbles; depth 8
/// exists only to hold /32 entries in its relative-length-0 slot.
const MAX_DEPTH: u32 = 8;

/// For a nibble `n`, the internal-bitmap positions whose stored prefix
/// matches an address passing through `n`: one candidate per relative
/// length 0–3, the longest at the highest bit position.
const fn match_masks() -> [u16; 16] {
    let mut table = [0u16; 16];
    let mut n = 0;
    while n < 16 {
        let r0 = 1u16; // bit 0: the node's /0-relative prefix
        let r1 = 1u16 << (1 + (n >> 3));
        let r2 = 1u16 << (3 + (n >> 2));
        let r3 = 1u16 << (7 + (n >> 1));
        table[n as usize] = r0 | r1 | r2 | r3;
        n += 1;
    }
    table
}

const MATCH_MASK: [u16; 16] = match_masks();

/// One trie node: 12 bytes, no owned allocations. Result and child slots
/// live in the table-level arenas (`IpLookupTable::results` /
/// `::children`) as contiguous segments starting at the node's base
/// offsets — a lookup therefore touches only two flat arrays, not a heap
/// allocation per node.
#[derive(Debug, Clone, Copy, Default)]
struct Node {
    /// Prefixes stored at this node (relative lengths 0–3, heap order).
    internal: u16,
    /// Which 4-bit branches have a child node.
    external: u16,
    /// Base offset of this node's entry-index segment in the results
    /// arena (one slot per set `internal` bit, in bit order).
    results: u32,
    /// Base offset of this node's child-index segment in the children
    /// arena (one slot per set `external` bit, in bit order).
    children: u32,
}

#[derive(Debug, Clone)]
struct Entry<V> {
    base: u32,
    masklen: u32,
    value: V,
}

/// Longest-prefix-match table mapping IPv4 prefixes to values.
///
/// ```
/// use shadow_topo::IpLookupTable;
/// use std::net::Ipv4Addr;
///
/// let mut table = IpLookupTable::new();
/// table.insert(Ipv4Addr::new(10, 0, 0, 0), 8, "coarse");
/// table.insert(Ipv4Addr::new(10, 1, 0, 0), 16, "fine");
/// let (base, len, value) = table.longest_match(Ipv4Addr::new(10, 1, 2, 3)).unwrap();
/// assert_eq!((base, len, *value), (Ipv4Addr::new(10, 1, 0, 0), 16, "fine"));
/// ```
/// Sentinel for "no node" / "no entry" in the jump table.
const NONE: u32 = u32::MAX;

/// One slot of the /8 initial array: where to resume the walk (the
/// depth-2 node reached through this slot's two nibbles) and the best
/// match among the two skipped levels (prefixes shorter than /8),
/// pre-resolved to an entry index.
#[derive(Debug, Clone, Copy)]
struct JumpSlot {
    node: u32,
    best: u32,
}

#[derive(Debug, Clone)]
pub struct IpLookupTable<V> {
    nodes: Vec<Node>,
    /// Results arena: entry indexes, segmented per node.
    results: Vec<u32>,
    /// Children arena: node indexes, segmented per node.
    children: Vec<u32>,
    entries: Vec<Entry<V>>,
    /// The "initial array" optimization shared by production treebitmap
    /// implementations: one slot per /8, letting a lookup start at depth
    /// 2 with the sub-/8 best already resolved. Rebuilt on insert — 256
    /// two-level walks — trading the cold path for two fewer dependent
    /// loads on every hot lookup.
    jump: Vec<JumpSlot>,
}

impl<V> Default for IpLookupTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> IpLookupTable<V> {
    pub fn new() -> Self {
        Self {
            nodes: vec![Node::default()],
            results: Vec::new(),
            children: Vec::new(),
            entries: Vec::new(),
            jump: vec![
                JumpSlot {
                    node: NONE,
                    best: NONE,
                };
                256
            ],
        }
    }

    /// Re-derive the /8 initial array from the first two trie levels.
    fn rebuild_jump(&mut self) {
        for b in 0..256u32 {
            let key = b << 24;
            let mut best = NONE;
            let mut node_idx = 0u32;
            for depth in 0..2 {
                let node = &self.nodes[node_idx as usize];
                let nib = (key >> (28 - STRIDE * depth)) & 0xF;
                let hits = node.internal & MATCH_MASK[nib as usize];
                if hits != 0 {
                    let pos = 15 - hits.leading_zeros() as u16;
                    let slot = (node.internal & ((1u16 << pos) - 1)).count_ones() as usize;
                    best = self.results[node.results as usize + slot];
                }
                let bit = 1u16 << nib;
                if node.external & bit == 0 {
                    node_idx = NONE;
                    break;
                }
                let slot = (node.external & (bit - 1)).count_ones() as usize;
                node_idx = self.children[node.children as usize + slot];
            }
            self.jump[b as usize] = JumpSlot {
                node: node_idx,
                best,
            };
        }
    }

    /// Insert `value` at `slot` of `node`'s results segment, shifting the
    /// segments of every node further along the arena. Inserts are O(n)
    /// in table size so lookups can be allocation-free and flat.
    fn results_insert(&mut self, node: usize, slot: usize, value: u32) {
        let pos = self.nodes[node].results as usize + slot;
        self.results.insert(pos, value);
        for (i, n) in self.nodes.iter_mut().enumerate() {
            if i != node && n.results as usize >= pos {
                n.results += 1;
            }
        }
    }

    /// [`Self::results_insert`] for the children arena.
    fn children_insert(&mut self, node: usize, slot: usize, value: u32) {
        let pos = self.nodes[node].children as usize + slot;
        self.children.insert(pos, value);
        for (i, n) in self.nodes.iter_mut().enumerate() {
            if i != node && n.children as usize >= pos {
                n.children += 1;
            }
        }
    }

    /// Number of distinct prefixes stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The nibble of `key` consumed at `depth` (0 for the /32 level).
    #[inline]
    fn nibble(key: u32, depth: u32) -> u32 {
        if depth < MAX_DEPTH {
            (key >> (28 - STRIDE * depth)) & 0xF
        } else {
            0
        }
    }

    /// Insert `ip/masklen`, zeroing host bits. Returns the previous value
    /// when the exact prefix was already present (replace semantics — the
    /// latest insert wins, matching what a stable-sorted backward scan
    /// that prefers later records resolves duplicates to).
    ///
    /// # Panics
    /// Panics if `masklen > 32`.
    pub fn insert(&mut self, ip: Ipv4Addr, masklen: u32, value: V) -> Option<V> {
        assert!(masklen <= 32, "IPv4 mask length {masklen} out of range");
        let mask = if masklen == 0 {
            0
        } else {
            u32::MAX << (32 - masklen)
        };
        let base = u32::from(ip) & mask;
        let depth = masklen / STRIDE;
        let rel = masklen % STRIDE;

        let mut node = 0usize;
        for d in 0..depth {
            let nib = Self::nibble(base, d);
            let bit = 1u16 << nib;
            let slot = (self.nodes[node].external & (bit - 1)).count_ones() as usize;
            if self.nodes[node].external & bit == 0 {
                let child = self.nodes.len();
                self.nodes.push(Node {
                    internal: 0,
                    external: 0,
                    results: self.results.len() as u32,
                    children: self.children.len() as u32,
                });
                self.nodes[node].external |= bit;
                self.children_insert(node, slot, child as u32);
                node = child;
            } else {
                node = self.children[self.nodes[node].children as usize + slot] as usize;
            }
        }

        // Path bits inside the stride: the top `rel` bits of this node's
        // nibble (zero for relative length 0).
        let path = if rel == 0 {
            0
        } else {
            Self::nibble(base, depth) >> (STRIDE - rel)
        };
        let pos = (1u16 << rel) - 1 + path as u16;
        let bit = 1u16 << pos;
        let slot = (self.nodes[node].internal & (bit - 1)).count_ones() as usize;
        if self.nodes[node].internal & bit != 0 {
            let idx = self.results[self.nodes[node].results as usize + slot] as usize;
            let old = std::mem::replace(&mut self.entries[idx].value, value);
            return Some(old);
        }
        let idx = self.entries.len() as u32;
        self.entries.push(Entry {
            base,
            masklen,
            value,
        });
        self.nodes[node].internal |= bit;
        self.results_insert(node, slot, idx);
        self.rebuild_jump();
        None
    }

    /// The longest stored prefix containing `ip`, with its value.
    #[inline]
    pub fn longest_match(&self, ip: Ipv4Addr) -> Option<(Ipv4Addr, u32, &V)> {
        self.longest_match_idx(u32::from(ip)).map(|idx| {
            let e = &self.entries[idx];
            (Ipv4Addr::from(e.base), e.masklen, &e.value)
        })
    }

    /// [`IpLookupTable::longest_match`] returning only the value — the
    /// per-packet shape (no entry re-materialization).
    #[inline]
    pub fn longest_match_value(&self, ip: Ipv4Addr) -> Option<&V> {
        self.longest_match_idx(u32::from(ip))
            .map(|idx| &self.entries[idx].value)
    }

    #[inline]
    fn longest_match_idx(&self, key: u32) -> Option<usize> {
        // The initial array covers depths 0–1: resume at the depth-2 node
        // with the sub-/8 best already resolved.
        let jump = self.jump[(key >> 24) as usize];
        let fallback = if jump.best == NONE {
            None
        } else {
            Some(jump.best as usize)
        };
        if jump.node == NONE {
            return fallback;
        }
        // Deeper nodes always hold longer prefixes, so the deepest node
        // with a hit wins; the walk only records *which* node and bitmap
        // hit, and the slot arithmetic + arena load happen once at the
        // end instead of at every matching level.
        let mut best: Option<(&Node, u16)> = None;
        let mut node = &self.nodes[jump.node as usize];
        let mut depth = 2;
        loop {
            let nib = Self::nibble(key, depth);
            let mask = if depth < MAX_DEPTH {
                MATCH_MASK[nib as usize]
            } else {
                1
            };
            let hits = node.internal & mask;
            if hits != 0 {
                best = Some((node, hits));
            }
            if depth == MAX_DEPTH {
                break;
            }
            let bit = 1u16 << nib;
            if node.external & bit == 0 {
                break;
            }
            let slot = (node.external & (bit - 1)).count_ones() as usize;
            node = &self.nodes[self.children[node.children as usize + slot] as usize];
            depth += 1;
        }
        match best {
            Some((node, hits)) => {
                // Within the node the highest set bit is the longest prefix.
                let pos = 15 - hits.leading_zeros() as u16;
                let slot = (node.internal & ((1u16 << pos) - 1)).count_ones() as usize;
                Some(self.results[node.results as usize + slot] as usize)
            }
            None => fallback,
        }
    }

    /// The value stored for exactly `ip/masklen`, if any.
    pub fn exact_match(&self, ip: Ipv4Addr, masklen: u32) -> Option<&V> {
        if masklen > 32 {
            return None;
        }
        let mask = if masklen == 0 {
            0
        } else {
            u32::MAX << (32 - masklen)
        };
        let base = u32::from(ip) & mask;
        let depth = masklen / STRIDE;
        let rel = masklen % STRIDE;
        let mut node = &self.nodes[0];
        for d in 0..depth {
            let bit = 1u16 << Self::nibble(base, d);
            if node.external & bit == 0 {
                return None;
            }
            let slot = (node.external & (bit - 1)).count_ones() as usize;
            node = &self.nodes[self.children[node.children as usize + slot] as usize];
        }
        let path = if rel == 0 {
            0
        } else {
            Self::nibble(base, depth) >> (STRIDE - rel)
        };
        let pos = (1u16 << rel) - 1 + path as u16;
        let bit = 1u16 << pos;
        if node.internal & bit == 0 {
            return None;
        }
        let slot = (node.internal & (bit - 1)).count_ones() as usize;
        Some(&self.entries[self.results[node.results as usize + slot] as usize].value)
    }

    /// Mutable access to the value stored for exactly `ip/masklen`.
    pub fn exact_match_mut(&mut self, ip: Ipv4Addr, masklen: u32) -> Option<&mut V> {
        if masklen > 32 {
            return None;
        }
        let mask = if masklen == 0 {
            0
        } else {
            u32::MAX << (32 - masklen)
        };
        let base = u32::from(ip) & mask;
        let depth = masklen / STRIDE;
        let rel = masklen % STRIDE;
        let mut node = 0usize;
        for d in 0..depth {
            let bit = 1u16 << Self::nibble(base, d);
            if self.nodes[node].external & bit == 0 {
                return None;
            }
            let slot = (self.nodes[node].external & (bit - 1)).count_ones() as usize;
            node = self.children[self.nodes[node].children as usize + slot] as usize;
        }
        let path = if rel == 0 {
            0
        } else {
            Self::nibble(base, depth) >> (STRIDE - rel)
        };
        let pos = (1u16 << rel) - 1 + path as u16;
        let bit = 1u16 << pos;
        if self.nodes[node].internal & bit == 0 {
            return None;
        }
        let slot = (self.nodes[node].internal & (bit - 1)).count_ones() as usize;
        let idx = self.results[self.nodes[node].results as usize + slot] as usize;
        Some(&mut self.entries[idx].value)
    }

    /// Stored prefixes in insertion order (replacements keep the original
    /// position).
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Addr, u32, &V)> {
        self.entries
            .iter()
            .map(|e| (Ipv4Addr::from(e.base), e.masklen, &e.value))
    }
}

impl<V> FromIterator<(Ipv4Addr, u32, V)> for IpLookupTable<V> {
    /// Bulk build. Repeated [`IpLookupTable::insert`] is quadratic in
    /// table size — every insert shifts the shared arenas (O(nodes)) and
    /// rebuilds the 256-slot jump table — which turns the ~20k node
    /// addresses of a paper-scale topology freeze into hundreds of
    /// milliseconds of serial tail. Building per-node segment lists first,
    /// flattening once, and deriving the jump table once is O(entries).
    /// Semantics match insert-in-a-loop exactly, including
    /// latest-insert-wins replacement at the original entry position.
    fn from_iter<T: IntoIterator<Item = (Ipv4Addr, u32, V)>>(iter: T) -> Self {
        /// [`Node`] with owned segments, before arena flattening.
        #[derive(Default)]
        struct BuildNode {
            internal: u16,
            external: u16,
            results: Vec<u32>,
            children: Vec<u32>,
        }
        let mut nodes: Vec<BuildNode> = vec![BuildNode::default()];
        let mut entries: Vec<Entry<V>> = Vec::new();
        for (ip, masklen, value) in iter {
            assert!(masklen <= 32, "IPv4 mask length {masklen} out of range");
            let mask = if masklen == 0 {
                0
            } else {
                u32::MAX << (32 - masklen)
            };
            let base = u32::from(ip) & mask;
            let depth = masklen / STRIDE;
            let rel = masklen % STRIDE;
            let mut node = 0usize;
            for d in 0..depth {
                let nib = Self::nibble(base, d);
                let bit = 1u16 << nib;
                let slot = (nodes[node].external & (bit - 1)).count_ones() as usize;
                if nodes[node].external & bit == 0 {
                    let child = nodes.len();
                    nodes.push(BuildNode::default());
                    nodes[node].external |= bit;
                    nodes[node].children.insert(slot, child as u32);
                    node = child;
                } else {
                    node = nodes[node].children[slot] as usize;
                }
            }
            let path = if rel == 0 {
                0
            } else {
                Self::nibble(base, depth) >> (STRIDE - rel)
            };
            let pos = (1u16 << rel) - 1 + path as u16;
            let bit = 1u16 << pos;
            let slot = (nodes[node].internal & (bit - 1)).count_ones() as usize;
            if nodes[node].internal & bit != 0 {
                let idx = nodes[node].results[slot] as usize;
                entries[idx].value = value;
            } else {
                let idx = entries.len() as u32;
                entries.push(Entry {
                    base,
                    masklen,
                    value,
                });
                nodes[node].internal |= bit;
                nodes[node].results.insert(slot, idx);
            }
        }
        // Flatten: temp node index == final node index (same push order),
        // so the children segments transfer verbatim.
        let mut table = Self {
            nodes: Vec::with_capacity(nodes.len()),
            results: Vec::new(),
            children: Vec::new(),
            entries,
            jump: vec![
                JumpSlot {
                    node: NONE,
                    best: NONE,
                };
                256
            ],
        };
        for built in &nodes {
            table.nodes.push(Node {
                internal: built.internal,
                external: built.external,
                results: table.results.len() as u32,
                children: table.children.len() as u32,
            });
            table.results.extend_from_slice(&built.results);
            table.children.extend_from_slice(&built.children);
        }
        table.rebuild_jump();
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn empty_table_matches_nothing() {
        let table: IpLookupTable<u32> = IpLookupTable::new();
        assert!(table.longest_match(ip("1.2.3.4")).is_none());
        assert!(table.is_empty());
    }

    #[test]
    fn default_route_matches_everything() {
        let mut table = IpLookupTable::new();
        table.insert(ip("0.0.0.0"), 0, 99u32);
        for probe in ["0.0.0.0", "255.255.255.255", "8.8.8.8"] {
            let (base, len, v) = table.longest_match(ip(probe)).unwrap();
            assert_eq!((base, len, *v), (ip("0.0.0.0"), 0, 99));
        }
    }

    #[test]
    fn longest_prefix_wins_across_levels() {
        let mut table = IpLookupTable::new();
        table.insert(ip("10.0.0.0"), 8, "a");
        table.insert(ip("10.1.0.0"), 16, "b");
        table.insert(ip("10.1.2.0"), 24, "c");
        table.insert(ip("10.1.2.3"), 32, "d");
        assert_eq!(*table.longest_match_value(ip("10.9.0.1")).unwrap(), "a");
        assert_eq!(*table.longest_match_value(ip("10.1.9.1")).unwrap(), "b");
        assert_eq!(*table.longest_match_value(ip("10.1.2.9")).unwrap(), "c");
        assert_eq!(*table.longest_match_value(ip("10.1.2.3")).unwrap(), "d");
        assert!(table.longest_match(ip("11.0.0.0")).is_none());
    }

    #[test]
    fn intra_stride_lengths_resolve() {
        // Lengths 1–3 and 5–7 exercise the internal bitmap's heap order.
        let mut table = IpLookupTable::new();
        table.insert(ip("128.0.0.0"), 1, 1u8);
        table.insert(ip("192.0.0.0"), 2, 2);
        table.insert(ip("224.0.0.0"), 3, 3);
        table.insert(ip("248.0.0.0"), 5, 5);
        table.insert(ip("252.0.0.0"), 6, 6);
        table.insert(ip("254.0.0.0"), 7, 7);
        assert_eq!(*table.longest_match_value(ip("129.0.0.1")).unwrap(), 1);
        assert_eq!(*table.longest_match_value(ip("193.0.0.1")).unwrap(), 2);
        assert_eq!(*table.longest_match_value(ip("226.0.0.1")).unwrap(), 3);
        assert_eq!(*table.longest_match_value(ip("249.0.0.1")).unwrap(), 5);
        assert_eq!(*table.longest_match_value(ip("253.0.0.1")).unwrap(), 6);
        assert_eq!(*table.longest_match_value(ip("255.0.0.1")).unwrap(), 7);
        assert!(table.longest_match(ip("1.0.0.1")).is_none());
    }

    #[test]
    fn adjacent_slash8_blocks_do_not_bleed() {
        // The old GeoDb backward scan special-cased this boundary with a
        // /8-width bound; the trie must keep 41.x and 42.x fully separate.
        let mut table = IpLookupTable::new();
        table.insert(ip("41.0.0.0"), 8, "41");
        table.insert(ip("42.0.0.0"), 8, "42");
        assert_eq!(
            *table.longest_match_value(ip("41.255.255.255")).unwrap(),
            "41"
        );
        assert_eq!(*table.longest_match_value(ip("42.0.0.0")).unwrap(), "42");
        assert!(table.longest_match(ip("43.0.0.0")).is_none());
    }

    #[test]
    fn insert_replaces_and_reports_old_value() {
        let mut table = IpLookupTable::new();
        assert_eq!(table.insert(ip("10.0.0.0"), 8, 1u32), None);
        assert_eq!(table.insert(ip("10.0.0.0"), 8, 2), Some(1));
        assert_eq!(table.len(), 1);
        assert_eq!(*table.longest_match_value(ip("10.1.1.1")).unwrap(), 2);
    }

    #[test]
    fn insert_zeroes_host_bits() {
        let mut table = IpLookupTable::new();
        table.insert(ip("10.1.2.3"), 16, "x");
        let (base, len, _) = table.longest_match(ip("10.1.9.9")).unwrap();
        assert_eq!((base, len), (ip("10.1.0.0"), 16));
    }

    #[test]
    fn exact_match_distinguishes_lengths() {
        let mut table = IpLookupTable::new();
        table.insert(ip("10.0.0.0"), 8, "eight");
        table.insert(ip("10.0.0.0"), 16, "sixteen");
        assert_eq!(*table.exact_match(ip("10.0.0.0"), 8).unwrap(), "eight");
        assert_eq!(*table.exact_match(ip("10.0.0.0"), 16).unwrap(), "sixteen");
        assert!(table.exact_match(ip("10.0.0.0"), 24).is_none());
        *table.exact_match_mut(ip("10.0.0.0"), 8).unwrap() = "EIGHT";
        assert_eq!(*table.exact_match(ip("10.0.0.0"), 8).unwrap(), "EIGHT");
    }

    #[test]
    fn slash32_entries_live_at_the_final_level() {
        let mut table = IpLookupTable::new();
        table.insert(ip("192.0.2.1"), 32, "one");
        table.insert(ip("192.0.2.2"), 32, "two");
        assert_eq!(*table.longest_match_value(ip("192.0.2.1")).unwrap(), "one");
        assert_eq!(*table.longest_match_value(ip("192.0.2.2")).unwrap(), "two");
        assert!(table.longest_match(ip("192.0.2.3")).is_none());
    }

    #[test]
    fn bulk_build_matches_incremental_inserts() {
        // The FromIterator fast path must be indistinguishable from
        // insert-in-a-loop: same matches, same iteration order, same
        // replacement semantics.
        let prefixes: Vec<(Ipv4Addr, u32, u32)> = (0u32..600)
            .map(|i| {
                let addr = Ipv4Addr::from(0x0a00_0000 | (i.wrapping_mul(2_654_435_761) >> 10));
                let len = [8, 12, 16, 20, 24, 28, 32][i as usize % 7];
                (addr, len, i)
            })
            // A replacement: same prefix inserted twice, later value wins.
            .chain([(Ipv4Addr::new(10, 0, 0, 0), 8u32, 999_999u32)])
            .collect();
        let bulk: IpLookupTable<u32> = prefixes.iter().copied().collect();
        let mut incremental = IpLookupTable::new();
        for &(addr, len, v) in &prefixes {
            incremental.insert(addr, len, v);
        }
        assert_eq!(bulk.len(), incremental.len());
        let a: Vec<_> = bulk.iter().map(|(b, l, v)| (b, l, *v)).collect();
        let b: Vec<_> = incremental.iter().map(|(b, l, v)| (b, l, *v)).collect();
        assert_eq!(a, b);
        for probe in 0u32..4_096 {
            let key = Ipv4Addr::from(0x0a00_0000 | (probe * 65_537));
            assert_eq!(
                bulk.longest_match(key),
                incremental.longest_match(key),
                "probe {key} diverges"
            );
        }
    }

    #[test]
    fn iter_preserves_insertion_order() {
        let mut table = IpLookupTable::new();
        table.insert(ip("9.0.0.0"), 8, 0u8);
        table.insert(ip("8.0.0.0"), 8, 1);
        let collected: Vec<_> = table.iter().map(|(b, l, v)| (b, l, *v)).collect();
        assert_eq!(
            collected,
            vec![(ip("9.0.0.0"), 8, 0), (ip("8.0.0.0"), 8, 1)]
        );
    }
}
