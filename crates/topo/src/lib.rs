//! Topology intelligence for the traffic-shadowing reproduction.
//!
//! Two layers, both dependency-free:
//!
//! - [`IpLookupTable`]: a bitmap-indexed stride-4 longest-prefix-match
//!   trie (treebitmap idiom). `shadow-geo`'s `GeoDb` is a facade over it,
//!   and `shadow-netsim` resolves packet destinations through it, making
//!   this the single IP→(ASN, country, hosting) lookup structure.
//! - [`RouterGraphBuilder`] / [`RouterGraph`]: an incremental fold of
//!   Phase II ICMP Time-Exceeded observations into an IP-level link
//!   graph, AS-level adjacency, and per-AS hop-distance estimates, with
//!   a commutative `absorb` so sharded runs reconstruct byte-identical
//!   graphs.

mod graph;
mod lpm;

pub use graph::{
    AsHopStats, AsLink, ProbePath, RouterGraph, RouterGraphBuilder, RouterInfo, RouterLink,
};
pub use lpm::IpLookupTable;
